//! In-memory, page-accounted heap tables.

use crate::backing::PageBacking;
use crate::error::StorageError;
use crate::fault::FaultPlan;
use crate::index::{BTreeIndex, HashIndex};
use crate::ledger::CostLedger;
use crate::page::PageLayout;
use crate::schema::{Schema, SchemaRef};
use crate::stats::TableStats;
use crate::tuple::Tuple;
use std::sync::{Arc, OnceLock};

/// Shared table handle. Tables are immutable once loaded (the paper's
/// workloads are read-only decision-support queries), which lets scans
/// hand out slices without copying.
pub type TableRef = Arc<Table>;

/// A heap table: schema, rows, page layout, statistics, optional indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    rows: Vec<Tuple>,
    layout: PageLayout,
    stats: TableStats,
    hash_indexes: Vec<(usize, HashIndex)>,
    btree_indexes: Vec<(usize, BTreeIndex)>,
    backing: OnceLock<Arc<dyn PageBacking>>,
}

impl Table {
    /// Builds a table, validating every row against the schema and
    /// computing statistics eagerly (the engine's implicit `ANALYZE`).
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Table, StorageError> {
        let name = name.into();
        for (i, t) in rows.iter().enumerate() {
            if !t.conforms_to(&schema) {
                return Err(StorageError::SchemaMismatch {
                    table: name,
                    detail: format!("row {i} ({t}) does not conform to {schema}"),
                });
            }
        }
        let layout = PageLayout::for_schema(&schema);
        let stats = TableStats::analyze(&schema, &rows);
        Ok(Table {
            name,
            schema: schema.into_ref(),
            rows,
            layout,
            stats,
            hash_indexes: Vec::new(),
            btree_indexes: Vec::new(),
            backing: OnceLock::new(),
        })
    }

    /// Attaches a physical page backing. From here on, the fault-aware
    /// access paths ([`Table::scan_checked`] / [`Table::fetch_checked`]
    /// / [`Table::read_backed_page`]) fetch every logical page they
    /// charge through the backing as well, so ledger counts and
    /// physical reads can be diffed. A second attach is ignored: a
    /// table is backed exactly once, when the disk-backed catalog is
    /// built.
    pub fn attach_backing(&self, backing: Arc<dyn PageBacking>) {
        let _ = self.backing.set(backing);
    }

    /// The attached physical backing, if any.
    pub fn backing(&self) -> Option<&Arc<dyn PageBacking>> {
        self.backing.get()
    }

    /// Logical page holding row `row_id`.
    pub fn page_of_row(&self, row_id: usize) -> u64 {
        row_id as u64 / self.layout.tuples_per_page
    }

    /// Fetches logical page `page_no` through the attached backing, a
    /// no-op for unbacked (pure in-memory) tables. Access paths that
    /// charge the ledger directly — the ordered index scan — call this
    /// per fetched page so disk mode stays physically honest without
    /// adding fault draws the in-memory fault schedule never saw.
    pub fn read_backed_page(&self, page_no: u64) -> Result<(), StorageError> {
        match self.backing.get() {
            Some(b) => b.read_page(page_no),
            None => Ok(()),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Row count.
    pub fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Pages the table occupies.
    pub fn page_count(&self) -> u64 {
        self.layout.pages(self.rows.len() as u64)
    }

    /// The table's page layout.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Precomputed statistics.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Raw row access *without* cost accounting — for index builds,
    /// statistics, and test assertions. Query operators must use
    /// [`Table::scan`].
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A full scan: charges one read per page to `ledger` and returns the
    /// rows.
    pub fn scan<'a>(&'a self, ledger: &CostLedger) -> &'a [Tuple] {
        ledger.read_pages(self.page_count());
        &self.rows
    }

    /// [`Table::scan`] through an optional [`FaultPlan`]: draws one
    /// fault decision per page the scan touches, so a seeded plan can
    /// fail or stall the scan deterministically. With `faults` `None`
    /// this is exactly `scan`.
    pub fn scan_checked<'a>(
        &'a self,
        ledger: &CostLedger,
        faults: Option<&FaultPlan>,
    ) -> Result<&'a [Tuple], StorageError> {
        if let Some(plan) = faults {
            for _ in 0..self.page_count() {
                plan.on_page_read()?;
            }
        }
        if let Some(backing) = self.backing.get() {
            for page_no in 0..self.page_count() {
                backing.read_page(page_no)?;
            }
        }
        Ok(self.scan(ledger))
    }

    /// Adds a hash index on column `col`.
    pub fn create_hash_index(&mut self, col: usize) -> Result<(), StorageError> {
        if col >= self.schema.arity() {
            return Err(StorageError::BadIndexColumn {
                index: col,
                arity: self.schema.arity(),
            });
        }
        let idx = HashIndex::build(&self.rows, col);
        self.hash_indexes.retain(|(c, _)| *c != col);
        self.hash_indexes.push((col, idx));
        Ok(())
    }

    /// Adds an ordered (B-tree) index on column `col`.
    pub fn create_btree_index(&mut self, col: usize) -> Result<(), StorageError> {
        if col >= self.schema.arity() {
            return Err(StorageError::BadIndexColumn {
                index: col,
                arity: self.schema.arity(),
            });
        }
        let idx = BTreeIndex::build(&self.rows, col);
        self.btree_indexes.retain(|(c, _)| *c != col);
        self.btree_indexes.push((col, idx));
        Ok(())
    }

    /// Hash index on `col`, if one exists.
    pub fn hash_index(&self, col: usize) -> Option<&HashIndex> {
        self.hash_indexes
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, i)| i)
    }

    /// B-tree index on `col`, if one exists.
    pub fn btree_index(&self, col: usize) -> Option<&BTreeIndex> {
        self.btree_indexes
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, i)| i)
    }

    /// True iff any index (hash or btree) exists on `col`.
    pub fn has_index(&self, col: usize) -> bool {
        self.hash_index(col).is_some() || self.btree_index(col).is_some()
    }

    /// Columns with a hash index, in creation order. Lets a disk-backed
    /// catalog rebuild a table's exact index set.
    pub fn hash_indexed_columns(&self) -> Vec<usize> {
        self.hash_indexes.iter().map(|(c, _)| *c).collect()
    }

    /// Columns with a B-tree index, in creation order.
    pub fn btree_indexed_columns(&self) -> Vec<usize> {
        self.btree_indexes.iter().map(|(c, _)| *c).collect()
    }

    /// Row by position (for index lookups). Charges the page containing
    /// the row as one read.
    pub fn fetch(&self, row_id: usize, ledger: &CostLedger) -> &Tuple {
        ledger.read_pages(1);
        &self.rows[row_id]
    }

    /// [`Table::fetch`] through an optional [`FaultPlan`]: one fault
    /// decision for the single page read. With `faults` `None` this is
    /// exactly `fetch`.
    pub fn fetch_checked(
        &self,
        row_id: usize,
        ledger: &CostLedger,
        faults: Option<&FaultPlan>,
    ) -> Result<&Tuple, StorageError> {
        if let Some(plan) = faults {
            plan.on_page_read()?;
        }
        self.read_backed_page(self.page_of_row(row_id))?;
        Ok(self.fetch(row_id, ledger))
    }

    /// Wraps in an [`Arc`].
    pub fn into_ref(self) -> TableRef {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn small_table() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        Table::new(
            "t",
            schema,
            vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "c"]],
        )
        .unwrap()
    }

    #[test]
    fn rejects_nonconforming_rows() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let err = Table::new("t", schema, vec![tuple!["oops"]]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn scan_charges_page_reads() {
        let t = small_table();
        let ledger = CostLedger::new();
        let rows = t.scan(&ledger);
        assert_eq!(rows.len(), 3);
        assert_eq!(ledger.snapshot().page_reads, t.page_count());
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn page_count_scales_with_rows() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let rows: Vec<Tuple> = (0..10_000).map(|i| tuple![i]).collect();
        let t = Table::new("big", schema, rows).unwrap();
        // row width 8+9=17 → 240 tuples/page → 42 pages
        assert_eq!(t.page_count(), 10_000u64.div_ceil(4096 / 17));
    }

    #[test]
    fn stats_precomputed() {
        let t = small_table();
        assert_eq!(t.stats().rows, 3);
        assert_eq!(t.stats().column(0).unwrap().distinct, 3);
    }

    #[test]
    fn index_lifecycle() {
        let mut t = small_table();
        assert!(!t.has_index(0));
        t.create_hash_index(0).unwrap();
        assert!(t.has_index(0));
        assert!(t.hash_index(0).is_some());
        assert!(t.btree_index(0).is_none());
        t.create_btree_index(1).unwrap();
        assert!(t.btree_index(1).is_some());
        assert!(t.create_hash_index(7).is_err());
    }

    #[test]
    fn fetch_charges_one_page() {
        let t = small_table();
        let ledger = CostLedger::new();
        let row = t.fetch(1, &ledger);
        assert_eq!(row, &tuple![2, "b"]);
        assert_eq!(ledger.snapshot().page_reads, 1);
    }

    #[derive(Debug, Default)]
    struct CountingBacking {
        touched: std::sync::Mutex<Vec<u64>>,
        fail: bool,
    }

    impl PageBacking for CountingBacking {
        fn read_page(&self, page_no: u64) -> Result<(), StorageError> {
            if self.fail {
                return Err(StorageError::Backing {
                    detail: format!("no page {page_no}"),
                });
            }
            self.touched.lock().unwrap().push(page_no);
            Ok(())
        }
    }

    #[test]
    fn backed_scan_touches_every_page_once() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let rows: Vec<Tuple> = (0..1000).map(|i| tuple![i]).collect();
        let t = Table::new("b", schema, rows).unwrap();
        assert!(t.page_count() > 1);
        let backing = Arc::new(CountingBacking::default());
        t.attach_backing(backing.clone());
        let ledger = CostLedger::new();
        t.scan_checked(&ledger, None).unwrap();
        let touched = backing.touched.lock().unwrap().clone();
        assert_eq!(touched, (0..t.page_count()).collect::<Vec<_>>());
        // Physical touches and ledger charges agree exactly.
        assert_eq!(touched.len() as u64, ledger.snapshot().page_reads);
    }

    #[test]
    fn backed_fetch_touches_the_rows_page() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let rows: Vec<Tuple> = (0..1000).map(|i| tuple![i]).collect();
        let t = Table::new("b", schema, rows).unwrap();
        let backing = Arc::new(CountingBacking::default());
        t.attach_backing(backing.clone());
        let ledger = CostLedger::new();
        let row_id = t.layout().tuples_per_page as usize + 3; // second page
        t.fetch_checked(row_id, &ledger, None).unwrap();
        assert_eq!(*backing.touched.lock().unwrap(), vec![1]);
    }

    #[test]
    fn backing_errors_surface_and_second_attach_is_ignored() {
        let t = small_table();
        t.attach_backing(Arc::new(CountingBacking {
            fail: true,
            ..Default::default()
        }));
        // Second attach must not replace the first.
        t.attach_backing(Arc::new(CountingBacking::default()));
        let ledger = CostLedger::new();
        let err = t.scan_checked(&ledger, None).unwrap_err();
        assert!(matches!(err, StorageError::Backing { .. }));
        // Unbacked read helper is a no-op.
        let plain = small_table();
        plain.read_backed_page(99).unwrap();
    }

    #[test]
    fn indexed_column_enumeration_round_trips() {
        let mut t = small_table();
        t.create_hash_index(0).unwrap();
        t.create_btree_index(1).unwrap();
        t.create_btree_index(0).unwrap();
        assert_eq!(t.hash_indexed_columns(), vec![0]);
        assert_eq!(t.btree_indexed_columns(), vec![1, 0]);
    }

    #[test]
    fn empty_table_zero_pages() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let t = Table::new("empty", schema, vec![]).unwrap();
        assert_eq!(t.page_count(), 0);
        let ledger = CostLedger::new();
        assert!(t.scan(&ledger).is_empty());
        assert_eq!(ledger.snapshot().page_reads, 0);
    }
}
