//! Typed runtime values.
//!
//! The paper's queries manipulate integers, floating-point aggregates
//! (`AVG(E.sal)`), strings, and booleans; [`Value`] covers exactly those
//! plus SQL `NULL`. Values carry a *total* order (`NULL` sorts first,
//! doubles use IEEE `total_cmp`) so they can key B-trees and sort-merge
//! joins, and a hash consistent with equality so they can key hash joins
//! and filter sets.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a [`Value`], used in [`crate::Schema`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Double,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Width in bytes that one value of this type occupies in the paged
    /// storage model. Strings are charged a fixed declared width (the
    /// paper-era engines used fixed-width CHAR columns); see
    /// [`crate::page::PageLayout`].
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Double => 8,
            DataType::Str => 24,
            DataType::Bool => 1,
        }
    }

    /// Human-readable name, used in `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares less than every non-null value so sorts are
    /// deterministic; *equality* of two NULLs is true for grouping and
    /// duplicate elimination (SQL `DISTINCT` semantics), while three-valued
    /// predicate logic is handled in `fj-expr`.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float; ordered with `total_cmp`.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's [`DataType`], or `None` for NULL (NULL inhabits every
    /// type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload; integers are widened, so `as_double` is the numeric
    /// view used by arithmetic and aggregates.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Checks this value can be stored in a column of type `ty`
    /// (NULL fits everywhere; `Int` widens into `Double` columns).
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Double)
                | (Value::Double(_), DataType::Double)
                | (Value::Str(_), DataType::Str)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Byte width this value contributes to a shipped message in the
    /// distributed cost model (variable-width strings count their actual
    /// length; everything else its fixed width).
    pub fn wire_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Str(s) => s.len() + 4,
            Value::Bool(_) => 1,
        }
    }

    /// Rank used to order values of *different* types (a total order over
    /// the whole domain keeps sort operators panic-free even on typing
    /// bugs; well-typed plans never compare across types).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // numerics compare with each other
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order on doubles that collapses `-0.0 == 0.0` (IEEE equality)
/// and falls back to `total_cmp` only for NaNs, so sorting is total while
/// numerically-equal values stay equal.
fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| a.total_cmp(&b))
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => cmp_f64(*a, *b),
            (Int(a), Double(b)) => cmp_f64(*a as f64, *b),
            (Double(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and Double must hash identically when numerically equal
            // because they compare equal (1 == 1.0); hash the f64 bits of
            // the numeric value for both.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let d = if *d == 0.0 { 0.0 } else { *d };
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d:.4}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(1), Value::Double(1.0));
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(2.5) > Value::Int(2));
    }

    #[test]
    fn cross_numeric_hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Double(7.0)));
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let mut vals = [
            Value::Double(f64::NAN),
            Value::Double(1.0),
            Value::Double(f64::NEG_INFINITY),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Double(f64::NEG_INFINITY));
        assert_eq!(vals[1], Value::Double(1.0));
    }

    #[test]
    fn fits_checks_types() {
        assert!(Value::Int(1).fits(DataType::Int));
        assert!(Value::Int(1).fits(DataType::Double));
        assert!(!Value::Double(1.0).fits(DataType::Int));
        assert!(Value::Null.fits(DataType::Str));
        assert!(!Value::Str("x".into()).fits(DataType::Bool));
    }

    #[test]
    fn wire_width_counts_string_length() {
        assert_eq!(Value::Int(1).wire_width(), 8);
        assert_eq!(Value::Str("abcd".into()).wire_width(), 8);
        assert_eq!(Value::Null.wire_width(), 1);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("hr".into()).to_string(), "'hr'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Double(2.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn as_double_widens_ints() {
        assert_eq!(Value::Int(4).as_double(), Some(4.0));
        assert_eq!(Value::Str("4".into()).as_double(), None);
    }

    #[test]
    fn mixed_type_order_is_total_and_antisymmetric() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Double(0.5),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b}");
            }
        }
    }
}
