//! Single-column indexes with probe-cost accounting.
//!
//! Two access methods, matching what a System-R optimizer distinguishes:
//! a [`HashIndex`] (O(1) equality probes) and a [`BTreeIndex`] (ordered,
//! supporting range scans). Probes charge the ledger for the index pages
//! touched; fetching the matching heap rows is charged by the caller via
//! [`crate::Table::fetch`].

use crate::ledger::CostLedger;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Common behaviour of both index kinds.
pub trait Index {
    /// Row ids whose key equals `key`; charges probe I/O to `ledger`.
    fn probe(&self, key: &Value, ledger: &CostLedger) -> &[usize];
    /// Number of distinct keys.
    fn key_count(&self) -> usize;
    /// Pages this index would occupy (used by the optimizer to cost
    /// probes); a leaf holds [`ENTRIES_PER_PAGE`] entries.
    fn page_count(&self) -> u64;
}

/// Index entries per logical page: an entry is a (key, row-id) pair of
/// roughly 16 bytes in a 4 KiB page.
pub const ENTRIES_PER_PAGE: u64 = 256;

fn index_pages(entries: usize) -> u64 {
    (entries as u64).div_ceil(ENTRIES_PER_PAGE).max(1)
}

/// Hash index: equality probes cost one page read (bucket page).
#[derive(Debug)]
pub struct HashIndex {
    map: HashMap<Value, Vec<usize>>,
    entries: usize,
}

impl HashIndex {
    /// Builds over `rows`, keyed by column `col`. NULL keys are not
    /// indexed (SQL equality never matches NULL).
    pub fn build(rows: &[Tuple], col: usize) -> HashIndex {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        let mut entries = 0;
        for (i, t) in rows.iter().enumerate() {
            let v = t.value(col);
            if v.is_null() {
                continue;
            }
            map.entry(v.clone()).or_default().push(i);
            entries += 1;
        }
        HashIndex { map, entries }
    }
}

impl Index for HashIndex {
    fn probe(&self, key: &Value, ledger: &CostLedger) -> &[usize] {
        // One bucket-page read per probe.
        ledger.read_pages(1);
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn page_count(&self) -> u64 {
        index_pages(self.entries)
    }
}

/// Ordered index: probes cost the tree height in page reads; supports
/// range scans.
#[derive(Debug)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<usize>>,
    entries: usize,
}

impl BTreeIndex {
    /// Builds over `rows`, keyed by column `col`; NULLs are not indexed.
    pub fn build(rows: &[Tuple], col: usize) -> BTreeIndex {
        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        let mut entries = 0;
        for (i, t) in rows.iter().enumerate() {
            let v = t.value(col);
            if v.is_null() {
                continue;
            }
            map.entry(v.clone()).or_default().push(i);
            entries += 1;
        }
        BTreeIndex { map, entries }
    }

    /// Height of the tree in pages (⌈log_fanout(leaves)⌉ + 1, minimum 1),
    /// the per-probe page-read charge.
    pub fn height(&self) -> u64 {
        let leaves = index_pages(self.entries);
        let mut h = 1u64;
        let mut n = leaves;
        while n > 1 {
            n = n.div_ceil(ENTRIES_PER_PAGE);
            h += 1;
        }
        h
    }

    /// Every indexed row id in key order — the ordered full scan behind
    /// the *interesting orders* access path. Charges all leaf pages.
    pub fn scan_all_ordered(&self, ledger: &CostLedger) -> Vec<usize> {
        ledger.read_pages(self.page_count());
        self.map.values().flatten().copied().collect()
    }

    /// Row ids with keys in `[lo, hi]` (inclusive), charging tree height
    /// plus one leaf page per [`ENTRIES_PER_PAGE`] qualifying entries.
    pub fn range(&self, lo: &Value, hi: &Value, ledger: &CostLedger) -> Vec<usize> {
        let mut out = Vec::new();
        for (_, ids) in self
            .map
            .range((Bound::Included(lo.clone()), Bound::Included(hi.clone())))
        {
            out.extend_from_slice(ids);
        }
        ledger.read_pages(self.height() + (out.len() as u64) / ENTRIES_PER_PAGE);
        out
    }
}

impl Index for BTreeIndex {
    fn probe(&self, key: &Value, ledger: &CostLedger) -> &[usize] {
        ledger.read_pages(self.height());
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn page_count(&self) -> u64 {
        index_pages(self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rows() -> Vec<Tuple> {
        vec![
            tuple![10, "a"],
            tuple![20, "b"],
            tuple![10, "c"],
            tuple![30, "d"],
        ]
    }

    #[test]
    fn hash_probe_finds_all_matches() {
        let idx = HashIndex::build(&rows(), 0);
        let ledger = CostLedger::new();
        assert_eq!(idx.probe(&Value::Int(10), &ledger), &[0, 2]);
        assert_eq!(idx.probe(&Value::Int(99), &ledger), &[] as &[usize]);
        assert_eq!(ledger.snapshot().page_reads, 2);
        assert_eq!(idx.key_count(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let rows = vec![Tuple::new(vec![Value::Null]), tuple![1]];
        let h = HashIndex::build(&rows, 0);
        let ledger = CostLedger::new();
        assert!(h.probe(&Value::Null, &ledger).is_empty());
        assert_eq!(h.key_count(), 1);
        let b = BTreeIndex::build(&rows, 0);
        assert_eq!(b.key_count(), 1);
    }

    #[test]
    fn btree_probe_charges_height() {
        let idx = BTreeIndex::build(&rows(), 0);
        assert_eq!(idx.height(), 1);
        let ledger = CostLedger::new();
        assert_eq!(idx.probe(&Value::Int(20), &ledger), &[1]);
        assert_eq!(ledger.snapshot().page_reads, 1);
    }

    #[test]
    fn btree_range_scan() {
        let idx = BTreeIndex::build(&rows(), 0);
        let ledger = CostLedger::new();
        let ids = idx.range(&Value::Int(10), &Value::Int(20), &ledger);
        assert_eq!(ids, vec![0, 2, 1]);
        assert!(ledger.snapshot().page_reads >= 1);
    }

    #[test]
    fn btree_height_grows_logarithmically() {
        let rows: Vec<Tuple> = (0..200_000i64).map(|i| tuple![i]).collect();
        let idx = BTreeIndex::build(&rows, 0);
        // 200k entries / 256 per page = 782 leaves → height 3
        assert_eq!(idx.height(), 3);
        assert_eq!(idx.page_count(), 782);
    }

    #[test]
    fn index_page_count_minimum_one() {
        let idx = HashIndex::build(&[], 0);
        assert_eq!(idx.page_count(), 1);
    }

    #[test]
    fn string_keys_work() {
        let idx = HashIndex::build(&rows(), 1);
        let ledger = CostLedger::new();
        assert_eq!(idx.probe(&Value::Str("c".into()), &ledger), &[2]);
    }
}
