//! Deterministic fault injection for the paged-heap I/O path.
//!
//! A [`FaultPlan`] is a seeded schedule of page-read misbehavior: every
//! page read that passes through a fault-aware access path
//! ([`crate::Table::scan_checked`] / [`crate::Table::fetch_checked`])
//! advances a per-plan ordinal counter, and the plan decides — purely as
//! a function of `(seed, ordinal)` — whether that read succeeds, fails
//! with a typed [`StorageError::InjectedFault`], stalls for a configured
//! latency, or panics (modelling a crashing worker).
//!
//! Determinism is the point: a single-threaded execution replays the
//! exact same fault sequence for a given seed, which makes "any seeded
//! fault plan yields a typed error, never a panic or a wrong row set"
//! a property-testable statement. Under concurrency the *set* of
//! ordinals drawn is still fixed; only their attribution to queries
//! races, which is exactly the situation a chaos soak wants.

use crate::error::StorageError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// `(seed, ordinal)` into an independent pseudo-random draw per event.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic schedule of injected page-read faults.
///
/// All knobs default to "off": `FaultPlan::new(seed)` injects nothing
/// until a `with_*` builder arms it. Rates are expressed as
/// "one in `n`" (`n = 0` disables the fault class).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    read_error_one_in: u64,
    stall_one_in: u64,
    stall: Duration,
    panic_at: Option<u64>,
    ordinal: AtomicU64,
}

impl FaultPlan {
    /// A quiescent plan: no faults until armed with the builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_error_one_in: 0,
            stall_one_in: 0,
            stall: Duration::ZERO,
            panic_at: None,
            ordinal: AtomicU64::new(0),
        }
    }

    /// Arms injected read errors at a rate of one in `one_in` page
    /// reads (deterministically chosen by the seed; `0` disables).
    pub fn with_read_errors(mut self, one_in: u64) -> FaultPlan {
        self.read_error_one_in = one_in;
        self
    }

    /// Arms latency stalls of `stall` at a rate of one in `one_in`
    /// page reads (`0` disables).
    pub fn with_stalls(mut self, one_in: u64, stall: Duration) -> FaultPlan {
        self.stall_one_in = one_in;
        self.stall = stall;
        self
    }

    /// Arms a process-local panic on exactly the `ordinal`-th page read
    /// (0-based). Used by the chaos harness to kill one worker
    /// mid-query and prove the pool self-heals.
    pub fn with_panic_at(mut self, ordinal: u64) -> FaultPlan {
        self.panic_at = Some(ordinal);
        self
    }

    /// Page-read events drawn so far.
    pub fn events(&self) -> u64 {
        self.ordinal.load(Ordering::Relaxed)
    }

    /// Draws the next fault decision. Called once per accounted page
    /// read on the fault-aware access paths.
    ///
    /// Ordering of effects: an armed panic fires first (it models a
    /// crash, which preempts everything), then a stall (I/O that is
    /// slow *and then* fails is the nastier case, so a stall draw does
    /// not shadow an error draw), then the error decision.
    pub fn on_page_read(&self) -> Result<(), StorageError> {
        let n = self.ordinal.fetch_add(1, Ordering::Relaxed);
        if self.panic_at == Some(n) {
            panic!("fault plan: induced panic at page read {n}");
        }
        let draw = splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if self.stall_one_in > 0 && draw.is_multiple_of(self.stall_one_in) {
            std::thread::sleep(self.stall);
        }
        // An independent second draw so stall and error rates don't
        // correlate on the same ordinals.
        let draw2 = splitmix64(draw);
        if self.read_error_one_in > 0 && draw2.is_multiple_of(self.read_error_one_in) {
            return Err(StorageError::InjectedFault { ordinal: n });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_ordinals(plan: &FaultPlan, draws: u64) -> Vec<u64> {
        (0..draws)
            .filter_map(|_| match plan.on_page_read() {
                Ok(()) => None,
                Err(StorageError::InjectedFault { ordinal }) => Some(ordinal),
                Err(other) => panic!("unexpected error {other}"),
            })
            .collect()
    }

    #[test]
    fn quiescent_plan_never_faults() {
        let plan = FaultPlan::new(42);
        for _ in 0..10_000 {
            plan.on_page_read().unwrap();
        }
        assert_eq!(plan.events(), 10_000);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let a = FaultPlan::new(7).with_read_errors(50);
        let b = FaultPlan::new(7).with_read_errors(50);
        let fa = fault_ordinals(&a, 5_000);
        let fb = fault_ordinals(&b, 5_000);
        assert_eq!(fa, fb);
        assert!(!fa.is_empty(), "1-in-50 over 5000 draws must fire");
        // Roughly the configured rate (loose bounds; it's a hash, not
        // a Bernoulli sampler).
        assert!(fa.len() > 20 && fa.len() < 400, "got {}", fa.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with_read_errors(20);
        let b = FaultPlan::new(2).with_read_errors(20);
        assert_ne!(fault_ordinals(&a, 2_000), fault_ordinals(&b, 2_000));
    }

    #[test]
    fn panic_fires_at_exact_ordinal() {
        let plan = FaultPlan::new(0).with_panic_at(3);
        for _ in 0..3 {
            plan.on_page_read().unwrap();
        }
        let err = std::panic::catch_unwind(|| plan.on_page_read()).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("page read 3"), "got {msg:?}");
    }

    #[test]
    fn stall_delays_but_succeeds() {
        let plan = FaultPlan::new(9).with_stalls(1, Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        plan.on_page_read().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
