//! Deterministic fault injection for the paged I/O paths.
//!
//! A [`FaultPlan`] is a seeded schedule of storage misbehavior: every
//! page read that passes through a fault-aware access path
//! ([`crate::Table::scan_checked`] / [`crate::Table::fetch_checked`])
//! advances a per-plan ordinal counter, and the plan decides — purely as
//! a function of `(seed, ordinal)` — whether that read succeeds, fails
//! with a typed [`StorageError::InjectedFault`], stalls for a configured
//! latency, or panics (modelling a crashing worker). The disk-backed
//! page store (`fj-store`) threads the same plan through its *write*
//! path: [`FaultPlan::on_page_write`] draws torn-page decisions (the
//! write silently persists only a prefix of the page, detectable later
//! by checksum) and [`FaultPlan::on_fsync`] draws slow-fsync stalls —
//! each class on its own ordinal counter so arming one never perturbs
//! the schedule of another.
//!
//! Determinism is the point: a single-threaded execution replays the
//! exact same fault sequence for a given seed, which makes "any seeded
//! fault plan yields a typed error, never a panic or a wrong row set"
//! a property-testable statement. Under concurrency the *set* of
//! ordinals drawn is still fixed; only their attribution to queries
//! races, which is exactly the situation a chaos soak wants.

use crate::error::StorageError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// `(seed, ordinal)` into an independent pseudo-random draw per event.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic schedule of injected page-read faults.
///
/// All knobs default to "off": `FaultPlan::new(seed)` injects nothing
/// until a `with_*` builder arms it. Rates are expressed as
/// "one in `n`" (`n = 0` disables the fault class).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    read_error_one_in: u64,
    stall_one_in: u64,
    stall: Duration,
    panic_at: Option<u64>,
    torn_write_one_in: u64,
    torn_delta_one_in: u64,
    torn_scrub_one_in: u64,
    slow_fsync_one_in: u64,
    slow_fsync: Duration,
    torn_temp_one_in: u64,
    slow_temp_fsync_one_in: u64,
    slow_temp_fsync: Duration,
    ordinal: AtomicU64,
    write_ordinal: AtomicU64,
    delta_ordinal: AtomicU64,
    scrub_ordinal: AtomicU64,
    fsync_ordinal: AtomicU64,
    temp_write_ordinal: AtomicU64,
    temp_fsync_ordinal: AtomicU64,
}

/// The decision [`FaultPlan::on_page_write`] draws for one page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageWriteFault {
    /// The write goes through intact.
    None,
    /// The write is torn: only a prefix of the page reaches the disk,
    /// silently (the writer sees success — exactly the failure mode a
    /// checksummed page header exists to catch at read/recovery time).
    Torn,
}

impl FaultPlan {
    /// A quiescent plan: no faults until armed with the builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_error_one_in: 0,
            stall_one_in: 0,
            stall: Duration::ZERO,
            panic_at: None,
            torn_write_one_in: 0,
            torn_delta_one_in: 0,
            torn_scrub_one_in: 0,
            slow_fsync_one_in: 0,
            slow_fsync: Duration::ZERO,
            torn_temp_one_in: 0,
            slow_temp_fsync_one_in: 0,
            slow_temp_fsync: Duration::ZERO,
            ordinal: AtomicU64::new(0),
            write_ordinal: AtomicU64::new(0),
            delta_ordinal: AtomicU64::new(0),
            scrub_ordinal: AtomicU64::new(0),
            fsync_ordinal: AtomicU64::new(0),
            temp_write_ordinal: AtomicU64::new(0),
            temp_fsync_ordinal: AtomicU64::new(0),
        }
    }

    /// Arms injected read errors at a rate of one in `one_in` page
    /// reads (deterministically chosen by the seed; `0` disables).
    pub fn with_read_errors(mut self, one_in: u64) -> FaultPlan {
        self.read_error_one_in = one_in;
        self
    }

    /// Arms latency stalls of `stall` at a rate of one in `one_in`
    /// page reads (`0` disables).
    pub fn with_stalls(mut self, one_in: u64, stall: Duration) -> FaultPlan {
        self.stall_one_in = one_in;
        self.stall = stall;
        self
    }

    /// Arms a process-local panic on exactly the `ordinal`-th page read
    /// (0-based). Used by the chaos harness to kill one worker
    /// mid-query and prove the pool self-heals.
    pub fn with_panic_at(mut self, ordinal: u64) -> FaultPlan {
        self.panic_at = Some(ordinal);
        self
    }

    /// Arms torn page writes at a rate of one in `one_in` page writes
    /// (`0` disables). A torn write persists only a prefix of the page;
    /// the writer is not told — detection is the checksum's job at the
    /// next read or recovery.
    pub fn with_torn_page_writes(mut self, one_in: u64) -> FaultPlan {
        self.torn_write_one_in = one_in;
        self
    }

    /// Arms torn *delta* writes at a rate of one in `one_in` dirty-page
    /// write-backs (`0` disables). Mutation write-backs and checkpoint
    /// flushes draw from this class — on its own ordinal counter, so
    /// arming it never shifts the load-path torn-write schedule.
    pub fn with_torn_delta_writes(mut self, one_in: u64) -> FaultPlan {
        self.torn_delta_one_in = one_in;
        self
    }

    /// Arms torn *scrub* writes at a rate of one in `one_in` checkpoint
    /// scrub rewrites (`0` disables). The checkpoint's heal-from-WAL
    /// pass draws from this class on its own ordinal counter.
    pub fn with_torn_scrub_writes(mut self, one_in: u64) -> FaultPlan {
        self.torn_scrub_one_in = one_in;
        self
    }

    /// Arms slow fsyncs: one in `one_in` fsync calls stalls for
    /// `stall` before completing (`0` disables). Models a device whose
    /// write cache periodically drains under group commit.
    pub fn with_slow_fsync(mut self, one_in: u64, stall: Duration) -> FaultPlan {
        self.slow_fsync_one_in = one_in;
        self.slow_fsync = stall;
        self
    }

    /// Arms torn *temp* writes at a rate of one in `one_in` spill-frame
    /// writes (`0` disables). Spilling operators (grace hash join,
    /// external sort, spillable aggregate) draw from this class when
    /// flushing partition frames through [`crate::TempStore`] — on its
    /// own ordinal counter, so arming it never shifts the page, delta,
    /// or scrub write schedules.
    pub fn with_torn_temp_writes(mut self, one_in: u64) -> FaultPlan {
        self.torn_temp_one_in = one_in;
        self
    }

    /// Arms slow temp fsyncs: one in `one_in` spill-file seals stalls
    /// for `stall` before completing (`0` disables). Models a device
    /// whose write cache drains while a spill run is sealed; drawn on
    /// its own ordinal counter, independent of the WAL fsync schedule.
    pub fn with_slow_temp_fsync(mut self, one_in: u64, stall: Duration) -> FaultPlan {
        self.slow_temp_fsync_one_in = one_in;
        self.slow_temp_fsync = stall;
        self
    }

    /// Page-read events drawn so far.
    pub fn events(&self) -> u64 {
        self.ordinal.load(Ordering::Relaxed)
    }

    /// Page-write events drawn so far.
    pub fn write_events(&self) -> u64 {
        self.write_ordinal.load(Ordering::Relaxed)
    }

    /// Delta-write events drawn so far.
    pub fn delta_events(&self) -> u64 {
        self.delta_ordinal.load(Ordering::Relaxed)
    }

    /// Scrub-write events drawn so far.
    pub fn scrub_events(&self) -> u64 {
        self.scrub_ordinal.load(Ordering::Relaxed)
    }

    /// Fsync events drawn so far.
    pub fn fsync_events(&self) -> u64 {
        self.fsync_ordinal.load(Ordering::Relaxed)
    }

    /// Temp-write events drawn so far.
    pub fn temp_write_events(&self) -> u64 {
        self.temp_write_ordinal.load(Ordering::Relaxed)
    }

    /// Temp-fsync events drawn so far.
    pub fn temp_fsync_events(&self) -> u64 {
        self.temp_fsync_ordinal.load(Ordering::Relaxed)
    }

    /// Draws the next fault decision. Called once per accounted page
    /// read on the fault-aware access paths.
    ///
    /// Ordering of effects: an armed panic fires first (it models a
    /// crash, which preempts everything), then a stall (I/O that is
    /// slow *and then* fails is the nastier case, so a stall draw does
    /// not shadow an error draw), then the error decision.
    pub fn on_page_read(&self) -> Result<(), StorageError> {
        let n = self.ordinal.fetch_add(1, Ordering::Relaxed);
        if self.panic_at == Some(n) {
            panic!("fault plan: induced panic at page read {n}");
        }
        let draw = splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if self.stall_one_in > 0 && draw.is_multiple_of(self.stall_one_in) {
            std::thread::sleep(self.stall);
        }
        // An independent second draw so stall and error rates don't
        // correlate on the same ordinals.
        let draw2 = splitmix64(draw);
        if self.read_error_one_in > 0 && draw2.is_multiple_of(self.read_error_one_in) {
            return Err(StorageError::InjectedFault { ordinal: n });
        }
        Ok(())
    }

    /// Draws the next write-path fault decision. Called once per page
    /// write by the disk-backed page store. The draw stream uses its
    /// own ordinal counter and a distinct domain-separation constant,
    /// so arming (or drawing) write faults never shifts the read or
    /// fsync schedules.
    pub fn on_page_write(&self) -> PageWriteFault {
        let n = self.write_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.torn_write_one_in == 0 {
            return PageWriteFault::None;
        }
        let draw =
            splitmix64(self.seed ^ 0x7f4a_7c15_9e37_79b9 ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.torn_write_one_in) {
            PageWriteFault::Torn
        } else {
            PageWriteFault::None
        }
    }

    /// Draws the next *delta*-write fault decision. Called once per
    /// dirty-page write-back (mutation flush, eviction write-back, and
    /// checkpoint dirty flush) by the disk-backed page store. Its own
    /// ordinal counter and domain constant keep the schedule independent
    /// of load-path writes, reads, scrubs, and fsyncs.
    pub fn on_delta_write(&self) -> PageWriteFault {
        let n = self.delta_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.torn_delta_one_in == 0 {
            return PageWriteFault::None;
        }
        let draw =
            splitmix64(self.seed ^ 0xbf58_476d_1ce4_e5b9 ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.torn_delta_one_in) {
            PageWriteFault::Torn
        } else {
            PageWriteFault::None
        }
    }

    /// Draws the next *scrub*-write fault decision. Called once per
    /// checkpoint scrub rewrite (healing a torn on-disk record from its
    /// logged WAL bytes). Independent ordinal stream, as above.
    pub fn on_scrub_write(&self) -> PageWriteFault {
        let n = self.scrub_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.torn_scrub_one_in == 0 {
            return PageWriteFault::None;
        }
        let draw =
            splitmix64(self.seed ^ 0x94d0_49bb_e5b9_1ce4 ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.torn_scrub_one_in) {
            PageWriteFault::Torn
        } else {
            PageWriteFault::None
        }
    }

    /// Draws the next fsync fault decision, sleeping for the configured
    /// stall when it fires. Called once per physical `fsync` by the
    /// WAL's group-commit path. Returns `true` iff this fsync stalled
    /// (so callers can count slow fsyncs if they care).
    pub fn on_fsync(&self) -> bool {
        let n = self.fsync_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.slow_fsync_one_in == 0 {
            return false;
        }
        let draw =
            splitmix64(self.seed ^ 0x1331_11eb_94d0_49bb ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.slow_fsync_one_in) {
            std::thread::sleep(self.slow_fsync);
            return true;
        }
        false
    }

    /// Draws the next *temp*-write fault decision. Called once per
    /// spill frame flushed by [`crate::TempStore`]. Independent ordinal
    /// stream and domain constant, as with the other write classes.
    pub fn on_temp_write(&self) -> PageWriteFault {
        let n = self.temp_write_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.torn_temp_one_in == 0 {
            return PageWriteFault::None;
        }
        let draw =
            splitmix64(self.seed ^ 0x1ce4_e5b9_bf58_476d ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.torn_temp_one_in) {
            PageWriteFault::Torn
        } else {
            PageWriteFault::None
        }
    }

    /// Draws the next temp-fsync fault decision, sleeping for the
    /// configured stall when it fires. Called once per spill-file seal
    /// by [`crate::TempStore`]. Returns `true` iff this seal stalled.
    pub fn on_temp_fsync(&self) -> bool {
        let n = self.temp_fsync_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.slow_temp_fsync_one_in == 0 {
            return false;
        }
        let draw =
            splitmix64(self.seed ^ 0x49bb_94d0_11eb_1331 ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if draw.is_multiple_of(self.slow_temp_fsync_one_in) {
            std::thread::sleep(self.slow_temp_fsync);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_ordinals(plan: &FaultPlan, draws: u64) -> Vec<u64> {
        (0..draws)
            .filter_map(|_| match plan.on_page_read() {
                Ok(()) => None,
                Err(StorageError::InjectedFault { ordinal }) => Some(ordinal),
                Err(other) => panic!("unexpected error {other}"),
            })
            .collect()
    }

    #[test]
    fn quiescent_plan_never_faults() {
        let plan = FaultPlan::new(42);
        for _ in 0..10_000 {
            plan.on_page_read().unwrap();
        }
        assert_eq!(plan.events(), 10_000);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let a = FaultPlan::new(7).with_read_errors(50);
        let b = FaultPlan::new(7).with_read_errors(50);
        let fa = fault_ordinals(&a, 5_000);
        let fb = fault_ordinals(&b, 5_000);
        assert_eq!(fa, fb);
        assert!(!fa.is_empty(), "1-in-50 over 5000 draws must fire");
        // Roughly the configured rate (loose bounds; it's a hash, not
        // a Bernoulli sampler).
        assert!(fa.len() > 20 && fa.len() < 400, "got {}", fa.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with_read_errors(20);
        let b = FaultPlan::new(2).with_read_errors(20);
        assert_ne!(fault_ordinals(&a, 2_000), fault_ordinals(&b, 2_000));
    }

    #[test]
    fn panic_fires_at_exact_ordinal() {
        let plan = FaultPlan::new(0).with_panic_at(3);
        for _ in 0..3 {
            plan.on_page_read().unwrap();
        }
        let err = std::panic::catch_unwind(|| plan.on_page_read()).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("page read 3"), "got {msg:?}");
    }

    #[test]
    fn stall_delays_but_succeeds() {
        let plan = FaultPlan::new(9).with_stalls(1, Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        plan.on_page_read().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    fn torn_ordinals(plan: &FaultPlan, draws: u64) -> Vec<u64> {
        (0..draws)
            .filter(|_| plan.on_page_write() == PageWriteFault::Torn)
            .collect()
    }

    #[test]
    fn quiescent_plan_never_tears_writes() {
        let plan = FaultPlan::new(3);
        for _ in 0..5_000 {
            assert_eq!(plan.on_page_write(), PageWriteFault::None);
            assert!(!plan.on_fsync());
        }
        assert_eq!(plan.write_events(), 5_000);
        assert_eq!(plan.fsync_events(), 5_000);
    }

    #[test]
    fn same_seed_same_torn_write_schedule() {
        let a = FaultPlan::new(11).with_torn_page_writes(40);
        let b = FaultPlan::new(11).with_torn_page_writes(40);
        let ta = torn_ordinals(&a, 4_000);
        let tb = torn_ordinals(&b, 4_000);
        assert_eq!(ta, tb);
        assert!(!ta.is_empty(), "1-in-40 over 4000 draws must fire");
        assert!(ta.len() < 500, "got {}", ta.len());
    }

    #[test]
    fn write_draws_do_not_shift_read_schedule() {
        // Same seed, same read rate; one plan also draws write, delta,
        // scrub, and fsync decisions interleaved. Read fault ordinals
        // must be identical: the classes live on independent counters.
        let quiet = FaultPlan::new(21).with_read_errors(30);
        let noisy = FaultPlan::new(21)
            .with_read_errors(30)
            .with_torn_page_writes(5)
            .with_torn_delta_writes(3)
            .with_torn_scrub_writes(4)
            .with_slow_fsync(0, Duration::ZERO);
        let expected = fault_ordinals(&quiet, 2_000);
        let got: Vec<u64> = (0..2_000u64)
            .filter_map(|_| {
                noisy.on_page_write();
                noisy.on_delta_write();
                noisy.on_scrub_write();
                let r = match noisy.on_page_read() {
                    Ok(()) => None,
                    Err(StorageError::InjectedFault { ordinal }) => Some(ordinal),
                    Err(other) => panic!("unexpected error {other}"),
                };
                noisy.on_fsync();
                r
            })
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn delta_draws_do_not_shift_load_write_schedule() {
        // Arming the new delta and scrub classes must leave the
        // load-path torn-write schedule untouched, and vice versa: the
        // delta schedule is identical whether or not load writes are
        // interleaved and armed.
        let quiet = FaultPlan::new(33).with_torn_page_writes(7);
        let noisy = FaultPlan::new(33)
            .with_torn_page_writes(7)
            .with_torn_delta_writes(3)
            .with_torn_scrub_writes(5);
        let expected = torn_ordinals(&quiet, 3_000);
        let got: Vec<u64> = (0..3_000u64)
            .filter(|_| {
                noisy.on_delta_write();
                noisy.on_scrub_write();
                noisy.on_page_write() == PageWriteFault::Torn
            })
            .collect();
        assert_eq!(expected, got);

        let solo = FaultPlan::new(33).with_torn_delta_writes(3);
        let mixed = FaultPlan::new(33)
            .with_torn_delta_writes(3)
            .with_torn_page_writes(2)
            .with_torn_scrub_writes(2);
        let solo_deltas: Vec<bool> = (0..3_000)
            .map(|_| solo.on_delta_write() == PageWriteFault::Torn)
            .collect();
        let mixed_deltas: Vec<bool> = (0..3_000)
            .map(|_| {
                mixed.on_page_write();
                mixed.on_scrub_write();
                mixed.on_delta_write() == PageWriteFault::Torn
            })
            .collect();
        assert_eq!(solo_deltas, mixed_deltas);
        assert!(solo_deltas.iter().any(|&t| t), "1-in-3 must fire");
    }

    #[test]
    fn delta_and_scrub_schedules_differ_from_each_other() {
        // Same seed, same rate: the domain constants must still
        // separate the two streams.
        let plan = FaultPlan::new(55)
            .with_torn_delta_writes(4)
            .with_torn_scrub_writes(4);
        let deltas: Vec<bool> = (0..2_000)
            .map(|_| plan.on_delta_write() == PageWriteFault::Torn)
            .collect();
        let scrubs: Vec<bool> = (0..2_000)
            .map(|_| plan.on_scrub_write() == PageWriteFault::Torn)
            .collect();
        assert_ne!(deltas, scrubs);
    }

    #[test]
    fn temp_write_schedule_independent_and_distinct() {
        // Arming the temp classes must leave every existing schedule
        // untouched, and the temp stream must not mirror the load-path
        // write stream at the same seed and rate.
        let solo = FaultPlan::new(91).with_torn_temp_writes(6);
        let mixed = FaultPlan::new(91)
            .with_torn_temp_writes(6)
            .with_torn_page_writes(2)
            .with_torn_delta_writes(2)
            .with_torn_scrub_writes(2)
            .with_slow_fsync(2, Duration::ZERO);
        let solo_temps: Vec<bool> = (0..3_000)
            .map(|_| solo.on_temp_write() == PageWriteFault::Torn)
            .collect();
        let mixed_temps: Vec<bool> = (0..3_000)
            .map(|_| {
                mixed.on_page_write();
                mixed.on_delta_write();
                mixed.on_scrub_write();
                mixed.on_fsync();
                mixed.on_temp_write() == PageWriteFault::Torn
            })
            .collect();
        assert_eq!(solo_temps, mixed_temps);
        assert!(solo_temps.iter().any(|&t| t), "1-in-6 must fire");

        let both = FaultPlan::new(91)
            .with_torn_temp_writes(6)
            .with_torn_page_writes(6);
        let temps: Vec<bool> = (0..2_000)
            .map(|_| both.on_temp_write() == PageWriteFault::Torn)
            .collect();
        let pages: Vec<bool> = (0..2_000)
            .map(|_| both.on_page_write() == PageWriteFault::Torn)
            .collect();
        assert_ne!(temps, pages);
    }

    #[test]
    fn slow_temp_fsync_stalls_when_drawn() {
        let plan = FaultPlan::new(5).with_slow_temp_fsync(1, Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        assert!(plan.on_temp_fsync());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(plan.temp_fsync_events(), 1);
    }

    #[test]
    fn slow_fsync_stalls_when_drawn() {
        let plan = FaultPlan::new(5).with_slow_fsync(1, Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        assert!(plan.on_fsync());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn fsync_schedule_reproducible_from_seed() {
        let a = FaultPlan::new(77).with_slow_fsync(25, Duration::ZERO);
        let b = FaultPlan::new(77).with_slow_fsync(25, Duration::ZERO);
        let sa: Vec<bool> = (0..2_000).map(|_| a.on_fsync()).collect();
        let sb: Vec<bool> = (0..2_000).map(|_| b.on_fsync()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&s| s), "1-in-25 over 2000 draws must fire");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Satellite 1: fault schedules — read errors, torn writes,
            /// and slow fsyncs together — are a pure function of the
            /// seed. Two plans built from the same seed and rates agree
            /// on every draw of every class.
            #[test]
            fn fault_schedules_reproducible_from_seed(
                seed in 0u64..u64::MAX,
                read_one_in in 0u64..64,
                torn_one_in in 0u64..64,
                delta_one_in in 0u64..64,
                scrub_one_in in 0u64..64,
                fsync_one_in in 0u64..64,
                temp_one_in in 0u64..64,
                temp_fsync_one_in in 0u64..64,
                draws in 1u64..512,
            ) {
                let build = || {
                    FaultPlan::new(seed)
                        .with_read_errors(read_one_in)
                        .with_torn_page_writes(torn_one_in)
                        .with_torn_delta_writes(delta_one_in)
                        .with_torn_scrub_writes(scrub_one_in)
                        .with_slow_fsync(fsync_one_in, Duration::ZERO)
                        .with_torn_temp_writes(temp_one_in)
                        .with_slow_temp_fsync(temp_fsync_one_in, Duration::ZERO)
                };
                let (a, b) = (build(), build());
                for _ in 0..draws {
                    prop_assert_eq!(
                        a.on_page_read().is_err(),
                        b.on_page_read().is_err()
                    );
                    prop_assert_eq!(a.on_page_write(), b.on_page_write());
                    prop_assert_eq!(a.on_delta_write(), b.on_delta_write());
                    prop_assert_eq!(a.on_scrub_write(), b.on_scrub_write());
                    prop_assert_eq!(a.on_fsync(), b.on_fsync());
                    prop_assert_eq!(a.on_temp_write(), b.on_temp_write());
                    prop_assert_eq!(a.on_temp_fsync(), b.on_temp_fsync());
                }
                prop_assert_eq!(a.events(), draws);
                prop_assert_eq!(a.write_events(), draws);
                prop_assert_eq!(a.delta_events(), draws);
                prop_assert_eq!(a.scrub_events(), draws);
                prop_assert_eq!(a.fsync_events(), draws);
                prop_assert_eq!(a.temp_write_events(), draws);
                prop_assert_eq!(a.temp_fsync_events(), draws);
            }

            /// Arming any subset of the five fault classes never shifts
            /// the schedule of a class outside the subset: each class is
            /// a pure function of (seed, own ordinal).
            #[test]
            fn arming_one_class_never_shifts_another(
                seed in 0u64..u64::MAX,
                torn_one_in in 1u64..32,
                delta_one_in in 1u64..32,
                scrub_one_in in 1u64..32,
                draws in 1u64..256,
            ) {
                let solo = FaultPlan::new(seed).with_torn_delta_writes(delta_one_in);
                let all = FaultPlan::new(seed)
                    .with_read_errors(11)
                    .with_torn_page_writes(torn_one_in)
                    .with_torn_delta_writes(delta_one_in)
                    .with_torn_scrub_writes(scrub_one_in)
                    .with_slow_fsync(13, Duration::ZERO)
                    .with_torn_temp_writes(torn_one_in)
                    .with_slow_temp_fsync(17, Duration::ZERO);
                for _ in 0..draws {
                    let _ = all.on_page_read();
                    all.on_page_write();
                    all.on_scrub_write();
                    all.on_fsync();
                    all.on_temp_write();
                    all.on_temp_fsync();
                    prop_assert_eq!(solo.on_delta_write(), all.on_delta_write());
                }

                // And the temp stream itself is unshifted by every
                // other class drawing around it.
                let solo_temp = FaultPlan::new(seed).with_torn_temp_writes(torn_one_in);
                let noisy = FaultPlan::new(seed)
                    .with_read_errors(7)
                    .with_torn_page_writes(torn_one_in)
                    .with_torn_delta_writes(delta_one_in)
                    .with_torn_scrub_writes(scrub_one_in)
                    .with_slow_fsync(9, Duration::ZERO)
                    .with_torn_temp_writes(torn_one_in)
                    .with_slow_temp_fsync(11, Duration::ZERO);
                for _ in 0..draws {
                    let _ = noisy.on_page_read();
                    noisy.on_page_write();
                    noisy.on_delta_write();
                    noisy.on_scrub_write();
                    noisy.on_fsync();
                    noisy.on_temp_fsync();
                    prop_assert_eq!(solo_temp.on_temp_write(), noisy.on_temp_write());
                }
            }
        }
    }
}
