//! Logical mutations: INSERT / UPDATE / DELETE against one table.
//!
//! A [`Mutation`] is a *pure description* of a change; [`Mutation::apply`]
//! computes the post-state row vector from a schema and the current rows
//! without touching any storage. Every layer that needs the same answer
//! reuses it: the disk store applies it to build WAL page deltas, the
//! in-memory service mode applies it directly to a catalog table, and
//! the mutation-chaos oracle replays the committed mutation log through
//! it to predict what a recovered replica must serve. One definition,
//! three consumers — that is what makes "byte-identical to the oracle"
//! a meaningful check rather than two copies of the same bug.
//!
//! Predicates are deliberately minimal (equality on one column): the
//! point of this PR is the crash-safe *write path*, not a DML surface.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A single-table write: insert rows, update matching rows, or delete
/// matching rows. UPDATE and DELETE match rows by equality on one
/// column (`where_col == where_value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Append `rows` to `table`.
    Insert {
        /// Target table name (catalog name, not alias).
        table: String,
        /// New rows, in schema order.
        rows: Vec<Vec<Value>>,
    },
    /// Set columns on every row where `where_col == where_value`.
    Update {
        /// Target table name.
        table: String,
        /// `(column, new value)` assignments.
        set: Vec<(String, Value)>,
        /// Predicate column.
        where_col: String,
        /// Predicate value (equality).
        where_value: Value,
    },
    /// Remove every row where `where_col == where_value`.
    Delete {
        /// Target table name.
        table: String,
        /// Predicate column.
        where_col: String,
        /// Predicate value (equality).
        where_value: Value,
    },
}

impl Mutation {
    /// The table this mutation targets.
    pub fn table(&self) -> &str {
        match self {
            Mutation::Insert { table, .. }
            | Mutation::Update { table, .. }
            | Mutation::Delete { table, .. } => table,
        }
    }

    /// A short verb for logs and traces: `"INSERT"`, `"UPDATE"`, or
    /// `"DELETE"`.
    pub fn verb(&self) -> &'static str {
        match self {
            Mutation::Insert { .. } => "INSERT",
            Mutation::Update { .. } => "UPDATE",
            Mutation::Delete { .. } => "DELETE",
        }
    }

    /// Applies this mutation to `rows` under `schema`, returning the
    /// post-state rows and the number of rows affected (inserted,
    /// updated, or deleted). Pure: no storage is touched, inputs are
    /// not modified, and the output row *order* is deterministic
    /// (inserts append, updates rewrite in place, deletes preserve the
    /// order of survivors) — which is what lets the disk store, the
    /// in-memory mode, and the recovery oracle agree byte-for-byte.
    pub fn apply(
        &self,
        schema: &Schema,
        rows: &[Tuple],
    ) -> Result<(Vec<Tuple>, u64), StorageError> {
        match self {
            Mutation::Insert { table, rows: new } => {
                let mut out = rows.to_vec();
                out.reserve(new.len());
                for values in new {
                    let t = Tuple::new(values.clone());
                    if !t.conforms_to(schema) {
                        return Err(StorageError::SchemaMismatch {
                            table: table.clone(),
                            detail: format!("inserted row {t} does not conform to schema {schema}"),
                        });
                    }
                    out.push(t);
                }
                Ok((out, new.len() as u64))
            }
            Mutation::Update {
                table,
                set,
                where_col,
                where_value,
            } => {
                let pred = schema.resolve(where_col)?;
                let mut assignments = Vec::with_capacity(set.len());
                for (col, value) in set {
                    let i = schema.resolve(col)?;
                    let c = schema.column(i);
                    if !value.fits(c.data_type) || (!c.nullable && value.is_null()) {
                        return Err(StorageError::SchemaMismatch {
                            table: table.clone(),
                            detail: format!(
                                "value {value} does not fit column '{}' ({})",
                                c.name, c.data_type
                            ),
                        });
                    }
                    assignments.push((i, value.clone()));
                }
                let mut out = rows.to_vec();
                let mut affected = 0u64;
                for row in &mut out {
                    if row.value(pred) != where_value {
                        continue;
                    }
                    let mut values = row.values().to_vec();
                    for (i, v) in &assignments {
                        values[*i] = v.clone();
                    }
                    *row = Tuple::new(values);
                    affected += 1;
                }
                Ok((out, affected))
            }
            Mutation::Delete {
                where_col,
                where_value,
                ..
            } => {
                let pred = schema.resolve(where_col)?;
                let before = rows.len();
                let out: Vec<Tuple> = rows
                    .iter()
                    .filter(|r| r.value(pred) != where_value)
                    .cloned()
                    .collect();
                let affected = (before - out.len()) as u64;
                Ok((out, affected))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn emp_schema() -> Schema {
        Schema::from_pairs(&[
            ("eid", DataType::Int),
            ("did", DataType::Int),
            ("sal", DataType::Double),
        ])
    }

    fn emp_rows() -> Vec<Tuple> {
        vec![
            tuple![1, 10, 100.0],
            tuple![2, 20, 200.0],
            tuple![3, 10, 300.0],
        ]
    }

    #[test]
    fn insert_appends_conforming_rows() {
        let m = Mutation::Insert {
            table: "emp".into(),
            rows: vec![
                vec![Value::Int(4), Value::Int(30), Value::Double(400.0)],
                vec![Value::Int(5), Value::Int(10), Value::Double(500.0)],
            ],
        };
        let (rows, n) = m.apply(&emp_schema(), &emp_rows()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3], tuple![4, 30, 400.0]);
        assert_eq!(rows[..3], emp_rows()[..]);
    }

    #[test]
    fn insert_rejects_bad_arity_and_type() {
        let bad_arity = Mutation::Insert {
            table: "emp".into(),
            rows: vec![vec![Value::Int(4)]],
        };
        assert!(matches!(
            bad_arity.apply(&emp_schema(), &emp_rows()),
            Err(StorageError::SchemaMismatch { .. })
        ));
        let bad_type = Mutation::Insert {
            table: "emp".into(),
            rows: vec![vec![
                Value::Str("x".into()),
                Value::Int(1),
                Value::Double(1.0),
            ]],
        };
        assert!(matches!(
            bad_type.apply(&emp_schema(), &emp_rows()),
            Err(StorageError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn update_rewrites_matching_rows_in_place() {
        let m = Mutation::Update {
            table: "emp".into(),
            set: vec![("sal".into(), Value::Double(999.0))],
            where_col: "did".into(),
            where_value: Value::Int(10),
        };
        let (rows, n) = m.apply(&emp_schema(), &emp_rows()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rows[0], tuple![1, 10, 999.0]);
        assert_eq!(rows[1], tuple![2, 20, 200.0]);
        assert_eq!(rows[2], tuple![3, 10, 999.0]);
    }

    #[test]
    fn update_unknown_column_is_typed() {
        let m = Mutation::Update {
            table: "emp".into(),
            set: vec![("nope".into(), Value::Int(1))],
            where_col: "did".into(),
            where_value: Value::Int(10),
        };
        assert!(matches!(
            m.apply(&emp_schema(), &emp_rows()),
            Err(StorageError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn update_value_must_fit_column() {
        let m = Mutation::Update {
            table: "emp".into(),
            set: vec![("did".into(), Value::Str("hr".into()))],
            where_col: "eid".into(),
            where_value: Value::Int(1),
        };
        assert!(matches!(
            m.apply(&emp_schema(), &emp_rows()),
            Err(StorageError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn delete_preserves_survivor_order() {
        let m = Mutation::Delete {
            table: "emp".into(),
            where_col: "did".into(),
            where_value: Value::Int(10),
        };
        let (rows, n) = m.apply(&emp_schema(), &emp_rows()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rows, vec![tuple![2, 20, 200.0]]);
    }

    #[test]
    fn no_match_affects_zero_rows() {
        let m = Mutation::Delete {
            table: "emp".into(),
            where_col: "did".into(),
            where_value: Value::Int(777),
        };
        let (rows, n) = m.apply(&emp_schema(), &emp_rows()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(rows, emp_rows());
    }

    #[test]
    fn apply_is_pure_and_replayable() {
        // Replaying the same committed log twice from the same base
        // yields identical rows — the oracle property the chaos
        // harness leans on.
        let log = vec![
            Mutation::Insert {
                table: "emp".into(),
                rows: vec![vec![Value::Int(9), Value::Int(90), Value::Double(9.0)]],
            },
            Mutation::Update {
                table: "emp".into(),
                set: vec![("sal".into(), Value::Double(1.5))],
                where_col: "eid".into(),
                where_value: Value::Int(9),
            },
            Mutation::Delete {
                table: "emp".into(),
                where_col: "did".into(),
                where_value: Value::Int(20),
            },
        ];
        let replay = || {
            let mut rows = emp_rows();
            for m in &log {
                rows = m.apply(&emp_schema(), &rows).unwrap().0;
            }
            rows
        };
        assert_eq!(replay(), replay());
        assert_eq!(replay().len(), 3);
    }

    #[test]
    fn verb_and_table_accessors() {
        let m = Mutation::Delete {
            table: "emp".into(),
            where_col: "did".into(),
            where_value: Value::Int(1),
        };
        assert_eq!(m.verb(), "DELETE");
        assert_eq!(m.table(), "emp");
    }
}
