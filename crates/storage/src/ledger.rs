//! The cost ledger: deterministic accounting of the quantities the
//! paper's cost formulas are written in.
//!
//! Every operator charges its page I/Os, tuple operations, shipped bytes
//! and messages, and user-function invocations here. Benchmarks read the
//! ledger to report *model-unit* costs (stable across machines) next to
//! wall-clock time, and integration tests assert exact counts — e.g. the
//! §5.3 claim that a local semi-join needs "two scans of the outer and
//! one scan of the inner".

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Workspace-wide convention: one page I/O costs as much as this many
/// tuple operations (i.e. the default CPU weight is `1 /
/// TUPLE_OPS_PER_PAGE`). UDF implementations use it to charge their
/// page-unit invocation costs as tuple ops.
pub const TUPLE_OPS_PER_PAGE: u64 = 100;

/// Default CPU weight: the page-unit cost of one tuple operation.
pub const CPU_WEIGHT_DEFAULT: f64 = 1.0 / TUPLE_OPS_PER_PAGE as f64;

/// Shared, thread-safe cost counters.
///
/// All counters are monotone; [`CostLedger::snapshot`] captures a point
/// and [`LedgerSnapshot::delta`] computes charges between two points.
#[derive(Debug, Default)]
pub struct CostLedger {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    tuple_ops: AtomicU64,
    bytes_shipped: AtomicU64,
    messages: AtomicU64,
    udf_calls: AtomicU64,
}

impl CostLedger {
    /// A fresh ledger with all counters at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(CostLedger::default())
    }

    /// Charges `n` page reads.
    pub fn read_pages(&self, n: u64) {
        self.page_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` page writes.
    pub fn write_pages(&self, n: u64) {
        self.page_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` tuple operations (comparisons, hashes, moves). The
    /// cost model weighs these against page I/Os with a CPU weight.
    pub fn tuple_ops(&self, n: u64) {
        self.tuple_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `bytes` shipped across the network in one message.
    pub fn ship(&self, bytes: u64) {
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges one user-defined-function invocation.
    pub fn udf_call(&self) {
        self.udf_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            tuple_ops: self.tuple_ops.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            udf_calls: self.udf_calls.load(Ordering::Relaxed),
        }
    }
}

/// An immutable point-in-time copy of ledger counters, and the unit in
/// which measured costs are reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Logical page reads.
    pub page_reads: u64,
    /// Logical page writes.
    pub page_writes: u64,
    /// Tuple operations (comparisons / hashes / moves).
    pub tuple_ops: u64,
    /// Bytes shipped between sites.
    pub bytes_shipped: u64,
    /// Network messages sent.
    pub messages: u64,
    /// User-defined-function invocations.
    pub udf_calls: u64,
}

impl LedgerSnapshot {
    /// Charges accumulated since `earlier` (component-wise difference).
    pub fn delta(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            tuple_ops: self.tuple_ops - earlier.tuple_ops,
            bytes_shipped: self.bytes_shipped - earlier.bytes_shipped,
            messages: self.messages - earlier.messages,
            udf_calls: self.udf_calls - earlier.udf_calls,
        }
    }

    /// Total page I/Os (reads + writes).
    pub fn page_ios(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Collapses the snapshot to one scalar cost using the same weights
    /// the optimizer uses, so measured and predicted costs are in the
    /// same unit (see `fj-optimizer::cost::CostParams`).
    pub fn weighted(&self, cpu_weight: f64, net_per_byte: f64, net_per_msg: f64) -> f64 {
        self.page_ios() as f64
            + cpu_weight * self.tuple_ops as f64
            + net_per_byte * self.bytes_shipped as f64
            + net_per_msg * self.messages as f64
    }
}

impl fmt::Display for LedgerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} tupleops={} shipped={}B msgs={} udf={}",
            self.page_reads,
            self.page_writes,
            self.tuple_ops,
            self.bytes_shipped,
            self.messages,
            self.udf_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let l = CostLedger::new();
        l.read_pages(3);
        l.read_pages(2);
        l.write_pages(1);
        l.tuple_ops(10);
        l.ship(100);
        l.ship(50);
        l.udf_call();
        let s = l.snapshot();
        assert_eq!(s.page_reads, 5);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.page_ios(), 6);
        assert_eq!(s.tuple_ops, 10);
        assert_eq!(s.bytes_shipped, 150);
        assert_eq!(s.messages, 2);
        assert_eq!(s.udf_calls, 1);
    }

    #[test]
    fn delta_between_snapshots() {
        let l = CostLedger::new();
        l.read_pages(4);
        let before = l.snapshot();
        l.read_pages(6);
        l.tuple_ops(2);
        let d = l.snapshot().delta(&before);
        assert_eq!(d.page_reads, 6);
        assert_eq!(d.tuple_ops, 2);
        assert_eq!(d.page_writes, 0);
    }

    #[test]
    fn weighted_cost_combines_dimensions() {
        let s = LedgerSnapshot {
            page_reads: 10,
            page_writes: 5,
            tuple_ops: 100,
            bytes_shipped: 1000,
            messages: 2,
            udf_calls: 0,
        };
        let c = s.weighted(0.01, 0.001, 1.0);
        assert!((c - (15.0 + 1.0 + 1.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn ledger_is_shareable_across_threads() {
        let l = CostLedger::new();
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || l2.read_pages(7));
        l.read_pages(3);
        h.join().unwrap();
        assert_eq!(l.snapshot().page_reads, 10);
    }

    /// The charge totals two concurrently charging threads produce must
    /// reconcile exactly with the serial sum — the property that lets
    /// parallel operators keep measured costs identical to the System-R
    /// formulas (no charge may be lost to a data race).
    #[test]
    fn two_thread_charges_reconcile_exactly() {
        const PER_THREAD: u64 = 10_000;
        let l = CostLedger::new();
        let before = l.snapshot();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        l.read_pages(1);
                        l.write_pages(2);
                        l.tuple_ops(3);
                        l.ship(4);
                        l.udf_call();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let d = l.snapshot().delta(&before);
        assert_eq!(d.page_reads, 2 * PER_THREAD);
        assert_eq!(d.page_writes, 4 * PER_THREAD);
        assert_eq!(d.tuple_ops, 6 * PER_THREAD);
        assert_eq!(d.bytes_shipped, 8 * PER_THREAD);
        assert_eq!(d.messages, 2 * PER_THREAD);
        assert_eq!(d.udf_calls, 2 * PER_THREAD);
        // And the weighted scalar cost equals the serial formula.
        let weighted = d.weighted(CPU_WEIGHT_DEFAULT, 0.001, 1.0);
        let serial = (2.0 + 4.0) * PER_THREAD as f64
            + CPU_WEIGHT_DEFAULT * 6.0 * PER_THREAD as f64
            + 0.001 * 8.0 * PER_THREAD as f64
            + 1.0 * 2.0 * PER_THREAD as f64;
        assert!((weighted - serial).abs() < 1e-6);
    }
}
