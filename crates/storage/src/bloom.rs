//! Bloom filters — the paper's *lossy filter sets*.
//!
//! §3.2: "The filter set can be represented exactly, or in a lossy
//! fashion ... The lossiness may be introduced by an implementation like
//! a Bloom filter". A Bloom filter is a fixed-size bit vector representing
//! a superset of the filter set: membership tests never produce false
//! negatives (so filter joins stay *correct*), but false positives let
//! some non-matching inner tuples through, trading selectivity for a
//! compact, fixed shipping size (§5.1).

use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Upper bound on Bloom filter size: 2^27 bits = 16 MiB, far beyond any
/// sensible filter set and small enough to survive an estimation blunder.
pub const MAX_BLOOM_BITS: u64 = 1 << 27;

/// A Bloom filter over [`Value`]s with `k` independent hash functions
/// derived from double hashing.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// A filter with `n_bits` bits (rounded up to a multiple of 64, min
    /// 64) and `n_hashes` hash functions (clamped to 1..=16).
    pub fn new(n_bits: u64, n_hashes: u32) -> BloomFilter {
        let n_bits = n_bits.max(64).div_ceil(64) * 64;
        BloomFilter {
            bits: vec![0u64; (n_bits / 64) as usize],
            n_bits,
            n_hashes: n_hashes.clamp(1, 16),
            inserted: 0,
        }
    }

    /// Analytic sizing for `expected` insertions at target
    /// false-positive rate `fp`: returns `(bits, hashes)` from the
    /// standard formulas `m = −n·ln p / (ln 2)²`, `k = (m/n)·ln 2` —
    /// with bits capped at [`MAX_BLOOM_BITS`] so a wild cardinality
    /// estimate can never demand an absurd allocation. Use this during
    /// query *costing*; it allocates nothing.
    pub fn sizing(expected: u64, fp: f64) -> (u64, u32) {
        let fp = fp.clamp(1e-9, 0.5);
        let n = (expected.max(1) as f64).min(MAX_BLOOM_BITS as f64);
        let m = (-n * fp.ln() / (2f64.ln() * 2f64.ln())).ceil();
        let m = (m as u64).clamp(64, MAX_BLOOM_BITS);
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        (m, k)
    }

    /// Sizes and *allocates* a filter for `expected` insertions at
    /// target false-positive rate `fp` (see [`BloomFilter::sizing`]).
    pub fn with_capacity(expected: u64, fp: f64) -> BloomFilter {
        let (m, k) = BloomFilter::sizing(expected, fp);
        BloomFilter::new(m, k)
    }

    fn hash_pair(value: &Value) -> (u64, u64) {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        value.hash(&mut h1);
        let a = h1.finish();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        a.hash(&mut h2);
        0xdeadbeefu64.hash(&mut h2);
        (a, h2.finish() | 1) // odd step so probes cycle the whole table
    }

    /// Inserts a value.
    pub fn insert(&mut self, value: &Value) {
        let (a, b) = Self::hash_pair(value);
        for i in 0..self.n_hashes as u64 {
            let bit = a.wrapping_add(i.wrapping_mul(b)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Membership test: `false` means *definitely absent*; `true` means
    /// present or a false positive.
    pub fn contains(&self, value: &Value) -> bool {
        let (a, b) = Self::hash_pair(value);
        (0..self.n_hashes as u64).all(|i| {
            let bit = a.wrapping_add(i.wrapping_mul(b)) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size in bits.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Hash function count.
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// The raw bit words, for shipping the filter across the wire.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a filter from shipped parts. Returns `None` unless the
    /// geometry is coherent: `n_bits` a positive multiple of 64 equal to
    /// `words.len() * 64`, at most [`MAX_BLOOM_BITS`], and `n_hashes`
    /// in `1..=16` — so a lying peer cannot make membership tests index
    /// out of bounds.
    pub fn from_parts(
        words: Vec<u64>,
        n_bits: u64,
        n_hashes: u32,
        inserted: u64,
    ) -> Option<BloomFilter> {
        if n_bits == 0
            || !n_bits.is_multiple_of(64)
            || n_bits > MAX_BLOOM_BITS
            || words.len() as u64 != n_bits / 64
            || !(1..=16).contains(&n_hashes)
        {
            return None;
        }
        Some(BloomFilter {
            bits: words,
            n_bits,
            n_hashes,
            inserted,
        })
    }

    /// Size in bytes — the fixed wire size when a lossy filter set is
    /// shipped to a remote site.
    pub fn byte_size(&self) -> u64 {
        self.n_bits / 8
    }

    /// Values inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Predicted false-positive rate for the current load:
    /// `(1 − e^(−k·n/m))^k`.
    pub fn predicted_fp_rate(&self) -> f64 {
        let k = self.n_hashes as f64;
        let n = self.inserted as f64;
        let m = self.n_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 4);
        for i in 0..100 {
            f.insert(&Value::Int(i));
        }
        for i in 0..100 {
            assert!(f.contains(&Value::Int(i)), "false negative at {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_prediction() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            f.insert(&Value::Int(i));
        }
        let fps = (1000..101_000)
            .filter(|&i| f.contains(&Value::Int(i)))
            .count();
        let measured = fps as f64 / 100_000.0;
        assert!(
            measured < 0.03,
            "measured fp rate {measured} too far above target 0.01"
        );
        assert!(f.predicted_fp_rate() < 0.02);
    }

    #[test]
    fn tiny_filter_saturates_gracefully() {
        let mut f = BloomFilter::new(64, 2);
        for i in 0..10_000 {
            f.insert(&Value::Int(i));
        }
        // Saturated filter: everything looks present (superset semantics
        // preserved; selectivity lost).
        assert!(f.contains(&Value::Int(123_456)));
        assert!(f.predicted_fp_rate() > 0.99);
    }

    #[test]
    fn works_for_strings_and_mixed_types() {
        let mut f = BloomFilter::new(512, 3);
        f.insert(&Value::Str("hr".into()));
        f.insert(&Value::Double(2.5));
        assert!(f.contains(&Value::Str("hr".into())));
        assert!(f.contains(&Value::Double(2.5)));
        // Int(2) != Double(2.5), overwhelmingly likely absent.
        assert!(!f.contains(&Value::Str("engineering-nonexistent".into())));
    }

    #[test]
    fn byte_size_is_fixed_regardless_of_insertions() {
        let mut f = BloomFilter::new(4096, 4);
        let before = f.byte_size();
        for i in 0..5000 {
            f.insert(&Value::Int(i));
        }
        assert_eq!(f.byte_size(), before);
        assert_eq!(before, 512);
    }

    #[test]
    fn capacity_sizing_reasonable() {
        let f = BloomFilter::with_capacity(10_000, 0.01);
        // ~9.6 bits per entry for 1% fp.
        assert!(
            f.n_bits() > 90_000 && f.n_bits() < 110_000,
            "{}",
            f.n_bits()
        );
    }

    #[test]
    fn int_double_equality_respected() {
        // Value::Int(5) == Value::Double(5.0) must hash equally, so a
        // filter built from ints matches the equal double.
        let mut f = BloomFilter::new(1024, 4);
        f.insert(&Value::Int(5));
        assert!(f.contains(&Value::Double(5.0)));
    }
}
