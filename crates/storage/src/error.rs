//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the storage layer.
///
/// Storage errors are user-input errors (schema mismatches, unknown
/// columns) rather than internal invariant violations; internal
/// invariants are asserted with `debug_assert!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's arity or value types do not match the table schema.
    SchemaMismatch {
        /// Name of the table the tuple was destined for.
        table: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A column name could not be resolved against a schema.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
        /// Columns that were available.
        available: Vec<String>,
    },
    /// An index was requested over a column that does not exist.
    BadIndexColumn {
        /// The offending column index.
        index: usize,
        /// Number of columns in the schema.
        arity: usize,
    },
    /// Two schemas were combined with conflicting column names.
    DuplicateColumn(String),
    /// A page read failed because a seeded [`crate::FaultPlan`]
    /// injected an error at this I/O ordinal. Only ever produced by
    /// fault-aware access paths with an armed plan.
    InjectedFault {
        /// The 0-based page-read ordinal at which the fault fired.
        ordinal: u64,
    },
    /// A disk-backed page store (attached via [`crate::PageBacking`])
    /// failed to serve a physical page: I/O error, checksum mismatch,
    /// or a page missing from the file.
    Backing {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A temp spill file (see [`crate::TempStore`]) failed: I/O error,
    /// truncated frame, or checksum mismatch.
    TempFile {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch for table '{table}': {detail}")
            }
            StorageError::UnknownColumn { column, available } => {
                write!(
                    f,
                    "unknown column '{column}' (available: {})",
                    available.join(", ")
                )
            }
            StorageError::BadIndexColumn { index, arity } => {
                write!(f, "index column {index} out of range for arity {arity}")
            }
            StorageError::DuplicateColumn(name) => {
                write!(f, "duplicate column name '{name}' when combining schemas")
            }
            StorageError::InjectedFault { ordinal } => {
                write!(f, "injected I/O fault at page read {ordinal}")
            }
            StorageError::Backing { detail } => {
                write!(f, "page backing failure: {detail}")
            }
            StorageError::TempFile { detail } => {
                write!(f, "temp spill file failure: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::SchemaMismatch {
            table: "emp".into(),
            detail: "expected 3 values, got 2".into(),
        };
        assert!(e.to_string().contains("emp"));
        assert!(e.to_string().contains("expected 3"));

        let e = StorageError::UnknownColumn {
            column: "salry".into(),
            available: vec!["sal".into(), "age".into()],
        };
        assert!(e.to_string().contains("salry"));
        assert!(e.to_string().contains("sal, age"));

        let e = StorageError::BadIndexColumn { index: 5, arity: 3 };
        assert!(e.to_string().contains('5'));

        let e = StorageError::DuplicateColumn("did".into());
        assert!(e.to_string().contains("did"));
    }
}
