//! Table and column statistics.
//!
//! The optimizer's selectivity and cardinality estimates (§2.3's "usual
//! assumptions") come from here: row counts, per-column distinct counts,
//! min/max, and equi-depth histograms. The module also implements the
//! Yao/Cardenas distinct-after-projection estimate that §4 prescribes for
//! `ProjCost_F` / filter-set cardinality ("the optimizer can make an
//! estimate based on the cardinality of the production set P, and
//! assumptions about the distributions of values \[Yao77\]").

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;

/// Number of buckets in equi-depth histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-depth histogram over one column's non-null values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive); `bounds.len()` buckets, each
    /// holding ~`depth` values.
    bounds: Vec<Value>,
    /// Values per bucket.
    depth: u64,
    /// Total non-null values summarized.
    total: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram from (a copy of) the column values.
    /// Returns `None` when there are no non-null values to summarize.
    pub fn build(mut values: Vec<Value>) -> Option<Histogram> {
        values.retain(|v| !v.is_null());
        if values.is_empty() {
            return None;
        }
        values.sort();
        let total = values.len() as u64;
        let buckets = HISTOGRAM_BUCKETS.min(values.len());
        let depth = (values.len() as u64).div_ceil(buckets as u64);
        let mut bounds = Vec::with_capacity(buckets);
        let mut i = depth as usize;
        while i <= values.len() {
            bounds.push(values[i - 1].clone());
            i += depth as usize;
        }
        if bounds.last() != values.last() {
            bounds.push(values.last().expect("non-empty").clone());
        }
        Some(Histogram {
            bounds,
            depth,
            total,
        })
    }

    /// Estimated fraction of values `<= v`.
    pub fn fraction_le(&self, v: &Value) -> f64 {
        let full = self
            .bounds
            .iter()
            .take_while(|b| (*b).cmp(v) != std::cmp::Ordering::Greater)
            .count();
        // Count every bucket whose upper bound is <= v as fully selected,
        // plus half of the next bucket (values straddle it).
        let selected = (full as f64 * self.depth as f64
            + if full < self.bounds.len() {
                self.depth as f64 * 0.5
            } else {
                0.0
            })
        .min(self.total as f64);
        selected / self.total as f64
    }

    /// Estimated fraction of values in `[lo, hi]`.
    pub fn fraction_between(&self, lo: &Value, hi: &Value) -> f64 {
        if lo > hi {
            return 0.0;
        }
        (self.fraction_le(hi) - self.fraction_le(lo)).max(0.0)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len()
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Distinct non-null values.
    pub distinct: u64,
    /// Nulls observed.
    pub null_count: u64,
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Equi-depth histogram, when the column had non-null values.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Computes stats over one column of `rows`.
    pub fn analyze(rows: &[Tuple], col: usize) -> ColumnStats {
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut null_count = 0u64;
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for t in rows {
            let v = t.value(col);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            distinct.insert(v);
            min = Some(match min {
                Some(m) if m <= v => m,
                _ => v,
            });
            max = Some(match max {
                Some(m) if m >= v => m,
                _ => v,
            });
        }
        let histogram = Histogram::build(rows.iter().map(|t| t.value(col).clone()).collect());
        ColumnStats {
            distinct: distinct.len() as u64,
            null_count,
            min: min.cloned(),
            max: max.cloned(),
            histogram,
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes full statistics (an `ANALYZE`).
    pub fn analyze(schema: &Schema, rows: &[Tuple]) -> TableStats {
        TableStats {
            rows: rows.len() as u64,
            columns: (0..schema.arity())
                .map(|c| ColumnStats::analyze(rows, c))
                .collect(),
        }
    }

    /// Stats for column `i`, if analyzed.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }
}

/// Yao/Cardenas estimate of the number of *distinct* values seen when `n`
/// tuples are drawn (with replacement) from a domain of `d` distinct
/// values: `d · (1 − (1 − 1/d)^n)`.
///
/// This is the classic approximation the paper cites (\[Yao77\]) for
/// estimating filter-set cardinality from the production-set cardinality.
pub fn yao_distinct(n: u64, d: u64) -> f64 {
    if d == 0 || n == 0 {
        return 0.0;
    }
    let d = d as f64;
    let n = n as f64;
    // Compute (1 - 1/d)^n in log space for numerical stability at large n.
    let est = d * (1.0 - ((n * (1.0 - 1.0 / d).ln()).exp()));
    est.min(d).min(n).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::DataType;

    fn int_rows(vals: &[i64]) -> Vec<Tuple> {
        vals.iter().map(|&v| tuple![v]).collect()
    }

    #[test]
    fn column_stats_basic() {
        let rows = int_rows(&[5, 1, 3, 3, 9]);
        let s = ColumnStats::analyze(&rows, 0);
        assert_eq!(s.distinct, 4);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
    }

    #[test]
    fn column_stats_with_nulls() {
        let rows = vec![
            Tuple::new(vec![Value::Null]),
            tuple![2],
            Tuple::new(vec![Value::Null]),
        ];
        let s = ColumnStats::analyze(&rows, 0);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.min, Some(Value::Int(2)));
    }

    #[test]
    fn all_null_column_has_no_histogram() {
        let rows = vec![Tuple::new(vec![Value::Null])];
        let s = ColumnStats::analyze(&rows, 0);
        assert!(s.histogram.is_none());
        assert_eq!(s.min, None);
    }

    #[test]
    fn histogram_uniform_fractions() {
        let vals: Vec<Value> = (0..1000).map(Value::Int).collect();
        let h = Histogram::build(vals).unwrap();
        let f = h.fraction_le(&Value::Int(499));
        assert!((f - 0.5).abs() < 0.05, "got {f}");
        assert!(h.fraction_le(&Value::Int(5000)) > 0.99);
        let f = h.fraction_between(&Value::Int(250), &Value::Int(750));
        assert!((f - 0.5).abs() < 0.08, "got {f}");
    }

    #[test]
    fn histogram_skewed_data_equi_depth() {
        // 90% of values are 0; equi-depth buckets absorb the skew.
        let mut vals: Vec<Value> = vec![Value::Int(0); 900];
        vals.extend((1..=100).map(Value::Int));
        let h = Histogram::build(vals).unwrap();
        assert!(h.fraction_le(&Value::Int(0)) > 0.8);
    }

    #[test]
    fn histogram_empty_range() {
        let h = Histogram::build((0..100).map(Value::Int).collect()).unwrap();
        assert_eq!(h.fraction_between(&Value::Int(80), &Value::Int(20)), 0.0);
    }

    #[test]
    fn table_stats_covers_all_columns() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![tuple![1, "x"], tuple![2, "x"]];
        let ts = TableStats::analyze(&schema, &rows);
        assert_eq!(ts.rows, 2);
        assert_eq!(ts.columns.len(), 2);
        assert_eq!(ts.column(0).unwrap().distinct, 2);
        assert_eq!(ts.column(1).unwrap().distinct, 1);
        assert!(ts.column(2).is_none());
    }

    #[test]
    fn yao_limits() {
        // Drawing 0 tuples sees 0 distinct values.
        assert_eq!(yao_distinct(0, 100), 0.0);
        // Drawing many tuples from a small domain saturates at d.
        assert!((yao_distinct(1_000_000, 10) - 10.0).abs() < 1e-6);
        // Drawing n << d tuples sees ~n distinct values.
        let est = yao_distinct(10, 1_000_000);
        assert!((est - 10.0).abs() < 0.01, "got {est}");
        // Never exceeds n or d.
        assert!(yao_distinct(50, 100) <= 50.0);
    }

    #[test]
    fn yao_monotone_in_n() {
        let mut prev = 0.0;
        for n in [1u64, 10, 100, 1000, 10_000] {
            let e = yao_distinct(n, 500);
            assert!(e >= prev);
            prev = e;
        }
    }
}
