//! Ergonomic table construction for tests, examples and workload
//! generators.

use crate::error::StorageError;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Builder collecting a schema and rows, producing a validated
/// [`Table`].
///
/// ```
/// use fj_storage::{TableBuilder, DataType, Value};
/// let dept = TableBuilder::new("Dept")
///     .column("did", DataType::Int)
///     .column("budget", DataType::Double)
///     .row(vec![Value::Int(1), Value::Double(500_000.0)])
///     .row(vec![Value::Int(2), Value::Double(90_000.0)])
///     .build()
///     .unwrap();
/// assert_eq!(dept.row_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    rows: Vec<Tuple>,
}

impl TableBuilder {
    /// Starts a builder for table `name`.
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Appends a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(Column::new(name, ty));
        self
    }

    /// Appends a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(Column::nullable(name, ty));
        self
    }

    /// Appends one row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(Tuple::new(values));
        self
    }

    /// Appends many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows.into_iter().map(Tuple::new));
        self
    }

    /// Validates and builds the table.
    pub fn build(self) -> Result<Table, StorageError> {
        let schema = Schema::new(self.columns)?;
        Table::new(self.name, schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let t = TableBuilder::new("t")
            .column("a", DataType::Int)
            .nullable_column("b", DataType::Str)
            .row(vec![Value::Int(1), Value::Null])
            .rows([vec![Value::Int(2), Value::Str("x".into())]])
            .build()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn bad_row_fails() {
        let err = TableBuilder::new("t")
            .column("a", DataType::Int)
            .row(vec![Value::Str("no".into())])
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn duplicate_column_fails() {
        let err = TableBuilder::new("t")
            .column("a", DataType::Int)
            .column("a", DataType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }
}
