//! Physical page backing: the seam between ledger-accounted in-memory
//! tables and a real disk-backed page store.
//!
//! The engine's tables are immutable in-memory heaps whose scans charge
//! *simulated* page I/O to the [`crate::CostLedger`]. A [`PageBacking`]
//! attached to a table makes those charges physical: every logical page
//! an access path touches is also fetched through the backing (a buffer
//! pool over a checksummed page file in `fj-store`), so the simulated
//! ledger counts and the backing's physical read counts can be diffed —
//! the validation the paper's Table-1 formulas never got.
//!
//! The trait lives here (not in `fj-store`) so `fj-storage` stays free
//! of disk dependencies and the crates don't cycle: `fj-store`
//! implements the trait, tables only name it.

use crate::error::StorageError;
use std::fmt::Debug;

/// A physical source of table pages, consulted page-by-page alongside
/// the ledger charges of the fault-aware access paths.
///
/// Implementations are expected to cache: a hot page costs nothing
/// physical, a cold page costs exactly one disk read. Row *contents*
/// still come from the in-memory heap — the backing's job is to be the
/// physical ground truth those bytes were loaded from (and verified
/// against at load/recovery time), not a second row source on the
/// query path.
pub trait PageBacking: Debug + Send + Sync {
    /// Fetches logical page `page_no` of this table through the pool.
    ///
    /// Errors surface real storage failures: I/O errors, checksum
    /// mismatches, or a page missing from the file.
    fn read_page(&self, page_no: u64) -> Result<(), StorageError>;

    /// Writes the new physical bytes of logical page `page_no` through
    /// the pool (dirty-page tracking; the store's WAL has already made
    /// the change durable by the time this is called).
    ///
    /// The default rejects writes: read-only backings (and test
    /// doubles) stay valid implementations without opting in to the
    /// mutable heap path.
    fn write_page(&self, page_no: u64, payload: &[u8]) -> Result<(), StorageError> {
        let _ = payload;
        Err(StorageError::Backing {
            detail: format!("page backing is read-only (write to page {page_no})"),
        })
    }
}
