//! Disk-backed temporary partition files for spilling operators.
//!
//! When a build side outgrows its memory grant, the spilling operators
//! in `fj-exec` (grace hash join, external merge sort, spillable
//! aggregate/distinct) partition their inputs into temp files managed
//! here. The store is deliberately simple — append-only files of
//! checksummed row frames — but it carries the same reliability
//! discipline as the WAL and page store:
//!
//! * **Checksummed frames.** Every flush writes one frame
//!   `[len u32][checksum u64][payload]`; a torn write (the device
//!   persists only a prefix, silently) is detected by the checksum.
//! * **Write-verify-rewrite.** Unlike WAL records, temp data is still
//!   in memory when it is flushed, so a torn frame is not a loss: the
//!   writer reads each frame back, and rewrites it in place (bounded
//!   retries) when verification fails. Spills therefore survive torn
//!   temp writes with no client-visible failure.
//! * **Fault injection.** [`FaultPlan::on_temp_write`] /
//!   [`FaultPlan::on_temp_fsync`] draw torn-temp-write and
//!   slow-temp-fsync decisions on their own ordinal streams, so the
//!   memory-chaos harness can exercise the rewrite machinery
//!   deterministically.
//! * **RAII cleanup.** A [`SpillFile`] deletes its backing file on
//!   drop, so a query that errors, cancels, or panics mid-spill leaks
//!   nothing; the store removes its directory when dropped.
//!
//! The row codec mirrors the tagged little-endian layout used by the
//! disk page store in `fj-store` (fj-storage sits below it in the crate
//! graph, so the codec is restated here rather than imported).

use crate::error::StorageError;
use crate::fault::{FaultPlan, PageWriteFault};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame header: `len: u32` + `checksum: u64`.
const FRAME_HEADER: usize = 12;

/// Upper bound on a single frame payload; a corrupt length prefix must
/// produce a typed error, not a giant allocation.
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Bounded in-place rewrite attempts for a frame that keeps failing
/// read-back verification (i.e. the fault plan keeps tearing it).
const MAX_TORN_REWRITES: u32 = 8;

/// FNV-1a 64-bit checksum — cheap, deterministic, and plenty to detect
/// prefix truncation and bit damage in temp frames.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::TempFile {
        detail: detail.into(),
    }
}

fn io_err(op: &str, err: std::io::Error) -> StorageError {
    StorageError::TempFile {
        detail: format!("{op}: {err}"),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.pos + n > self.bytes.len() {
            return Err(corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(2);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
    }
}

fn decode_value(c: &mut Cursor<'_>) -> Result<Value, StorageError> {
    match c.take(1)?[0] {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(c.i64()?)),
        2 => Ok(Value::Double(f64::from_bits(c.u64()?))),
        3 => {
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("string value is not valid UTF-8"))?;
            Ok(Value::Str(s.to_string()))
        }
        4 => match c.take(1)?[0] {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(corrupt(format!("invalid bool byte {b}"))),
        },
        tag => Err(corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Encodes a batch of rows as one frame payload:
/// `[row_count u32]` then per row `[arity u32][tagged values...]`.
pub fn encode_rows(rows: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rows.len() * 16);
    put_u32(&mut out, rows.len() as u32);
    for row in rows {
        put_u32(&mut out, row.arity() as u32);
        for v in row.values() {
            encode_value(&mut out, v);
        }
    }
    out
}

/// Decodes a frame payload produced by [`encode_rows`]. Total: any byte
/// string either decodes to exactly the encoded rows or yields a typed
/// [`StorageError::TempFile`] — never a panic. Trailing bytes are an
/// error (a frame is exactly one batch).
pub fn decode_rows(bytes: &[u8]) -> Result<Vec<Tuple>, StorageError> {
    let mut c = Cursor { bytes, pos: 0 };
    let n = c.u32()? as usize;
    if n > bytes.len() {
        return Err(corrupt(format!("row count {n} exceeds payload size")));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let arity = c.u32()? as usize;
        if arity > bytes.len() {
            return Err(corrupt(format!("arity {arity} exceeds payload size")));
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(decode_value(&mut c)?);
        }
        rows.push(Tuple::new(values));
    }
    if c.pos != bytes.len() {
        return Err(corrupt(format!(
            "trailing bytes: {} of {} undecoded",
            bytes.len() - c.pos,
            bytes.len()
        )));
    }
    Ok(rows)
}

/// A point-in-time snapshot of the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TempStoreStats {
    /// Spill files created since the store opened.
    pub files_created: u64,
    /// Spill files deleted (RAII drop) since the store opened.
    pub files_deleted: u64,
    /// Frame bytes appended to spill files (excludes torn prefixes that
    /// were rewritten in place).
    pub bytes_written: u64,
    /// Frame bytes read back by spill readers.
    pub bytes_read: u64,
    /// Bytes currently held in live spill files.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Frames that failed read-back verification after a torn write and
    /// were rewritten in place.
    pub torn_rewrites: u64,
}

/// A directory of temp spill files with fault injection and RAII
/// lifecycle. Cheap to share (`Arc`); all counters are atomics.
#[derive(Debug)]
pub struct TempStore {
    dir: PathBuf,
    created_dir: bool,
    faults: Option<Arc<FaultPlan>>,
    next_id: AtomicU64,
    files_created: AtomicU64,
    files_deleted: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    torn_rewrites: AtomicU64,
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

impl TempStore {
    /// Opens (creating if needed) a temp store rooted at `dir`. The
    /// directory is removed again when the store is dropped if this
    /// call created it; a pre-existing directory is left in place
    /// (only its spill files are cleaned, via [`SpillFile`] drops).
    pub fn open(dir: impl Into<PathBuf>) -> Result<TempStore, StorageError> {
        let dir = dir.into();
        let created_dir = !dir.exists();
        fs::create_dir_all(&dir).map_err(|e| io_err("create spill dir", e))?;
        Ok(TempStore {
            dir,
            created_dir,
            faults: None,
            next_id: AtomicU64::new(0),
            files_created: AtomicU64::new(0),
            files_deleted: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            torn_rewrites: AtomicU64::new(0),
        })
    }

    /// Opens a store in a fresh uniquely-named directory under the
    /// system temp dir (used when no spill dir is configured).
    pub fn open_scratch() -> Result<TempStore, StorageError> {
        let dir = std::env::temp_dir().join(format!(
            "fj-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        TempStore::open(dir)
    }

    /// Threads a fault plan through every temp write and seal.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> TempStore {
        self.faults = Some(faults);
        self
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> TempStoreStats {
        TempStoreStats {
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            torn_rewrites: self.torn_rewrites.load(Ordering::Relaxed),
        }
    }

    /// Number of entries physically present in the spill directory —
    /// the leak check the cancel-storm and chaos tests assert to zero.
    pub fn live_files_on_disk(&self) -> Result<usize, StorageError> {
        Ok(fs::read_dir(&self.dir)
            .map_err(|e| io_err("read spill dir", e))?
            .count())
    }

    /// Creates a fresh spill file for writing.
    pub fn create_file(self: &Arc<Self>) -> Result<TempWriter, StorageError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("spill-{id:08}.fjt"));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create spill file", e))?;
        self.files_created.fetch_add(1, Ordering::Relaxed);
        Ok(TempWriter {
            store: Arc::clone(self),
            guard: TempFileGuard {
                store: Arc::clone(self),
                path,
                bytes: 0,
            },
            file,
            offset: 0,
            rows: 0,
            frames: 0,
        })
    }

    fn note_written(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let live = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    fn note_deleted(&self, bytes: u64) {
        self.files_deleted.fetch_add(1, Ordering::Relaxed);
        self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        // Best-effort: a store that created its directory owns it
        // outright; one handed an existing directory only removes it if
        // empty (all spill files were already reclaimed by RAII).
        if self.created_dir {
            let _ = fs::remove_dir_all(&self.dir);
        } else {
            let _ = fs::remove_dir(&self.dir);
        }
    }
}

/// RAII ownership of one on-disk spill file: deletes the file and
/// settles the store's live-byte accounting on drop, whether the drop
/// is an orderly scope exit, an error unwind, or a cancellation.
#[derive(Debug)]
struct TempFileGuard {
    store: Arc<TempStore>,
    path: PathBuf,
    bytes: u64,
}

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
        self.store.note_deleted(self.bytes);
    }
}

/// Appends checksummed row frames to a spill file.
#[derive(Debug)]
pub struct TempWriter {
    store: Arc<TempStore>,
    guard: TempFileGuard,
    file: File,
    offset: u64,
    rows: u64,
    frames: u64,
}

impl TempWriter {
    /// Flushes one batch of rows as a single checksummed frame.
    ///
    /// Draws a torn-temp-write decision from the fault plan per
    /// physical write attempt; a torn frame is caught by read-back
    /// verification and rewritten in place (bounded retries), so an
    /// armed fault plan slows spills down without corrupting them.
    pub fn write_rows(&mut self, rows: &[Tuple]) -> Result<(), StorageError> {
        let payload = encode_rows(rows);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, checksum64(&payload));
        frame.extend_from_slice(&payload);

        for attempt in 0..=MAX_TORN_REWRITES {
            let torn = match self.store.faults.as_deref() {
                Some(f) => f.on_temp_write() == PageWriteFault::Torn,
                None => false,
            };
            self.file
                .seek(SeekFrom::Start(self.offset))
                .map_err(|e| io_err("seek spill file", e))?;
            if torn {
                // A torn write persists only a prefix; the tear point is
                // derived from the frame content so the whole frame —
                // header included — gets exercised over time.
                let tear_at = (checksum64(&frame) % frame.len() as u64) as usize;
                self.file
                    .write_all(&frame[..tear_at])
                    .map_err(|e| io_err("write spill frame", e))?;
                self.file
                    .set_len(self.offset + tear_at as u64)
                    .map_err(|e| io_err("truncate spill file", e))?;
            } else {
                self.file
                    .write_all(&frame)
                    .map_err(|e| io_err("write spill frame", e))?;
            }
            if self.verify_frame(&frame)? {
                self.offset += frame.len() as u64;
                self.rows += rows.len() as u64;
                self.frames += 1;
                self.guard.bytes += frame.len() as u64;
                self.store.note_written(frame.len() as u64);
                return Ok(());
            }
            self.store.torn_rewrites.fetch_add(1, Ordering::Relaxed);
            if attempt == MAX_TORN_REWRITES {
                break;
            }
        }
        Err(corrupt(format!(
            "spill frame failed verification after {MAX_TORN_REWRITES} rewrites"
        )))
    }

    /// Reads the just-written frame back and checks it byte-for-byte.
    fn verify_frame(&mut self, frame: &[u8]) -> Result<bool, StorageError> {
        self.file
            .seek(SeekFrom::Start(self.offset))
            .map_err(|e| io_err("seek spill file", e))?;
        let mut got = vec![0u8; frame.len()];
        let mut filled = 0;
        while filled < got.len() {
            let n = self
                .file
                .read(&mut got[filled..])
                .map_err(|e| io_err("verify spill frame", e))?;
            if n == 0 {
                return Ok(false);
            }
            filled += n;
        }
        Ok(got == frame)
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Seals the file: draws a (possibly slow) temp-fsync decision,
    /// syncs, and returns the read handle.
    pub fn seal(self) -> Result<SpillFile, StorageError> {
        if let Some(f) = self.store.faults.as_deref() {
            f.on_temp_fsync();
        }
        self.file
            .sync_data()
            .map_err(|e| io_err("sync spill file", e))?;
        Ok(SpillFile {
            guard: self.guard,
            rows: self.rows,
            frames: self.frames,
        })
    }
}

/// A sealed, readable spill file. Deletes itself on drop.
#[derive(Debug)]
pub struct SpillFile {
    guard: TempFileGuard,
    rows: u64,
    frames: u64,
}

impl SpillFile {
    /// Rows stored in this file.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Frames stored in this file.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frame bytes stored in this file.
    pub fn bytes(&self) -> u64 {
        self.guard.bytes
    }

    /// Opens a streaming reader over the file's frames.
    pub fn reader(&self) -> Result<SpillReader, StorageError> {
        let file = File::open(&self.guard.path).map_err(|e| io_err("open spill file", e))?;
        Ok(SpillReader {
            store: Arc::clone(&self.guard.store),
            file,
        })
    }

    /// Reads every row back, verifying each frame's checksum.
    pub fn read_all(&self) -> Result<Vec<Tuple>, StorageError> {
        let mut reader = self.reader()?;
        let mut rows = Vec::with_capacity(self.rows as usize);
        while let Some(batch) = reader.next_batch()? {
            rows.extend(batch);
        }
        Ok(rows)
    }
}

/// Streams frames out of a spill file, verifying checksums. Total:
/// arbitrary truncation or corruption yields a typed
/// [`StorageError::TempFile`], never a panic or silently wrong rows.
#[derive(Debug)]
pub struct SpillReader {
    store: Arc<TempStore>,
    file: File,
}

impl SpillReader {
    /// Reads the next frame, or `None` at a clean end of file.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>, StorageError> {
        let mut header = [0u8; FRAME_HEADER];
        let mut filled = 0;
        while filled < header.len() {
            let n = self
                .file
                .read(&mut header[filled..])
                .map_err(|e| io_err("read spill frame header", e))?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(corrupt(format!(
                    "truncated frame header: {filled} of {FRAME_HEADER} bytes"
                )));
            }
            filled += n;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let want = u64::from_le_bytes(header[4..12].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(corrupt(format!("frame length {len} exceeds maximum")));
        }
        let mut payload = vec![0u8; len as usize];
        let mut filled = 0;
        while filled < payload.len() {
            let n = self
                .file
                .read(&mut payload[filled..])
                .map_err(|e| io_err("read spill frame", e))?;
            if n == 0 {
                return Err(corrupt(format!(
                    "truncated frame payload: {filled} of {len} bytes"
                )));
            }
            filled += n;
        }
        let got = checksum64(&payload);
        if got != want {
            return Err(corrupt(format!(
                "frame checksum mismatch: stored {want:#x}, computed {got:#x}"
            )));
        }
        self.store
            .bytes_read
            .fetch_add(FRAME_HEADER as u64 + u64::from(len), Ordering::Relaxed);
        decode_rows(&payload).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample_rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| tuple![i, format!("row-{i}"), i as f64 / 3.0, i % 2 == 0])
            .collect()
    }

    #[test]
    fn write_read_round_trip_and_raii_cleanup() {
        let store = Arc::new(TempStore::open_scratch().unwrap());
        let rows = sample_rows(100);
        let file = {
            let mut w = store.create_file().unwrap();
            w.write_rows(&rows[..40]).unwrap();
            w.write_rows(&rows[40..]).unwrap();
            w.seal().unwrap()
        };
        assert_eq!(file.rows(), 100);
        assert_eq!(file.frames(), 2);
        assert_eq!(file.read_all().unwrap(), rows);
        assert_eq!(store.live_files_on_disk().unwrap(), 1);

        let s = store.stats();
        assert_eq!(s.files_created, 1);
        assert_eq!(s.files_deleted, 0);
        assert!(s.bytes_written > 0);
        assert_eq!(s.live_bytes, s.bytes_written);
        assert_eq!(s.peak_bytes, s.bytes_written);
        assert!(s.bytes_read >= s.bytes_written);

        drop(file);
        assert_eq!(store.live_files_on_disk().unwrap(), 0);
        let s = store.stats();
        assert_eq!(s.files_deleted, 1);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn store_drop_removes_scratch_dir() {
        let store = TempStore::open_scratch().unwrap();
        let dir = store.dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }

    #[test]
    fn writer_drop_without_seal_deletes_file() {
        let store = Arc::new(TempStore::open_scratch().unwrap());
        let mut w = store.create_file().unwrap();
        w.write_rows(&sample_rows(10)).unwrap();
        drop(w);
        assert_eq!(store.live_files_on_disk().unwrap(), 0);
        assert_eq!(store.stats().live_bytes, 0);
    }

    #[test]
    fn torn_temp_writes_are_rewritten_not_corrupting() {
        // Tear every other frame: every batch must still read back
        // exactly, with the rewrite counter recording the repairs.
        let faults = Arc::new(FaultPlan::new(1234).with_torn_temp_writes(2));
        let store = Arc::new(TempStore::open_scratch().unwrap().with_faults(faults));
        let rows = sample_rows(500);
        let mut w = store.create_file().unwrap();
        for chunk in rows.chunks(37) {
            w.write_rows(chunk).unwrap();
        }
        let file = w.seal().unwrap();
        assert_eq!(file.read_all().unwrap(), rows);
        let s = store.stats();
        assert!(s.torn_rewrites > 0, "1-in-2 tears over 14 frames must fire");
    }

    #[test]
    fn truncated_file_yields_typed_error() {
        let store = Arc::new(TempStore::open_scratch().unwrap());
        let mut w = store.create_file().unwrap();
        w.write_rows(&sample_rows(50)).unwrap();
        let file = w.seal().unwrap();
        let path = file.guard.path.clone();
        let full = fs::read(&path).unwrap();
        for cut in [full.len() - 1, full.len() / 2, FRAME_HEADER - 1, 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let err = file.read_all().unwrap_err();
            assert!(
                matches!(err, StorageError::TempFile { .. }),
                "cut at {cut}: got {err:?}"
            );
        }
        // Restore and confirm the file still reads clean.
        fs::write(&path, &full).unwrap();
        assert_eq!(file.read_all().unwrap().len(), 50);
    }

    #[test]
    fn corrupt_payload_byte_yields_checksum_error() {
        let store = Arc::new(TempStore::open_scratch().unwrap());
        let mut w = store.create_file().unwrap();
        w.write_rows(&sample_rows(20)).unwrap();
        let file = w.seal().unwrap();
        let path = file.guard.path.clone();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = file.read_all().unwrap_err();
        assert!(err.to_string().contains("checksum"), "got {err}");
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut bytes = encode_rows(&sample_rows(3));
        bytes.push(0);
        assert!(decode_rows(&bytes).is_err());

        let rows = sample_rows(1);
        let mut bytes = encode_rows(&rows);
        bytes[8] = 9; // first value tag → unknown
        assert!(decode_rows(&bytes).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Maps one drawn `(tag, payload)` word pair onto a `Value`,
        /// covering every variant including NaN doubles (which compare
        /// equal by bits under `Value`'s total ordering) and non-ASCII
        /// strings.
        fn value_from(tag: u64, payload: u64) -> Value {
            const ALPHABET: [char; 8] = ['a', 'Z', '0', ' ', '\u{e9}', '\u{4e2d}', '"', '\\'];
            match tag % 5 {
                0 => Value::Null,
                1 => Value::Int(payload as i64),
                2 => Value::Double(f64::from_bits(payload)),
                3 => {
                    let len = (payload % 12) as usize;
                    let s: String = (0..len)
                        .map(|i| ALPHABET[((payload >> (i * 3)) % 8) as usize])
                        .collect();
                    Value::Str(s)
                }
                _ => Value::Bool(payload.is_multiple_of(2)),
            }
        }

        fn rows_from(words: &[(u64, u64)], arity: usize) -> Vec<Tuple> {
            if arity == 0 {
                return words.iter().map(|_| Tuple::new(Vec::new())).collect();
            }
            words
                .chunks(arity)
                .map(|chunk| Tuple::new(chunk.iter().map(|&(t, p)| value_from(t, p)).collect()))
                .collect()
        }

        proptest! {
            /// The temp partition codec is lossless over arbitrary
            /// value mixes.
            #[test]
            fn codec_round_trips(
                words in prop::collection::vec((0u64..5, 0u64..u64::MAX), 0..96),
                arity in 0usize..6,
            ) {
                let rows = rows_from(&words, arity);
                let bytes = encode_rows(&rows);
                prop_assert_eq!(decode_rows(&bytes).unwrap(), rows);
            }

            /// Torn-at-any-byte: truncating an encoded spill file at
            /// every possible prefix either reads back the full rows
            /// (no truncation) or yields a typed error — never a panic,
            /// never silently wrong rows.
            #[test]
            fn torn_at_any_byte_is_typed_error(
                words in prop::collection::vec((0u64..5, 0u64..u64::MAX), 0..64),
                arity in 1usize..6,
                frac in 0.0f64..1.0,
            ) {
                let rows = rows_from(&words, arity);
                let store = Arc::new(TempStore::open_scratch().unwrap());
                let mut w = store.create_file().unwrap();
                w.write_rows(&rows).unwrap();
                let file = w.seal().unwrap();
                let path = file.guard.path.clone();
                let full = std::fs::read(&path).unwrap();
                let cut = ((full.len() as f64) * frac) as usize;
                std::fs::write(&path, &full[..cut]).unwrap();
                match file.read_all() {
                    // The only clean truncation points of a one-frame
                    // file are byte 0 (an empty file: zero rows) and
                    // the full length.
                    Ok(got) => {
                        if cut == 0 {
                            prop_assert!(got.is_empty());
                        } else {
                            prop_assert_eq!(cut, full.len());
                            prop_assert_eq!(got, rows);
                        }
                    }
                    Err(StorageError::TempFile { .. }) => {
                        prop_assert!(cut > 0 && cut < full.len());
                    }
                    Err(other) => prop_assert!(false, "unexpected error {}", other),
                }
            }
        }
    }
}
