//! Tuples: fixed-arity rows of [`Value`]s.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A row. Values are stored in schema order. Tuples are cheap to clone
/// structurally (strings are the only heap payload) and are shared via
/// `Arc` inside materialized tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Concatenates two tuples (join output row).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projects values at the given positions into a new tuple.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Extracts the key values at `indices` — the join/grouping key.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Checks arity and per-column type compatibility against a schema.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.arity()
            && self
                .values
                .iter()
                .zip(schema.columns())
                .all(|(v, c)| v.fits(c.data_type) && (c.nullable || !v.is_null()))
    }

    /// Total bytes this tuple occupies on the wire (distributed shipping).
    pub fn wire_width(&self) -> usize {
        4 + self.values.iter().map(Value::wire_width).sum::<usize>()
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Shorthand for building a tuple from heterogeneous literals:
/// `tuple![1, 2.5, "hr"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

/// A batch of tuples shared between operators.
pub type TupleBatch = Arc<Vec<Tuple>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn concat_and_project() {
        let a = tuple![1, "x"];
        let b = tuple![2.5];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), tuple![2.5, 1]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.key(&[2, 0]), vec![Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn conformance_checks_arity_type_nullability() {
        let schema = Schema::new(vec![
            crate::schema::Column::new("a", DataType::Int),
            crate::schema::Column::nullable("b", DataType::Str),
        ])
        .unwrap();
        assert!(tuple![1, "x"].conforms_to(&schema));
        assert!(Tuple::new(vec![Value::Int(1), Value::Null]).conforms_to(&schema));
        assert!(!Tuple::new(vec![Value::Null, Value::Null]).conforms_to(&schema));
        assert!(!tuple![1].conforms_to(&schema));
        assert!(!tuple!["bad", "x"].conforms_to(&schema));
    }

    #[test]
    fn int_fits_double_column() {
        let schema = Schema::from_pairs(&[("sal", DataType::Double)]);
        assert!(tuple![100].conforms_to(&schema));
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "hr"].to_string(), "[1, 'hr']");
    }

    #[test]
    fn wire_width_sums_values() {
        assert_eq!(tuple![1, true].wire_width(), 4 + 8 + 1);
    }
}
