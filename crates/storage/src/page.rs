//! The paged storage model.
//!
//! The paper's cost formulas are System-R page-I/O formulas. We keep data
//! in memory but lay it out on logical pages of [`PAGE_SIZE`] bytes so
//! every operator can charge an exact, deterministic number of page reads
//! and writes to the [`crate::CostLedger`].

use crate::schema::Schema;

/// Logical page size in bytes. 4 KiB, the System-R-era default.
pub const PAGE_SIZE: usize = 4096;

/// Number of pages needed to hold `rows` rows of `row_width` bytes.
///
/// Zero rows occupy zero pages; a non-empty relation always occupies at
/// least one page.
pub fn page_count(rows: u64, row_width: usize) -> u64 {
    if rows == 0 {
        return 0;
    }
    let per_page = tuples_per_page(row_width);
    rows.div_ceil(per_page)
}

/// Rows that fit on one page (at least 1, even for jumbo rows, which
/// simply overflow their page as in real slotted-page engines).
pub fn tuples_per_page(row_width: usize) -> u64 {
    ((PAGE_SIZE / row_width.max(1)) as u64).max(1)
}

/// The page layout of a relation with a given schema: how many tuples per
/// page, and how pages scale with cardinality. This is the single source
/// of truth shared by the physical table (actual charge) and the
/// optimizer (predicted charge), which keeps predicted and measured page
/// counts exactly consistent — a property several integration tests
/// assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    /// Bytes per row.
    pub row_width: usize,
    /// Rows per page.
    pub tuples_per_page: u64,
}

impl PageLayout {
    /// Layout for rows of `schema`.
    pub fn for_schema(schema: &Schema) -> Self {
        let row_width = schema.row_width().max(1);
        PageLayout {
            row_width,
            tuples_per_page: tuples_per_page(row_width),
        }
    }

    /// Layout for an explicit row width (used for filter sets whose width
    /// is the join-attribute width, not a full schema).
    pub fn for_row_width(row_width: usize) -> Self {
        let row_width = row_width.max(1);
        PageLayout {
            row_width,
            tuples_per_page: tuples_per_page(row_width),
        }
    }

    /// Pages occupied by `rows` rows.
    pub fn pages(&self, rows: u64) -> u64 {
        if rows == 0 {
            0
        } else {
            rows.div_ceil(self.tuples_per_page)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn zero_rows_zero_pages() {
        assert_eq!(page_count(0, 100), 0);
        let l = PageLayout::for_row_width(100);
        assert_eq!(l.pages(0), 0);
    }

    #[test]
    fn one_row_one_page() {
        assert_eq!(page_count(1, 100), 1);
    }

    #[test]
    fn pages_round_up() {
        // 40 tuples of 100B fit per 4096B page.
        assert_eq!(tuples_per_page(100), 40);
        assert_eq!(page_count(40, 100), 1);
        assert_eq!(page_count(41, 100), 2);
    }

    #[test]
    fn jumbo_rows_one_per_page() {
        assert_eq!(tuples_per_page(10_000), 1);
        assert_eq!(page_count(7, 10_000), 7);
    }

    #[test]
    fn layout_matches_schema_width() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let l = PageLayout::for_schema(&s);
        assert_eq!(l.row_width, s.row_width());
        assert_eq!(l.pages(l.tuples_per_page + 1), 2);
    }

    #[test]
    fn zero_width_clamped() {
        let l = PageLayout::for_row_width(0);
        assert!(l.tuples_per_page >= 1);
    }
}
