//! # fj-storage
//!
//! The storage substrate for the `filterjoin` reproduction of *"Filter
//! Joins: Cost-Based Optimization for Magic Sets"* (Seshadri, Hellerstein,
//! Ramakrishnan, 1995; SIGMOD '96 as *"Cost-Based Optimization for Magic:
//! Algebra and Implementation"*).
//!
//! This crate provides everything the paper's System-R-style DBMS assumes
//! underneath the optimizer:
//!
//! * typed [`Value`]s, [`Schema`]s and [`Tuple`]s,
//! * paged in-memory heap [`Table`]s whose scans charge a shared
//!   [`CostLedger`] with deterministic page-I/O counts,
//! * hash and ordered [`index`]es with probe-cost accounting,
//! * per-column [`stats`] (cardinality, distinct counts, min/max,
//!   equi-depth histograms) feeding the optimizer's selectivity model,
//! * [`bloom`] filters implementing the paper's *lossy filter sets*.
//!
//! The engine is in-memory but **I/O-accounted**: every operator charges
//! the ledger for the page reads/writes, tuple operations, and network
//! bytes it would incur on the paper's hardware. All of the paper's claims
//! are about relative costs as predicted by such page/CPU/network
//! formulas, so a deterministic cost ledger reproduces exactly the
//! quantities the formulas reason about (see `DESIGN.md`, substitutions).

pub mod backing;
pub mod bloom;
pub mod builder;
pub mod error;
pub mod fault;
pub mod index;
pub mod ledger;
pub mod mutation;
pub mod page;
pub mod schema;
pub mod stats;
pub mod table;
pub mod tempstore;
pub mod tuple;
pub mod value;

pub use backing::PageBacking;
pub use bloom::BloomFilter;
pub use builder::TableBuilder;
pub use error::StorageError;
pub use fault::{FaultPlan, PageWriteFault};
pub use index::{BTreeIndex, HashIndex, Index};
pub use ledger::{CostLedger, LedgerSnapshot, CPU_WEIGHT_DEFAULT, TUPLE_OPS_PER_PAGE};
pub use mutation::Mutation;
pub use page::{page_count, PageLayout, PAGE_SIZE};
pub use schema::{Column, Schema, SchemaRef};
pub use stats::yao_distinct;
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{Table, TableRef};
pub use tempstore::{SpillFile, SpillReader, TempStore, TempStoreStats, TempWriter};
pub use tuple::Tuple;
pub use value::{DataType, Value};
