//! Schemas: ordered, named, typed column lists.
//!
//! Column names are *qualified* strings such as `"E.did"`. Joins
//! concatenate schemas; name resolution accepts either an exact qualified
//! match or an unambiguous unqualified suffix (`"did"` resolves if exactly
//! one column ends in `".did"`).

use crate::error::StorageError;
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// One column of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Qualified name, e.g. `"E.did"`.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// The unqualified part of the name (`"E.did"` → `"did"`).
    pub fn base_name(&self) -> &str {
        match self.name.rsplit_once('.') {
            Some((_, base)) => base,
            None => &self.name,
        }
    }
}

/// Shared schema handle; schemas are immutable once built.
pub type SchemaRef = Arc<Schema>;

/// An ordered list of [`Column`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns. Duplicate qualified names are
    /// rejected: they would make resolution ambiguous.
    pub fn new(columns: Vec<Column>) -> Result<Self, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates, so intended for statically-known schemas in tests and
    /// examples.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must not contain duplicate columns")
    }

    /// Empty schema (zero columns) — the schema of a scalar aggregate
    /// input group, and the identity for [`Schema::join`].
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Resolves a column name to its position.
    ///
    /// Resolution rules, mirroring SQL scoping over qualified names:
    /// 1. an exact match of the full name wins;
    /// 2. otherwise, if exactly one column's [`Column::base_name`] equals
    ///    `name`, that column wins;
    /// 3. otherwise the name is unknown or ambiguous.
    pub fn resolve(&self, name: &str) -> Result<usize, StorageError> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        let suffix_matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match suffix_matches.as_slice() {
            [only] => Ok(*only),
            _ => Err(StorageError::UnknownColumn {
                column: name.to_string(),
                available: self.columns.iter().map(|c| c.name.clone()).collect(),
            }),
        }
    }

    /// True iff `name` resolves in this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_ok()
    }

    /// Concatenates two schemas (the schema of a join result).
    pub fn join(&self, other: &Schema) -> Result<Schema, StorageError> {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// Projects a subset of columns by position.
    pub fn project(&self, indices: &[usize]) -> Result<Schema, StorageError> {
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.columns.len() {
                return Err(StorageError::BadIndexColumn {
                    index: i,
                    arity: self.columns.len(),
                });
            }
            columns.push(self.columns[i].clone());
        }
        Schema::new(columns)
    }

    /// Returns a copy with every column renamed to `alias.base_name`, the
    /// schema produced by `FROM Emp E`.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        let columns = self
            .columns
            .iter()
            .map(|c| Column {
                name: format!("{alias}.{}", c.base_name()),
                data_type: c.data_type,
                nullable: c.nullable,
            })
            .collect();
        Schema { columns }
    }

    /// Fixed-width row size in bytes under the paged layout.
    pub fn row_width(&self) -> usize {
        // One byte per column for the null bitmap, paper-era row header of 8.
        8 + self
            .columns
            .iter()
            .map(|c| c.data_type.fixed_width() + 1)
            .sum::<usize>()
    }

    /// Wraps in an [`Arc`].
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::from_pairs(&[
            ("E.eid", DataType::Int),
            ("E.did", DataType::Int),
            ("E.sal", DataType::Double),
            ("E.age", DataType::Int),
        ])
    }

    #[test]
    fn resolve_exact_and_suffix() {
        let s = emp();
        assert_eq!(s.resolve("E.did").unwrap(), 1);
        assert_eq!(s.resolve("did").unwrap(), 1);
        assert!(s.resolve("nothere").is_err());
    }

    #[test]
    fn resolve_ambiguous_suffix_fails() {
        let s = emp()
            .join(&Schema::from_pairs(&[("D.did", DataType::Int)]))
            .unwrap();
        assert!(
            s.resolve("did").is_err(),
            "ambiguous suffix must not resolve"
        );
        assert_eq!(s.resolve("E.did").unwrap(), 1);
        assert_eq!(s.resolve("D.did").unwrap(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Int),
        ])
        .unwrap_err();
        assert_eq!(err, StorageError::DuplicateColumn("a".into()));
    }

    #[test]
    fn join_concatenates() {
        let s = emp()
            .join(&Schema::from_pairs(&[("D.budget", DataType::Double)]))
            .unwrap();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.column(4).name, "D.budget");
    }

    #[test]
    fn join_detects_collision() {
        assert!(emp().join(&emp()).is_err());
    }

    #[test]
    fn project_by_position() {
        let s = emp().project(&[1, 2]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column(0).name, "E.did");
        assert!(emp().project(&[9]).is_err());
    }

    #[test]
    fn requalify() {
        let s = emp().with_qualifier("X");
        assert_eq!(s.column(0).name, "X.eid");
        assert_eq!(s.resolve("X.sal").unwrap(), 2);
    }

    #[test]
    fn row_width_is_fixed_and_positive() {
        let s = emp();
        // 8 header + 4 cols: 3×(8+1) + 1×(8+1) = 44
        assert_eq!(s.row_width(), 8 + 4 * 9);
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a: INT)");
    }

    #[test]
    fn base_name_without_qualifier() {
        let c = Column::new("plain", DataType::Bool);
        assert_eq!(c.base_name(), "plain");
    }
}
