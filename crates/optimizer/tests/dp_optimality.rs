//! Property test: the dynamic program is optimal over the left-deep
//! search space it claims to explore — on randomized catalogs, the
//! global plan never costs more than any forced join order, and every
//! forced order still computes the same answer.

use fj_algebra::{Catalog, FromItem, JoinQuery};
use fj_exec::ExecCtx;
use fj_expr::col;
use fj_optimizer::{Optimizer, OptimizerConfig};
use fj_storage::{DataType, TableBuilder, Tuple, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for i in 0..n {
            let mut q: Vec<usize> = p.iter().map(|&x| if x >= i { x + 1 } else { x }).collect();
            q.insert(0, i);
            // Rebuild: insert new maximum? Simpler: classic insertion.
            let _ = &mut q;
            out.push(q);
        }
    }
    // The construction above is ad hoc; dedupe and validate.
    out.retain(|p| {
        let mut s = p.clone();
        s.sort_unstable();
        s == (0..n).collect::<Vec<_>>()
    });
    out.sort();
    out.dedup();
    out
}

fn build_catalog(tables: &[Vec<(i64, i64)>]) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    for (t, rows) in tables.iter().enumerate() {
        cat.add_table(
            TableBuilder::new(format!("T{t}"))
                .column("id", DataType::Int)
                .column("fk", DataType::Int)
                .rows(
                    rows.iter()
                        .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]),
                )
                .build()
                .expect("rows conform")
                .into_ref(),
        );
    }
    let from: Vec<FromItem> = (0..tables.len())
        .map(|t| FromItem::new(format!("T{t}"), format!("t{t}")))
        .collect();
    let pred = (0..tables.len() - 1)
        .map(|t| col(format!("t{t}.fk")).eq(col(format!("t{}.id", t + 1))))
        .reduce(|a, b| a.and(b))
        .expect("n >= 2");
    (cat, JoinQuery::new(from).with_predicate(pred))
}

fn run(opt_phys: &fj_exec::PhysPlan, cat: &Arc<Catalog>) -> Vec<Tuple> {
    let ctx = ExecCtx::new(Arc::clone(cat));
    let mut rows = opt_phys.execute(&ctx).expect("plan runs").rows;
    rows.sort();
    rows
}

/// Body of `dp_beats_every_forced_order_and_all_agree`, shared with the
/// deterministic regression replay below.
fn check_dp_optimality(tables: &[Vec<(i64, i64)>]) {
    let (cat, q) = build_catalog(tables);
    let cat = Arc::new(cat);
    for config in [
        OptimizerConfig::default(),
        OptimizerConfig {
            allow_prefix_production: true,
            ..OptimizerConfig::default()
        },
    ] {
        let opt = Optimizer::new(Arc::clone(&cat), config);
        let global = opt.optimize(&q).expect("optimizes");
        let reference = run(&global.phys, &cat);
        for perm in permutations(tables.len()) {
            let order: Vec<String> = perm.iter().map(|&i| format!("t{i}")).collect();
            let forced = opt
                .optimize_with_order(&q, &order)
                .expect("forced order plans");
            // A whisker of tolerance: cardinality estimates are
            // path-dependent, so equal-cost DP entries can diverge
            // by a few CPU ops once downstream costs are added —
            // inherent to any Selinger-style estimator.
            assert!(
                global.cost <= forced.cost * 1.01 + 1e-6,
                "global {} beaten by {:?} at {}",
                global.cost,
                order,
                forced.cost
            );
            assert_eq!(run(&forced.phys, &cat), reference.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dp_beats_every_forced_order_and_all_agree(
        tables in prop::collection::vec(
            prop::collection::vec((0i64..6, 0i64..6), 1..12),
            2..4,
        ),
    ) {
        check_dp_optimality(&tables);
    }
}

/// Deterministic replay of the shrunk input committed in
/// `dp_optimality.proptest-regressions`
/// (`tables = [[(0, 0)], [(0, 2), (1, 0)], [(0, 0)]]`). The vendored
/// proptest shim does not consult regression files, so the historical
/// failure is pinned here directly.
#[test]
fn dp_optimality_regression_seed() {
    check_dp_optimality(&[vec![(0, 0)], vec![(0, 2), (1, 0)], vec![(0, 0)]]);
}

#[test]
fn permutation_helper_is_complete() {
    assert_eq!(permutations(1).len(), 1);
    assert_eq!(permutations(2).len(), 2);
    assert_eq!(permutations(3).len(), 6);
}
