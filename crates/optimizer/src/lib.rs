//! # fj-optimizer
//!
//! The cost-based query optimizer — the paper's primary contribution,
//! reproduced in full:
//!
//! * a **System-R bottom-up dynamic-programming enumerator**
//!   ([`enumerate`], §3.1) over left-deep join orders by default, or —
//!   under [`PlanShape::Bushy`] — the full bushy space via DPccp-style
//!   connected subgraph–complement splits of the join graph, choosing
//!   among block nested loops, index nested loops, hash join,
//!   sort-merge join — and the **Filter Join**;
//! * the **seven-component Filter Join cost formula** of Table 1
//!   ([`filter_join`], §4): `JoinCost_P + ProductionCost_P + ProjCost_F +
//!   AvailCost_F + FilterCost_Rk + AvailCost_Rk' + FinalJoinCost`, with
//!   the materialize-vs-recompute choice for the production set, the
//!   Yao projection estimate for the filter set, network terms for
//!   remote inners, and a Bloom (lossy) variant;
//! * the **search-space limitations** of §3.3: the production set is a
//!   prefix of the outer (Limitations 1+2, with a knob re-enabling all
//!   prefixes for the ablation), and a small constant number of filter
//!   sets per join (Limitation 3);
//! * the **parametric inner-restriction approximator** of §4.1–4.2
//!   ([`parametric`]): a small number of *equivalence classes* over
//!   filter-set selectivity, each probed once with a nested estimator
//!   invocation, then a straight-line fit for cardinality and a step
//!   table for cost — discharging Assumption 1 ("O(1) to estimate the
//!   cost of executing the Filter join").
//!
//! The optimizer emits [`fj_exec::PhysPlan`]s directly, and reports the
//! chosen SIPS so callers can also obtain the textual magic rewriting
//! (`fj_algebra::magic`) that the plan corresponds to.

pub mod cost;
pub mod enumerate;
pub mod error;
pub mod estimate;
pub mod filter_join;
pub mod fingerprint;
pub mod parametric;
pub mod phys_estimate;

pub use cost::CostParams;
pub use enumerate::{OptimizedPlan, Optimizer, OptimizerConfig, PlanShape};
pub use error::OptError;
pub use estimate::{EstStats, PlanEstimator};
pub use filter_join::FilterJoinCost;
pub use fingerprint::{fingerprint, Digest};
pub use parametric::{ParametricEstimator, ParametricFit};
pub use phys_estimate::{estimate_phys_plan, EstNode};
