//! Optimizer errors.

use fj_algebra::AlgebraError;
use fj_exec::ExecError;
use std::fmt;

/// Errors raised during optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// Propagated algebra/catalog error.
    Algebra(AlgebraError),
    /// Propagated execution-layer error (plan lowering).
    Exec(ExecError),
    /// The query has no executable plan (e.g. a UDF relation with no
    /// finite domain and no join key to probe it through).
    NoPlan(String),
    /// A forced join order passed to
    /// [`Optimizer::optimize_with_order`](crate::Optimizer::optimize_with_order)
    /// is not a permutation of the query's aliases (wrong length,
    /// unknown alias, or duplicate alias). Forced orders always denote
    /// *left-deep* chains; there is no order-list syntax for a bushy
    /// tree, so bushy-shaped intent must go through
    /// [`PlanShape::Bushy`](crate::PlanShape::Bushy) instead.
    InvalidForcedOrder(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Algebra(e) => write!(f, "{e}"),
            OptError::Exec(e) => write!(f, "{e}"),
            OptError::NoPlan(d) => write!(f, "no executable plan: {d}"),
            OptError::InvalidForcedOrder(d) => {
                write!(f, "invalid forced join order (orders are left-deep): {d}")
            }
        }
    }
}

impl std::error::Error for OptError {}

impl From<AlgebraError> for OptError {
    fn from(e: AlgebraError) -> Self {
        OptError::Algebra(e)
    }
}

impl From<ExecError> for OptError {
    fn from(e: ExecError) -> Self {
        OptError::Exec(e)
    }
}

impl From<fj_storage::StorageError> for OptError {
    fn from(e: fj_storage::StorageError) -> Self {
        OptError::Algebra(AlgebraError::Schema(e))
    }
}

impl From<fj_expr::ExprError> for OptError {
    fn from(e: fj_expr::ExprError) -> Self {
        OptError::Algebra(AlgebraError::Expr(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(OptError::NoPlan("udf".into()).to_string().contains("udf"));
    }
}
