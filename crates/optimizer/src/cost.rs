//! Cost parameters and the elementary cost formulas.
//!
//! All costs are in **page-I/O-equivalent units**. The formulas here are
//! kept deliberately identical to the charges the executor makes (see
//! `fj-exec::ops`), so predicted costs and measured ledger costs can be
//! compared one-to-one — the property the Table 1 reproduction checks.

use fj_algebra::NetworkModel;
use fj_storage::{PageLayout, CPU_WEIGHT_DEFAULT};

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Page-unit cost of one tuple operation.
    pub cpu_weight: f64,
    /// Buffer memory in pages (`M`).
    pub memory_pages: u64,
    /// Network model (per-message + per-byte page-unit costs).
    pub network: NetworkModel,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_weight: CPU_WEIGHT_DEFAULT,
            memory_pages: fj_exec::context::DEFAULT_MEMORY_PAGES,
            network: NetworkModel::free(),
        }
    }
}

impl CostParams {
    /// Pages occupied by `rows` rows of `width` bytes.
    pub fn pages(&self, rows: f64, width: usize) -> f64 {
        if rows <= 0.0 {
            return 0.0;
        }
        let per_page = PageLayout::for_row_width(width).tuples_per_page as f64;
        (rows / per_page).ceil().max(1.0)
    }

    /// CPU cost of `n` tuple operations.
    pub fn cpu(&self, n: f64) -> f64 {
        self.cpu_weight * n.max(0.0)
    }

    /// External-sort / hash-partition page I/O for `pages` pages (zero
    /// when the input fits in memory) — mirrors
    /// `fj_exec::ops::sort::charge_external_sort`.
    pub fn external_sort_io(&self, pages: f64) -> f64 {
        let m = self.memory_pages as f64;
        if pages <= m {
            return 0.0;
        }
        let passes = fj_exec::ops::sort::merge_passes(pages.ceil() as u64, self.memory_pages);
        2.0 * pages * (1 + passes) as f64
    }

    /// Sort cost: `n·⌈log₂n⌉` CPU plus external I/O.
    pub fn sort_cost(&self, rows: f64, pages: f64) -> f64 {
        let cmp = if rows > 1.0 {
            rows * rows.log2().ceil()
        } else {
            0.0
        };
        self.cpu(cmp) + self.external_sort_io(pages)
    }

    /// Block-nested-loops join cost *beyond* producing the inputs:
    /// `(⌈P_outer/(M−2)⌉−1)·P_inner` rescan I/O + one CPU op per pair.
    pub fn bnl_cost(
        &self,
        outer_rows: f64,
        outer_pages: f64,
        inner_rows: f64,
        inner_pages: f64,
    ) -> f64 {
        let m = (self.memory_pages.saturating_sub(2)).max(1) as f64;
        let blocks = (outer_pages / m).ceil().max(1.0);
        (blocks - 1.0) * inner_pages + self.cpu(outer_rows * inner_rows.max(1.0))
    }

    /// Hash join cost beyond producing the inputs: build+probe+output
    /// CPU, plus a Grace partition pass when the build side spills.
    pub fn hash_join_cost(
        &self,
        outer_rows: f64,
        outer_pages: f64,
        inner_rows: f64,
        inner_pages: f64,
        out_rows: f64,
    ) -> f64 {
        let grace = if inner_pages > self.memory_pages as f64 {
            2.0 * (outer_pages + inner_pages)
        } else {
            0.0
        };
        grace + self.cpu(outer_rows + inner_rows + out_rows)
    }

    /// Sort-merge join cost beyond producing the inputs.
    pub fn merge_join_cost(
        &self,
        outer_rows: f64,
        outer_pages: f64,
        inner_rows: f64,
        inner_pages: f64,
        out_rows: f64,
    ) -> f64 {
        self.merge_join_cost_with_orders(
            outer_rows,
            outer_pages,
            inner_rows,
            inner_pages,
            out_rows,
            false,
            false,
        )
    }

    /// Sort-merge join cost with *interesting orders* (§3.1): a side
    /// that already arrives sorted by its join keys skips its sort
    /// (paying only the linear sortedness check the executor performs).
    #[allow(clippy::too_many_arguments)]
    pub fn merge_join_cost_with_orders(
        &self,
        outer_rows: f64,
        outer_pages: f64,
        inner_rows: f64,
        inner_pages: f64,
        out_rows: f64,
        outer_sorted: bool,
        inner_sorted: bool,
    ) -> f64 {
        let outer_sort = if outer_sorted {
            self.cpu(outer_rows)
        } else {
            self.cpu(outer_rows) + self.sort_cost(outer_rows, outer_pages)
        };
        let inner_sort = if inner_sorted {
            self.cpu(inner_rows)
        } else {
            self.cpu(inner_rows) + self.sort_cost(inner_rows, inner_pages)
        };
        outer_sort + inner_sort + self.cpu(outer_rows + inner_rows + out_rows)
    }

    /// Index-nested-loops cost: per outer row, one CPU op plus
    /// `probe_pages` index I/O plus one heap page per matching row.
    pub fn inl_cost(&self, outer_rows: f64, probe_pages: f64, matches_per_probe: f64) -> f64 {
        outer_rows * (probe_pages + matches_per_probe) + self.cpu(outer_rows)
    }

    /// Cost of shipping `rows` rows of `wire_width` bytes each in one
    /// message.
    pub fn ship_cost(&self, rows: f64, wire_width: f64) -> f64 {
        if rows <= 0.0 {
            return self.network.per_message;
        }
        self.network.per_message + self.network.per_byte * rows * wire_width
    }

    /// Cost of materializing `pages` pages (the writes; readers pay
    /// reads separately).
    pub fn materialize_cost(&self, pages: f64) -> f64 {
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn pages_round_up_and_clamp() {
        let c = p();
        assert_eq!(c.pages(0.0, 100), 0.0);
        assert_eq!(c.pages(1.0, 100), 1.0);
        // 40 rows of 100B per 4096B page.
        assert_eq!(c.pages(41.0, 100), 2.0);
    }

    #[test]
    fn cpu_weight_applies() {
        assert!((p().cpu(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn external_sort_zero_in_memory() {
        assert_eq!(p().external_sort_io(10.0), 0.0);
        let mut c = p();
        c.memory_pages = 4;
        assert!(c.external_sort_io(100.0) > 0.0);
    }

    #[test]
    fn bnl_single_block_costs_no_rescan_io() {
        let c = p();
        let cost = c.bnl_cost(100.0, 1.0, 100.0, 1.0);
        assert!((cost - c.cpu(100.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn bnl_rescans_with_tiny_memory() {
        let mut c = p();
        c.memory_pages = 3;
        // 10 outer pages, 1 buffer page for outer → 10 blocks → 9 rescans.
        let cost = c.bnl_cost(0.0, 10.0, 0.0, 5.0);
        assert!((cost - (9.0 * 5.0 + c.cpu(0.0))).abs() < 1e-9);
    }

    #[test]
    fn hash_join_grace_kicks_in() {
        let mut c = p();
        c.memory_pages = 4;
        let no_spill = c.hash_join_cost(10.0, 1.0, 10.0, 2.0, 5.0);
        let spill = c.hash_join_cost(10.0, 1.0, 10.0, 100.0, 5.0);
        assert!(spill > no_spill + 100.0);
    }

    #[test]
    fn ship_cost_has_message_floor() {
        let mut c = p();
        c.network = NetworkModel::lan();
        assert!(c.ship_cost(0.0, 12.0) >= 1.0);
        assert!(c.ship_cost(1000.0, 12.0) > c.ship_cost(10.0, 12.0));
    }
}
