//! Per-node cardinality estimation over **physical** plans.
//!
//! `EXPLAIN ANALYZE` compares what the optimizer believed against what
//! execution measured, operator by operator. The enumerator only keeps
//! a cost and a root cardinality per plan, so this module re-derives a
//! per-node estimate tree from the finished [`PhysPlan`], using the
//! same Selinger machinery ([`PlanEstimator`]) the enumerator used —
//! base-table statistics, predicate selectivities, containment joins,
//! and the linear semi-join fraction of Figure 4.
//!
//! The estimate tree mirrors the plan's **execution order** (the order
//! [`PhysPlan::children`] reports and `fj-trace` records): outer before
//! inner, `WithTemp` steps before the body. Estimation is total — an
//! unresolvable relation degrades to a default guess instead of
//! failing, because an EXPLAIN must never refuse to render.

use crate::cost::CostParams;
use crate::estimate::{base_table_stats, ColEst, EstStats, PlanEstimator};
use fj_algebra::{Catalog, JoinKind, RelationKind};
use fj_exec::{PhysPlan, TempStep};
use fj_expr::{col, Expr};
use std::collections::HashMap;

/// Row-count guess for a relation with no reachable statistics.
const DEFAULT_ROWS: f64 = 1000.0;

/// One node of the per-operator estimate tree; children mirror
/// [`PhysPlan::children`].
#[derive(Debug, Clone)]
pub struct EstNode {
    /// Estimated output rows of this operator.
    pub est_rows: f64,
    /// Estimated pages of this operator's output — the cost-model
    /// footprint EXPLAIN ANALYZE sets against measured page reads.
    pub est_pages: f64,
    /// Child estimates, in execution order.
    pub children: Vec<EstNode>,
}

impl EstNode {
    /// Number of nodes in the subtree (itself included).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(EstNode::node_count).sum::<usize>()
    }
}

/// Builds the per-node estimate tree for `plan`.
pub fn estimate_phys_plan(catalog: &Catalog, params: CostParams, plan: &PhysPlan) -> EstNode {
    let mut est = PhysEstimator {
        inner: PlanEstimator::new(catalog, params),
        temps: HashMap::new(),
        blooms: HashMap::new(),
    };
    est.node(plan).0
}

struct PhysEstimator<'a> {
    inner: PlanEstimator<'a>,
    /// Stats of temp tables materialized by enclosing `WithTemp`s.
    temps: HashMap<String, EstStats>,
    /// Stats of the producing plan of each registered Bloom filter,
    /// with the key columns it was built over.
    blooms: HashMap<String, (EstStats, Vec<String>)>,
}

impl<'a> PhysEstimator<'a> {
    fn node(&mut self, plan: &PhysPlan) -> (EstNode, EstStats) {
        let (mut en, stats) = self.node_inner(plan);
        en.est_pages = stats.pages(&self.inner.params);
        (en, stats)
    }

    fn node_inner(&mut self, plan: &PhysPlan) -> (EstNode, EstStats) {
        match plan {
            PhysPlan::SeqScan { table, alias }
            | PhysPlan::IndexOrderedScan { table, alias, .. } => {
                let stats = self.table_stats(table).requalify(alias);
                (leaf(stats.rows), stats)
            }
            PhysPlan::TempScan { name, alias } => {
                let stats = self
                    .temps
                    .get(name)
                    .cloned()
                    .unwrap_or_else(fallback_stats)
                    .requalify(alias);
                (leaf(stats.rows), stats)
            }
            PhysPlan::Values { schema, rows } => {
                let stats = EstStats {
                    rows: rows.len() as f64,
                    width: schema.row_width(),
                    cols: schema
                        .columns()
                        .iter()
                        .map(|c| {
                            (
                                c.name.clone(),
                                ColEst {
                                    distinct: rows.len() as f64,
                                    ..ColEst::default()
                                },
                            )
                        })
                        .collect(),
                };
                (leaf(stats.rows), stats)
            }
            PhysPlan::UdfFullScan { udf, alias } => {
                let stats = self.udf_stats(udf, None).requalify(alias);
                (leaf(stats.rows), stats)
            }
            PhysPlan::UdfProbe {
                outer, udf, alias, ..
            } => {
                let (child, os) = self.node(outer);
                let udf_stats = self.udf_stats(udf, Some(os.rows)).requalify(alias);
                let mut cols = os.cols.clone();
                cols.extend(udf_stats.cols);
                let stats = EstStats {
                    rows: udf_stats.rows,
                    width: os.width + udf_stats.width.saturating_sub(8),
                    cols,
                };
                (unary(stats.rows, child), stats)
            }
            PhysPlan::Filter { input, predicate } => {
                let (child, is) = self.node(input);
                let sel = self.inner.selectivity(predicate, &is);
                let mut stats = is;
                stats.rows = (stats.rows * sel).max(0.0);
                (unary(stats.rows, child), stats)
            }
            PhysPlan::Project { input, exprs } => {
                let (child, is) = self.node(input);
                let mut cols = HashMap::new();
                for (e, name) in exprs {
                    let ce = match e {
                        Expr::Column(c) => is.cols.get(c).cloned().unwrap_or(ColEst {
                            distinct: is.rows,
                            ..ColEst::default()
                        }),
                        _ => ColEst {
                            distinct: is.rows,
                            ..ColEst::default()
                        },
                    };
                    cols.insert(name.clone(), ce);
                }
                let stats = EstStats {
                    rows: is.rows,
                    width: 8 + 9 * exprs.len(),
                    cols,
                };
                (unary(stats.rows, child), stats)
            }
            PhysPlan::Sort { input, .. } => {
                let (child, stats) = self.node(input);
                (unary(stats.rows, child), stats)
            }
            PhysPlan::Distinct { input } => {
                let (child, is) = self.node(input);
                let domain: f64 = is
                    .cols
                    .values()
                    .map(|c| c.distinct.max(1.0))
                    .product::<f64>()
                    .max(1.0);
                let rows = fj_storage::yao_distinct(is.rows.round() as u64, domain.round() as u64);
                let mut stats = is;
                stats.rows = rows;
                (unary(stats.rows, child), stats)
            }
            PhysPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let (child, is) = self.node(input);
                let groups = if group_by.is_empty() {
                    1.0
                } else {
                    group_by
                        .iter()
                        .map(|g| is.distinct(g))
                        .product::<f64>()
                        .min(is.rows)
                        .max(1.0)
                };
                let mut cols = HashMap::new();
                for g in group_by {
                    let mut ce = is.cols.get(g).cloned().unwrap_or_default();
                    ce.distinct = ce.distinct.min(groups).max(1.0);
                    cols.insert(g.clone(), ce);
                }
                for a in aggs {
                    cols.insert(
                        a.output.clone(),
                        ColEst {
                            distinct: groups,
                            ..ColEst::default()
                        },
                    );
                }
                let stats = EstStats {
                    rows: groups,
                    width: 8 + 9 * (group_by.len() + aggs.len()),
                    cols,
                };
                (unary(stats.rows, child), stats)
            }
            PhysPlan::NestedLoops {
                outer,
                inner,
                predicate,
                kind,
            } => {
                let (oc, os) = self.node(outer);
                let (ic, is) = self.node(inner);
                let stats = self.inner.join_stats(&os, &is, predicate.as_ref(), *kind);
                (binary(stats.rows, oc, ic), stats)
            }
            PhysPlan::HashJoin {
                outer,
                inner,
                keys,
                residual,
                kind,
            } => {
                let (oc, os) = self.node(outer);
                let (ic, is) = self.node(inner);
                let pred = keys_predicate(keys);
                let mut stats = self.inner.join_stats(&os, &is, pred.as_ref(), *kind);
                if let Some(r) = residual {
                    stats.rows *= self.inner.selectivity(r, &stats);
                }
                (binary(stats.rows, oc, ic), stats)
            }
            PhysPlan::MergeJoin {
                outer,
                inner,
                keys,
                residual,
            } => {
                let (oc, os) = self.node(outer);
                let (ic, is) = self.node(inner);
                let pred = keys_predicate(keys);
                let mut stats = self
                    .inner
                    .join_stats(&os, &is, pred.as_ref(), JoinKind::Inner);
                if let Some(r) = residual {
                    stats.rows *= self.inner.selectivity(r, &stats);
                }
                (binary(stats.rows, oc, ic), stats)
            }
            PhysPlan::IndexNestedLoops {
                outer,
                table,
                alias,
                outer_key,
                inner_col,
                residual,
            } => {
                let (oc, os) = self.node(outer);
                let is = self.table_stats(table).requalify(alias);
                let pred = Some(col(outer_key.clone()).eq(col(format!("{alias}.{inner_col}"))));
                let mut stats = self
                    .inner
                    .join_stats(&os, &is, pred.as_ref(), JoinKind::Inner);
                if let Some(r) = residual {
                    stats.rows *= self.inner.selectivity(r, &stats);
                }
                (unary(stats.rows, oc), stats)
            }
            PhysPlan::BloomProbe {
                input,
                bloom,
                key_cols,
            } => {
                let (child, is) = self.node(input);
                let mut stats = is;
                if let Some((src, src_keys)) = self.blooms.get(bloom) {
                    // The lossy filter keeps the fraction of input keys
                    // present in the filter's source — the same linear
                    // fraction as an exact semi-join, ignoring the
                    // (small, by sizing) false-positive rate.
                    if let (Some(ik), Some(sk)) = (key_cols.first(), src_keys.first()) {
                        let frac = (src.distinct(sk) / stats.distinct(ik)).min(1.0);
                        stats.rows *= frac;
                    }
                }
                (unary(stats.rows, child), stats)
            }
            PhysPlan::Ship { input, .. } => {
                let (child, stats) = self.node(input);
                (unary(stats.rows, child), stats)
            }
            PhysPlan::WithTemp { steps, body } => {
                let mut children = Vec::with_capacity(steps.len() + 1);
                let mut registered: Vec<(bool, String)> = Vec::new();
                for step in steps {
                    match step {
                        TempStep::Materialize { name, plan } => {
                            let (child, stats) = self.node(plan);
                            children.push(child);
                            self.temps.insert(name.clone(), stats);
                            registered.push((true, name.clone()));
                        }
                        TempStep::BuildBloom {
                            name,
                            plan,
                            key_cols,
                            ..
                        } => {
                            let (child, stats) = self.node(plan);
                            children.push(child);
                            self.blooms.insert(name.clone(), (stats, key_cols.clone()));
                            registered.push((false, name.clone()));
                        }
                    }
                }
                let (bc, stats) = self.node(body);
                children.push(bc);
                for (is_temp, name) in registered {
                    if is_temp {
                        self.temps.remove(&name);
                    } else {
                        self.blooms.remove(&name);
                    }
                }
                (
                    EstNode {
                        est_rows: stats.rows,
                        est_pages: 0.0,
                        children,
                    },
                    stats,
                )
            }
        }
    }

    /// Base-table stats with unqualified columns; defaults when the
    /// name does not resolve to a stored table.
    fn table_stats(&self, table: &str) -> EstStats {
        match self.inner.catalog.resolve(table) {
            Ok(RelationKind::Base(t)) | Ok(RelationKind::Remote(t, _)) => base_table_stats(&t),
            _ => fallback_stats(),
        }
    }

    /// UDF output stats: the full extension for a scan, or one batch
    /// of calls per outer row for a probe.
    fn udf_stats(&self, name: &str, probe_rows: Option<f64>) -> EstStats {
        let Ok(udf) = self.inner.catalog.udf(name) else {
            return fallback_stats();
        };
        let rows = match probe_rows {
            Some(outer) => outer * udf.rows_per_call(),
            None => match udf.domain() {
                Some(d) => d.len() as f64 * udf.rows_per_call(),
                None => DEFAULT_ROWS,
            },
        };
        let schema = udf.schema();
        EstStats {
            rows,
            width: schema.row_width(),
            cols: schema
                .columns()
                .iter()
                .map(|c| {
                    (
                        c.name.clone(),
                        ColEst {
                            distinct: rows,
                            ..ColEst::default()
                        },
                    )
                })
                .collect(),
        }
    }
}

fn fallback_stats() -> EstStats {
    EstStats {
        rows: DEFAULT_ROWS,
        width: 8,
        cols: HashMap::new(),
    }
}

fn leaf(rows: f64) -> EstNode {
    EstNode {
        est_rows: rows,
        est_pages: 0.0,
        children: Vec::new(),
    }
}

fn unary(rows: f64, child: EstNode) -> EstNode {
    EstNode {
        est_rows: rows,
        est_pages: 0.0,
        children: vec![child],
    }
}

fn binary(rows: f64, a: EstNode, b: EstNode) -> EstNode {
    EstNode {
        est_rows: rows,
        est_pages: 0.0,
        children: vec![a, b],
    }
}

/// A conjunction of equi-join key predicates.
fn keys_predicate(keys: &[(String, String)]) -> Option<Expr> {
    keys.iter()
        .map(|(a, b)| col(a.clone()).eq(col(b.clone())))
        .reduce(|acc, e| acc.and(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, OptimizerConfig};
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use std::sync::Arc;

    /// The estimate tree must mirror the plan's execution-order shape
    /// exactly — that's what lets EXPLAIN ANALYZE zip it with a trace.
    fn assert_mirrors(est: &EstNode, plan: &PhysPlan) {
        let kids = plan.children();
        assert_eq!(
            est.children.len(),
            kids.len(),
            "shape mismatch at {}",
            plan.node_label()
        );
        for (e, p) in est.children.iter().zip(kids) {
            assert_mirrors(e, p);
        }
    }

    /// Does any join in the tree carry a composite (join) inner — the
    /// defining property of a bushy plan?
    fn join_with_composite_inner(p: &PhysPlan) -> bool {
        let here = match p {
            PhysPlan::HashJoin { inner, .. }
            | PhysPlan::MergeJoin { inner, .. }
            | PhysPlan::NestedLoops { inner, .. } => subtree_has_join(inner),
            _ => false,
        };
        here || p.children().iter().any(|c| join_with_composite_inner(c))
    }

    fn subtree_has_join(p: &PhysPlan) -> bool {
        matches!(
            p,
            PhysPlan::HashJoin { .. } | PhysPlan::MergeJoin { .. } | PhysPlan::NestedLoops { .. }
        ) || p.children().iter().any(|c| subtree_has_join(c))
    }

    /// A deterministic two-arm snowflake: `Fact(fid, d0, d1)` joined to
    /// `DimK(id, sub) ⋈ σ(SubK.attr < 15)` on each arm. The selective
    /// sub-dimensions make pre-joining each arm strictly cheaper than
    /// any left-deep chain, so the bushy enumerator picks a plan with a
    /// composite inner.
    fn snowflake_catalog() -> (Catalog, fj_algebra::JoinQuery) {
        use fj_algebra::FromItem;
        use fj_expr::lit;
        use fj_storage::{DataType, TableBuilder, Value};
        let mut cat = Catalog::new();
        let fact = (0..500i64).map(|i| {
            vec![
                Value::Int(i),
                Value::Int((i * 7 + 3) % 50),
                Value::Int((i * 13 + 5) % 50),
            ]
        });
        cat.add_table(
            TableBuilder::new("Fact")
                .column("fid", DataType::Int)
                .column("d0", DataType::Int)
                .column("d1", DataType::Int)
                .rows(fact)
                .build()
                .unwrap()
                .into_ref(),
        );
        for d in 0..2i64 {
            let dim = (0..50i64).map(|i| vec![Value::Int(i), Value::Int((i * 3 + d) % 25)]);
            cat.add_table(
                TableBuilder::new(format!("Dim{d}"))
                    .column("id", DataType::Int)
                    .column("sub", DataType::Int)
                    .rows(dim)
                    .build()
                    .unwrap()
                    .into_ref(),
            );
            let sub = (0..25i64).map(|i| vec![Value::Int(i), Value::Int((i * 11 + 7 * d) % 50)]);
            cat.add_table(
                TableBuilder::new(format!("Sub{d}"))
                    .column("id", DataType::Int)
                    .column("attr", DataType::Int)
                    .rows(sub)
                    .build()
                    .unwrap()
                    .into_ref(),
            );
        }
        let from = vec![
            FromItem::new("Fact", "f"),
            FromItem::new("Dim0", "d0"),
            FromItem::new("Sub0", "s0"),
            FromItem::new("Dim1", "d1"),
            FromItem::new("Sub1", "s1"),
        ];
        let pred = col("f.d0".to_string())
            .eq(col("d0.id".to_string()))
            .and(col("d0.sub".to_string()).eq(col("s0.id".to_string())))
            .and(col("s0.attr".to_string()).lt(lit(15i64)))
            .and(col("f.d1".to_string()).eq(col("d1.id".to_string())))
            .and(col("d1.sub".to_string()).eq(col("s1.id".to_string())))
            .and(col("s1.attr".to_string()).lt(lit(15i64)));
        (cat, fj_algebra::JoinQuery::new(from).with_predicate(pred))
    }

    /// Under [`crate::PlanShape::Bushy`] the snowflake winner carries a
    /// composite inner, and the estimate tree must mirror that shape
    /// node for node — that's what lets EXPLAIN ANALYZE zip a bushy
    /// plan with its trace.
    #[test]
    fn estimate_tree_mirrors_a_bushy_snowflake_plan() {
        let (cat, q) = snowflake_catalog();
        let cat = Arc::new(cat);
        let plan = Optimizer::new(Arc::clone(&cat), OptimizerConfig::bushy())
            .optimize(&q)
            .unwrap();
        assert!(
            join_with_composite_inner(&plan.phys),
            "expected a bushy winner (some join's inner is itself a join):\n{}",
            plan.phys.display()
        );
        let est = estimate_phys_plan(&cat, CostParams::default(), &plan.phys);
        assert_mirrors(&est, &plan.phys);
        assert!(est.est_rows >= 0.0);
    }

    #[test]
    fn estimate_tree_mirrors_the_optimized_paper_plan() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let est = estimate_phys_plan(&cat, CostParams::default(), &plan.phys);
        assert_mirrors(&est, &plan.phys);
        assert!(est.est_rows >= 0.0);
        assert!(est.node_count() >= 3);
    }

    #[test]
    fn scan_estimates_match_base_table_statistics() {
        let cat = paper_catalog();
        let plan = PhysPlan::SeqScan {
            table: "Emp".into(),
            alias: "E".into(),
        };
        let est = estimate_phys_plan(&cat, CostParams::default(), &plan);
        assert_eq!(est.est_rows, 5.0);
    }

    #[test]
    fn unknown_relations_degrade_instead_of_failing() {
        let cat = Catalog::new();
        let plan = PhysPlan::SeqScan {
            table: "nope".into(),
            alias: "N".into(),
        };
        let est = estimate_phys_plan(&cat, CostParams::default(), &plan);
        assert_eq!(est.est_rows, DEFAULT_ROWS);
    }
}
