//! Cardinality, selectivity and cost estimation over logical plans.
//!
//! This is the estimation machinery behind both the System-R enumerator
//! (leaf statistics, predicate selectivities, join cardinalities) and
//! the nested estimator invocations of the parametric Filter Join
//! approximation (§4.2): [`PlanEstimator`] can estimate *any* logical
//! plan — in particular a view body with a filter-set CTE of a chosen
//! cardinality spliced in.
//!
//! Estimates follow the classic Selinger assumptions the paper builds
//! on (§2.3): known base-table statistics, attribute independence,
//! uniformity within histogram buckets, and containment of value sets
//! for joins.

use crate::cost::CostParams;
use crate::error::OptError;
use fj_algebra::{Catalog, JoinKind, LogicalPlan, RelationKind};
use fj_expr::{split_conjuncts, BinOp, Expr};
use fj_storage::{yao_distinct, Histogram, Schema, Value};
use std::collections::HashMap;

/// Default selectivity for an equality predicate with no statistics.
pub const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default selectivity for a range predicate with no statistics.
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity for an opaque predicate.
pub const DEFAULT_SEL: f64 = 0.5;

/// Per-column estimate.
#[derive(Debug, Clone, Default)]
pub struct ColEst {
    /// Estimated distinct values.
    pub distinct: f64,
    /// Minimum value, when known.
    pub min: Option<Value>,
    /// Maximum value, when known.
    pub max: Option<Value>,
    /// Histogram, when inherited from a base table.
    pub histogram: Option<Histogram>,
}

/// Estimated properties of a plan's output.
#[derive(Debug, Clone, Default)]
pub struct EstStats {
    /// Estimated row count.
    pub rows: f64,
    /// Row width in bytes.
    pub width: usize,
    /// Per-column estimates, keyed by qualified output column name.
    pub cols: HashMap<String, ColEst>,
}

impl EstStats {
    /// Pages this output would occupy.
    pub fn pages(&self, params: &CostParams) -> f64 {
        params.pages(self.rows, self.width)
    }

    /// Distinct count for a column (defaults to `rows` when unknown).
    pub fn distinct(&self, col: &str) -> f64 {
        self.cols
            .get(col)
            .map(|c| c.distinct)
            .unwrap_or(self.rows)
            .max(1.0)
    }

    pub(crate) fn requalify(mut self, alias: &str) -> EstStats {
        if alias.is_empty() {
            return self;
        }
        self.cols = self
            .cols
            .into_iter()
            .map(|(k, v)| {
                let base = k.rsplit_once('.').map(|(_, b)| b).unwrap_or(&k);
                (format!("{alias}.{base}"), v)
            })
            .collect();
        self
    }

    fn cap_distincts(&mut self) {
        for c in self.cols.values_mut() {
            c.distinct = c.distinct.min(self.rows).max(1.0);
        }
    }
}

/// Estimates cardinalities and costs of logical plans.
pub struct PlanEstimator<'a> {
    /// Catalog supplying base statistics.
    pub catalog: &'a Catalog,
    /// Cost parameters.
    pub params: CostParams,
    /// Statistics for CTEs referenced by name (the parametric estimator
    /// splices synthetic filter-set stats in here).
    pub cte_stats: HashMap<String, EstStats>,
}

impl<'a> PlanEstimator<'a> {
    /// A fresh estimator.
    pub fn new(catalog: &'a Catalog, params: CostParams) -> PlanEstimator<'a> {
        PlanEstimator {
            catalog,
            params,
            cte_stats: HashMap::new(),
        }
    }

    /// Registers synthetic stats for a CTE name.
    pub fn with_cte(mut self, name: impl Into<String>, stats: EstStats) -> Self {
        self.cte_stats.insert(name.into(), stats);
        self
    }

    /// Estimates the output statistics of `plan`.
    pub fn estimate(&self, plan: &LogicalPlan) -> Result<EstStats, OptError> {
        Ok(self.estimate_inner(plan)?.1)
    }

    /// Estimates the *cost* (page units) of evaluating `plan` with the
    /// heuristic lowering of `fj-exec`, together with its output stats.
    pub fn cost(&self, plan: &LogicalPlan) -> Result<(f64, EstStats), OptError> {
        self.estimate_inner(plan)
    }

    fn estimate_inner(&self, plan: &LogicalPlan) -> Result<(f64, EstStats), OptError> {
        match plan {
            LogicalPlan::Scan { relation, alias } => {
                let kind = self.catalog.resolve(relation)?;
                let remote = matches!(kind, RelationKind::Remote(..));
                match kind {
                    RelationKind::Base(t) | RelationKind::Remote(t, _) => {
                        let stats = base_table_stats(&t);
                        let pages = stats.pages(&self.params);
                        let mut cost = pages;
                        if remote {
                            cost += self
                                .params
                                .ship_cost(stats.rows, wire_width_of(t.schema()) as f64);
                        }
                        Ok((cost, stats.requalify(alias)))
                    }
                    RelationKind::View(view) => {
                        let (cost, stats) = self.estimate_inner(&view.plan)?;
                        // Requalify project on top: one CPU op per row.
                        Ok((cost + self.params.cpu(stats.rows), stats.requalify(alias)))
                    }
                    RelationKind::Udf(udf) => {
                        let (rows, calls) = match udf.domain() {
                            Some(d) => (d.len() as f64 * udf.rows_per_call(), d.len() as f64),
                            None => (1000.0, 1000.0),
                        };
                        let schema = udf.schema();
                        let mut stats = EstStats {
                            rows,
                            width: schema.row_width(),
                            cols: schema
                                .columns()
                                .iter()
                                .map(|c| {
                                    (
                                        c.name.clone(),
                                        ColEst {
                                            distinct: rows,
                                            ..ColEst::default()
                                        },
                                    )
                                })
                                .collect(),
                        };
                        stats = stats.requalify(alias);
                        Ok((calls * udf.invocation_cost(), stats))
                    }
                }
            }
            LogicalPlan::CteRef { name, alias, .. } => {
                let stats = self
                    .cte_stats
                    .get(name)
                    .cloned()
                    .ok_or_else(|| OptError::NoPlan(format!("no stats for CTE '{name}'")))?;
                let cost = stats.pages(&self.params);
                Ok((cost, stats.requalify(alias)))
            }
            LogicalPlan::Select { input, predicate } => {
                let (cost, stats) = self.estimate_inner(input)?;
                let sel = self.selectivity(predicate, &stats);
                let mut out = stats;
                out.rows = (out.rows * sel).max(0.0);
                out.cap_distincts();
                Ok((cost + self.params.cpu(out.rows / sel.max(1e-9)), out))
            }
            LogicalPlan::Project { input, exprs } => {
                let (cost, stats) = self.estimate_inner(input)?;
                let mut cols = HashMap::new();
                let mut width = 8;
                for (e, name) in exprs {
                    let ce = match e {
                        Expr::Column(c) => stats.cols.get(c).cloned().unwrap_or(ColEst {
                            distinct: stats.rows,
                            ..ColEst::default()
                        }),
                        _ => ColEst {
                            distinct: stats.rows,
                            ..ColEst::default()
                        },
                    };
                    width += 9;
                    cols.insert(name.clone(), ce);
                }
                let out = EstStats {
                    rows: stats.rows,
                    width,
                    cols,
                };
                Ok((cost + self.params.cpu(stats.rows), out))
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            } => {
                let (lcost, ls) = self.estimate_inner(left)?;
                let (rcost, rs) = self.estimate_inner(right)?;
                let out = self.join_stats(&ls, &rs, predicate.as_ref(), *kind);
                // Cost as if lowered to a hash join when equi keys exist,
                // else BNL.
                let has_keys = predicate
                    .as_ref()
                    .map(|p| !self.equi_keys(p, &ls, &rs).is_empty())
                    .unwrap_or(false);
                let lp = ls.pages(&self.params);
                let rp = rs.pages(&self.params);
                let jcost = if has_keys {
                    self.params
                        .hash_join_cost(ls.rows, lp, rs.rows, rp, out.rows)
                } else {
                    self.params.bnl_cost(ls.rows, lp, rs.rows, rp)
                };
                Ok((lcost + rcost + jcost, out))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (cost, stats) = self.estimate_inner(input)?;
                let groups = if group_by.is_empty() {
                    1.0
                } else {
                    group_by
                        .iter()
                        .map(|g| stats.distinct(g))
                        .product::<f64>()
                        .min(stats.rows)
                        .max(1.0)
                };
                let mut cols = HashMap::new();
                let mut width = 8;
                for g in group_by {
                    let mut ce = stats.cols.get(g).cloned().unwrap_or_default();
                    ce.distinct = ce.distinct.min(groups).max(1.0);
                    cols.insert(g.clone(), ce);
                    width += 9;
                }
                for a in aggs {
                    cols.insert(
                        a.output.clone(),
                        ColEst {
                            distinct: groups,
                            ..ColEst::default()
                        },
                    );
                    width += 9;
                }
                let out = EstStats {
                    rows: groups,
                    width,
                    cols,
                };
                let agg_cost = self.params.cpu(stats.rows * (1 + aggs.len()) as f64)
                    + self.params.external_sort_io(out.pages(&self.params));
                Ok((cost + agg_cost, out))
            }
            LogicalPlan::Distinct { input } => {
                let (cost, stats) = self.estimate_inner(input)?;
                let domain: f64 = stats
                    .cols
                    .values()
                    .map(|c| c.distinct.max(1.0))
                    .product::<f64>()
                    .max(1.0);
                let rows = yao_distinct(stats.rows.round() as u64, domain.round() as u64);
                let mut out = stats.clone();
                out.rows = rows;
                out.cap_distincts();
                let dcost = self.params.cpu(stats.rows)
                    + self.params.external_sort_io(out.pages(&self.params));
                Ok((cost + dcost, out))
            }
            LogicalPlan::With { ctes, body } => {
                let mut nested = PlanEstimator {
                    catalog: self.catalog,
                    params: self.params,
                    cte_stats: self.cte_stats.clone(),
                };
                let mut total = 0.0;
                for (name, cte) in ctes {
                    let (c, s) = nested.estimate_inner(cte)?;
                    total += c + nested.params.materialize_cost(s.pages(&nested.params));
                    nested.cte_stats.insert(name.clone(), s);
                }
                let (c, s) = nested.estimate_inner(body)?;
                Ok((total + c, s))
            }
            LogicalPlan::Values { schema, rows } => {
                let stats = EstStats {
                    rows: rows.len() as f64,
                    width: schema.row_width(),
                    cols: schema
                        .columns()
                        .iter()
                        .map(|c| {
                            (
                                c.name.clone(),
                                ColEst {
                                    distinct: rows.len() as f64,
                                    ..ColEst::default()
                                },
                            )
                        })
                        .collect(),
                };
                Ok((0.0, stats))
            }
        }
    }

    /// Join output statistics under containment + independence.
    pub fn join_stats(
        &self,
        ls: &EstStats,
        rs: &EstStats,
        predicate: Option<&Expr>,
        kind: JoinKind,
    ) -> EstStats {
        let mut cols = ls.cols.clone();
        let mut width = ls.width;
        if kind == JoinKind::Inner {
            cols.extend(rs.cols.clone());
            width += rs.width.saturating_sub(8);
        }

        let mut rows = match kind {
            JoinKind::Inner => ls.rows * rs.rows,
            JoinKind::Semi => ls.rows,
        };
        if let Some(p) = predicate {
            for c in split_conjuncts(p) {
                let keys = self.equi_keys(&c, ls, rs);
                if let Some((lk, rk)) = keys.first() {
                    match kind {
                        JoinKind::Inner => {
                            let sel = 1.0 / ls.distinct(lk).max(rs.distinct(rk));
                            rows *= sel;
                            // Containment: joined key keeps min distinct.
                            let d = ls.distinct(lk).min(rs.distinct(rk));
                            if let Some(ce) = cols.get_mut(lk) {
                                ce.distinct = d;
                            }
                            if let Some(ce) = cols.get_mut(rk) {
                                ce.distinct = d;
                            }
                        }
                        JoinKind::Semi => {
                            // Fraction of outer keys present in the inner
                            // — for a filter set of f values over a
                            // domain of d, exactly f/d: the straight
                            // line of Figure 4.
                            let frac = (rs.distinct(rk) / ls.distinct(lk)).min(1.0);
                            rows *= frac;
                            // Only the filtered key values survive, which
                            // is what shrinks the group count when an
                            // aggregate sits above the semi-join.
                            let d = ls.distinct(lk).min(rs.distinct(rk));
                            if let Some(ce) = cols.get_mut(lk) {
                                ce.distinct = d;
                            }
                        }
                    }
                } else {
                    // Non-equi or one-sided conjunct.
                    let combined = EstStats {
                        rows: 0.0,
                        width: 0,
                        cols: cols.clone(),
                    };
                    rows *= self.selectivity_conjunct(&c, &combined, Some((ls, rs)));
                }
            }
        }
        let mut out = EstStats {
            rows: rows.max(0.0),
            width,
            cols,
        };
        out.cap_distincts();
        out
    }

    /// Extracts equi-join key pairs of `pred` between `ls` and `rs`.
    pub fn equi_keys(&self, pred: &Expr, ls: &EstStats, rs: &EstStats) -> Vec<(String, String)> {
        fj_expr::equi_join_keys(pred, &|c| ls.cols.contains_key(c), &|c| {
            rs.cols.contains_key(c)
        })
        .into_iter()
        .map(|k| (k.left, k.right))
        .collect()
    }

    /// Selectivity of a (possibly conjunctive) predicate against `stats`.
    pub fn selectivity(&self, pred: &Expr, stats: &EstStats) -> f64 {
        split_conjuncts(pred)
            .iter()
            .map(|c| self.selectivity_conjunct(c, stats, None))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    fn selectivity_conjunct(
        &self,
        c: &Expr,
        stats: &EstStats,
        _sides: Option<(&EstStats, &EstStats)>,
    ) -> f64 {
        match c {
            Expr::Binary { op, left, right } => match (op, left.as_ref(), right.as_ref()) {
                (BinOp::Eq, Expr::Column(a), Expr::Column(b)) => {
                    1.0 / stats.distinct(a).max(stats.distinct(b))
                }
                (BinOp::Eq, Expr::Column(a), Expr::Literal(_))
                | (BinOp::Eq, Expr::Literal(_), Expr::Column(a)) => match stats.cols.get(a) {
                    Some(ce) if ce.distinct >= 1.0 => 1.0 / ce.distinct,
                    _ => DEFAULT_EQ_SEL,
                },
                (BinOp::Ne, _, _) => 1.0 - self.eq_flipped(c, stats),
                (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, l, r) => {
                    self.range_selectivity(*op, l, r, stats)
                }
                (BinOp::And, _, _) => {
                    self.selectivity_conjunct(left, stats, None)
                        * self.selectivity_conjunct(right, stats, None)
                }
                (BinOp::Or, _, _) => {
                    let a = self.selectivity_conjunct(left, stats, None);
                    let b = self.selectivity_conjunct(right, stats, None);
                    (a + b - a * b).clamp(0.0, 1.0)
                }
                _ => DEFAULT_SEL,
            },
            Expr::Not(inner) => 1.0 - self.selectivity_conjunct(inner, stats, None),
            Expr::IsNull(_) => DEFAULT_EQ_SEL,
            Expr::Literal(Value::Bool(true)) => 1.0,
            Expr::Literal(Value::Bool(false)) => 0.0,
            _ => DEFAULT_SEL,
        }
    }

    fn eq_flipped(&self, c: &Expr, stats: &EstStats) -> f64 {
        if let Expr::Binary { left, right, .. } = c {
            let eq = Expr::Binary {
                op: BinOp::Eq,
                left: left.clone(),
                right: right.clone(),
            };
            self.selectivity_conjunct(&eq, stats, None)
        } else {
            DEFAULT_EQ_SEL
        }
    }

    fn range_selectivity(&self, op: BinOp, l: &Expr, r: &Expr, stats: &EstStats) -> f64 {
        // Normalize to `column op literal`.
        let (col_name, lit, op) = match (l, r) {
            (Expr::Column(c), Expr::Literal(v)) => (c, v, op),
            (Expr::Literal(v), Expr::Column(c)) => {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => other,
                };
                (c, v, flipped)
            }
            _ => return DEFAULT_RANGE_SEL,
        };
        let Some(ce) = stats.cols.get(col_name) else {
            return DEFAULT_RANGE_SEL;
        };
        if let Some(h) = &ce.histogram {
            let le = h.fraction_le(lit);
            return match op {
                BinOp::Lt | BinOp::Le => le,
                BinOp::Gt | BinOp::Ge => 1.0 - le,
                _ => DEFAULT_RANGE_SEL,
            }
            .clamp(0.0, 1.0);
        }
        match (&ce.min, &ce.max) {
            (Some(mn), Some(mx)) => {
                let (mn, mx, v) = match (mn.as_double(), mx.as_double(), lit.as_double()) {
                    (Some(a), Some(b), Some(c)) => (a, b, c),
                    _ => return DEFAULT_RANGE_SEL,
                };
                if mx <= mn {
                    return DEFAULT_RANGE_SEL;
                }
                let frac = ((v - mn) / (mx - mn)).clamp(0.0, 1.0);
                match op {
                    BinOp::Lt | BinOp::Le => frac,
                    BinOp::Gt | BinOp::Ge => 1.0 - frac,
                    _ => DEFAULT_RANGE_SEL,
                }
            }
            _ => DEFAULT_RANGE_SEL,
        }
    }
}

/// Builds [`EstStats`] for a base table from its analyzed statistics,
/// with *unqualified* column names.
pub fn base_table_stats(table: &fj_storage::Table) -> EstStats {
    let schema = table.schema();
    let stats = table.stats();
    let cols = schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let cs = stats.column(i);
            (
                c.name.clone(),
                ColEst {
                    distinct: cs.map(|s| s.distinct as f64).unwrap_or(1.0).max(1.0),
                    min: cs.and_then(|s| s.min.clone()),
                    max: cs.and_then(|s| s.max.clone()),
                    histogram: cs.and_then(|s| s.histogram.clone()),
                },
            )
        })
        .collect();
    EstStats {
        rows: table.row_count() as f64,
        width: schema.row_width(),
        cols,
    }
}

fn wire_width_of(schema: &Schema) -> usize {
    schema.row_width()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_expr::{col, lit};

    fn est(cat: &Catalog) -> PlanEstimator<'_> {
        PlanEstimator::new(cat, CostParams::default())
    }

    #[test]
    fn base_scan_stats() {
        let cat = paper_catalog();
        let e = est(&cat);
        let s = e.estimate(&LogicalPlan::scan("Emp", "E")).unwrap();
        assert_eq!(s.rows, 5.0);
        assert_eq!(s.distinct("E.did"), 3.0);
        assert!(s.cols.contains_key("E.sal"));
    }

    #[test]
    fn selection_reduces_rows() {
        let cat = paper_catalog();
        let e = est(&cat);
        let plan = LogicalPlan::scan("Emp", "E").select(col("E.did").eq(lit(10)));
        let s = e.estimate(&plan).unwrap();
        // 1/3 of 5 rows.
        assert!((s.rows - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equi_join_cardinality() {
        let cat = paper_catalog();
        let e = est(&cat);
        let plan = LogicalPlan::scan("Emp", "E").join(
            LogicalPlan::scan("Dept", "D"),
            Some(col("E.did").eq(col("D.did"))),
        );
        let s = e.estimate(&plan).unwrap();
        // 5 × 3 / max(3,3) = 5.
        assert!((s.rows - 5.0).abs() < 1e-9);
    }

    #[test]
    fn semi_join_fraction_is_linear_in_filter_size() {
        let cat = paper_catalog();
        let e = est(&cat);
        let body = e.estimate(&LogicalPlan::scan("Emp", "E")).unwrap();
        // Filter set with 1 of the 3 did values.
        let filter = EstStats {
            rows: 1.0,
            width: 17,
            cols: [(
                "__F.k0".to_string(),
                ColEst {
                    distinct: 1.0,
                    ..ColEst::default()
                },
            )]
            .into_iter()
            .collect(),
        };
        let out = e.join_stats(
            &body,
            &filter,
            Some(&col("E.did").eq(col("__F.k0"))),
            JoinKind::Semi,
        );
        assert!((out.rows - 5.0 / 3.0).abs() < 1e-9, "got {}", out.rows);
    }

    #[test]
    fn view_estimation_goes_through_aggregate() {
        let cat = paper_catalog();
        let e = est(&cat);
        let s = e.estimate(&LogicalPlan::scan("DepAvgSal", "V")).unwrap();
        // One group per department.
        assert!((s.rows - 3.0).abs() < 1e-9);
        assert!(s.cols.contains_key("V.avgsal"));
    }

    #[test]
    fn distinct_uses_yao() {
        let cat = paper_catalog();
        let e = est(&cat);
        let plan = LogicalPlan::scan("Emp", "E")
            .project(vec![(col("E.did"), "did".into())])
            .distinct();
        let s = e.estimate(&plan).unwrap();
        // Drawing 5 rows from 3 distinct dids: close to 3.
        assert!(s.rows > 2.0 && s.rows <= 3.0, "got {}", s.rows);
    }

    #[test]
    fn cte_ref_requires_stats() {
        let cat = paper_catalog();
        let e = est(&cat);
        let plan = LogicalPlan::CteRef {
            name: "x".into(),
            alias: String::new(),
            schema: Schema::from_pairs(&[("k", fj_storage::DataType::Int)]).into_ref(),
        };
        assert!(e.estimate(&plan).is_err());
        let e = est(&cat).with_cte(
            "x",
            EstStats {
                rows: 42.0,
                width: 17,
                cols: HashMap::new(),
            },
        );
        assert_eq!(e.estimate(&plan).unwrap().rows, 42.0);
    }

    #[test]
    fn range_selectivity_uses_histogram() {
        let cat = paper_catalog();
        let e = est(&cat);
        let plan = LogicalPlan::scan("Emp", "E").select(col("E.age").lt(lit(100)));
        let s = e.estimate(&plan).unwrap();
        assert!(s.rows > 4.0, "age<100 keeps ~everything, got {}", s.rows);
        let plan = LogicalPlan::scan("Emp", "E").select(col("E.age").lt(lit(0)));
        let s = e.estimate(&plan).unwrap();
        assert!(s.rows < 2.0, "age<0 keeps ~nothing, got {}", s.rows);
    }

    #[test]
    fn whole_paper_query_estimates_and_costs() {
        let cat = paper_catalog();
        let e = est(&cat);
        let (cost, stats) = e.cost(&paper_query().to_plan()).unwrap();
        assert!(cost > 0.0);
        assert!(stats.rows >= 0.0);
        assert_eq!(stats.cols.len(), 3);
    }

    #[test]
    fn or_and_not_selectivities() {
        let cat = paper_catalog();
        let e = est(&cat);
        let s = e.estimate(&LogicalPlan::scan("Emp", "E")).unwrap();
        let p_or = col("E.did").eq(lit(10)).or(col("E.did").eq(lit(20)));
        let sel = e.selectivity(&p_or, &s);
        assert!(sel > 1.0 / 3.0 && sel < 0.7, "got {sel}");
        let p_not = col("E.did").eq(lit(10)).not();
        let sel = e.selectivity(&p_not, &s);
        assert!((sel - 2.0 / 3.0).abs() < 1e-9);
    }
}
