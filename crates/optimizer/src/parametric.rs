//! Parametric approximation of the inner restriction (§4.1–4.2).
//!
//! Costing a Filter Join requires the cost and cardinality of the inner
//! virtual relation *as restricted by a filter set* — a parametric
//! quantity. Invoking the nested estimator for every candidate filter
//! set would break Assumption 1 (O(1) per costing). Instead, the paper
//! proposes **equivalence classes** over the parameter:
//!
//! > "the cardinality of the result of the filtered inner relation is
//! > directly proportional to the selectivity of the filter set ...
//! > Once the selectivity has been computed for a few equivalence
//! > classes ... a straight line can be fitted to them" (Figure 4)
//!
//! [`ParametricFit`] probes a small, configurable number of filter-set
//! selectivities (the classes of Figure 5 — the paper's accuracy/effort
//! "knob"), fits a least-squares line for output cardinality, keeps a
//! step table for cost, and answers all subsequent probes in O(1).
//! [`ParametricEstimator`] memoizes fits per (relation, attribute-set),
//! so the whole optimization performs only `O(#virtual relations ×
//! classes)` nested estimator invocations.

use crate::cost::CostParams;
use crate::error::OptError;
use crate::estimate::{ColEst, EstStats, PlanEstimator};
use fj_algebra::{magic, Catalog, LogicalPlan};
use fj_storage::{Column, DataType, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// CTE name used for the synthetic filter set during fitting.
const FIT_CTE: &str = "__pfit";

/// One probed equivalence class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPoint {
    /// Filter-set selectivity (fraction of the inner key domain).
    pub selectivity: f64,
    /// Filter-set cardinality at this selectivity.
    pub filter_rows: f64,
    /// Estimated cost of the restricted inner.
    pub cost: f64,
    /// Estimated output cardinality of the restricted inner.
    pub rows: f64,
}

/// A fitted parametric model for one (relation, filter attributes) pair.
#[derive(Debug, Clone)]
pub struct ParametricFit {
    /// Inner relation (catalog name).
    pub relation: String,
    /// Filter attributes (unqualified inner column names).
    pub attrs: Vec<String>,
    /// Distinct values of the (first) filter attribute in the inner —
    /// the domain the selectivity is relative to.
    pub key_domain: f64,
    /// Unrestricted inner stats (selectivity 1 without the semi-join
    /// machinery).
    pub unrestricted: EstStats,
    /// The probed classes, in increasing selectivity.
    pub points: Vec<ClassPoint>,
    /// Straight-line fit `rows(s) = slope·s + intercept`.
    pub card_slope: f64,
    /// Intercept of the cardinality line.
    pub card_intercept: f64,
}

impl ParametricFit {
    /// Fits a model by probing `classes` equivalence classes (clamped to
    /// 2..=16) of filter-set selectivity in `[0, 1]`.
    pub fn fit(
        catalog: &Catalog,
        params: CostParams,
        relation: &str,
        attrs: &[String],
        classes: usize,
        invocation_counter: &mut u64,
    ) -> Result<ParametricFit, OptError> {
        let classes = classes.clamp(2, 16);
        let estimator = PlanEstimator::new(catalog, params);
        let unrestricted =
            estimator.estimate(&LogicalPlan::scan(relation.to_string(), String::new()))?;
        let key_domain = unrestricted.distinct(&attrs[0]);

        // Filter-set schema: k0, k1, ... (all typed as the inner attrs
        // would be; Int is a safe stand-in for estimation purposes).
        let filter_schema = Schema::new(
            (0..attrs.len())
                .map(|i| Column::new(format!("k{i}"), DataType::Int))
                .collect(),
        )?
        .into_ref();
        let restricted =
            magic::restricted_inner(catalog, relation, attrs, FIT_CTE, &filter_schema)?;

        let mut points = Vec::with_capacity(classes);
        for i in 0..classes {
            let s = i as f64 / (classes - 1) as f64;
            let filter_rows = (s * key_domain).round();
            let filter_stats = EstStats {
                rows: filter_rows,
                width: filter_schema.row_width(),
                cols: (0..attrs.len())
                    .map(|j| {
                        (
                            format!("k{j}"),
                            ColEst {
                                distinct: filter_rows.max(1.0),
                                ..ColEst::default()
                            },
                        )
                    })
                    .collect(),
            };
            let nested = PlanEstimator::new(catalog, params).with_cte(FIT_CTE, filter_stats);
            *invocation_counter += 1;
            let (cost, stats) = nested.cost(&restricted)?;
            points.push(ClassPoint {
                selectivity: s,
                filter_rows,
                cost,
                rows: stats.rows,
            });
        }

        let (card_slope, card_intercept) = least_squares(
            &points
                .iter()
                .map(|p| (p.selectivity, p.rows))
                .collect::<Vec<_>>(),
        );

        Ok(ParametricFit {
            relation: relation.to_string(),
            attrs: attrs.to_vec(),
            key_domain,
            unrestricted,
            points,
            card_slope,
            card_intercept,
        })
    }

    /// Converts a filter-set cardinality to a selectivity in `[0, 1]`.
    pub fn selectivity_of(&self, filter_rows: f64) -> f64 {
        (filter_rows / self.key_domain.max(1.0)).clamp(0.0, 1.0)
    }

    /// O(1) cardinality estimate via the straight-line fit (Figure 4).
    pub fn cardinality(&self, selectivity: f64) -> f64 {
        (self.card_slope * selectivity.clamp(0.0, 1.0) + self.card_intercept).max(0.0)
    }

    /// O(1) cost estimate: the step function over equivalence classes
    /// (Figure 5) — the nearest probed class's cost.
    pub fn cost(&self, selectivity: f64) -> f64 {
        let s = selectivity.clamp(0.0, 1.0);
        self.points
            .iter()
            .min_by(|a, b| {
                (a.selectivity - s)
                    .abs()
                    .total_cmp(&(b.selectivity - s).abs())
            })
            .map(|p| p.cost)
            .unwrap_or(0.0)
    }
}

/// Least-squares straight-line fit; returns `(slope, intercept)`.
pub fn least_squares(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    if points.len() == 1 {
        return (0.0, points[0].1);
    }
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Memoizing front-end: one [`ParametricFit`] per (relation, attrs),
/// shared across the whole optimization (and across queries if reused).
#[derive(Debug, Default)]
pub struct ParametricEstimator {
    fits: HashMap<(String, Vec<String>), Arc<ParametricFit>>,
    /// Equivalence classes probed per fit — the paper's knob.
    pub classes: usize,
    /// Total nested estimator invocations performed (observability for
    /// the complexity experiment).
    pub nested_invocations: u64,
}

impl ParametricEstimator {
    /// A memo probing `classes` classes per relation/attribute pair.
    pub fn new(classes: usize) -> ParametricEstimator {
        ParametricEstimator {
            fits: HashMap::new(),
            classes: classes.clamp(2, 16),
            nested_invocations: 0,
        }
    }

    /// Returns the memoized fit, computing it on first use.
    pub fn fit(
        &mut self,
        catalog: &Catalog,
        params: CostParams,
        relation: &str,
        attrs: &[String],
    ) -> Result<Arc<ParametricFit>, OptError> {
        let key = (relation.to_string(), attrs.to_vec());
        if let Some(f) = self.fits.get(&key) {
            return Ok(Arc::clone(f));
        }
        let fit = Arc::new(ParametricFit::fit(
            catalog,
            params,
            relation,
            attrs,
            self.classes,
            &mut self.nested_invocations,
        )?);
        self.fits.insert(key, Arc::clone(&fit));
        Ok(fit)
    }

    /// Number of distinct fits computed.
    pub fn fit_count(&self) -> usize {
        self.fits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::fixtures::paper_catalog;

    #[test]
    fn least_squares_recovers_lines() {
        let (m, b) = least_squares(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
        assert!((m - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
        assert_eq!(least_squares(&[]), (0.0, 0.0));
        assert_eq!(least_squares(&[(2.0, 7.0)]), (0.0, 7.0));
        // Vertical degenerate: same x everywhere.
        let (m, b) = least_squares(&[(1.0, 2.0), (1.0, 4.0)]);
        assert_eq!(m, 0.0);
        assert!((b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fit_on_paper_view_is_monotone() {
        let cat = paper_catalog();
        let mut n = 0;
        let fit = ParametricFit::fit(
            &cat,
            CostParams::default(),
            "DepAvgSal",
            &["did".to_string()],
            4,
            &mut n,
        )
        .unwrap();
        assert_eq!(n, 4, "one nested invocation per class");
        assert_eq!(fit.points.len(), 4);
        // Cardinality grows with selectivity (the Figure 4 line).
        assert!(fit.card_slope > 0.0, "slope {}", fit.card_slope);
        assert!(fit.cardinality(0.0) < fit.cardinality(1.0));
        // At selectivity 1 the restricted view has (close to) all groups.
        let full = fit.cardinality(1.0);
        assert!(
            (full - 3.0).abs() < 1.0,
            "sel=1 cardinality ~3 groups, got {full}"
        );
    }

    #[test]
    fn cost_step_function_is_nondecreasing_overall() {
        let cat = paper_catalog();
        let mut n = 0;
        let fit = ParametricFit::fit(
            &cat,
            CostParams::default(),
            "DepAvgSal",
            &["did".to_string()],
            5,
            &mut n,
        )
        .unwrap();
        assert!(fit.cost(0.0) <= fit.cost(1.0) + 1e-9);
    }

    #[test]
    fn memo_amortizes_nested_invocations() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let attrs = vec!["did".to_string()];
        memo.fit(&cat, CostParams::default(), "DepAvgSal", &attrs)
            .unwrap();
        assert_eq!(memo.nested_invocations, 4);
        // Hundreds of further probes: zero additional invocations.
        for _ in 0..500 {
            let f = memo
                .fit(&cat, CostParams::default(), "DepAvgSal", &attrs)
                .unwrap();
            let _ = f.cardinality(0.37);
            let _ = f.cost(0.37);
        }
        assert_eq!(memo.nested_invocations, 4);
        assert_eq!(memo.fit_count(), 1);
    }

    #[test]
    fn classes_clamped() {
        let memo = ParametricEstimator::new(1);
        assert_eq!(memo.classes, 2);
        let memo = ParametricEstimator::new(100);
        assert_eq!(memo.classes, 16);
    }

    #[test]
    fn selectivity_of_converts_cardinality() {
        let cat = paper_catalog();
        let mut n = 0;
        let fit = ParametricFit::fit(
            &cat,
            CostParams::default(),
            "DepAvgSal",
            &["did".to_string()],
            3,
            &mut n,
        )
        .unwrap();
        assert!((fit.selectivity_of(fit.key_domain) - 1.0).abs() < 1e-9);
        assert_eq!(fit.selectivity_of(0.0), 0.0);
        assert_eq!(fit.selectivity_of(1e9), 1.0);
    }
}
