//! The Filter Join: Table 1 cost formula and physical plan construction.
//!
//! Definition 2.1: *"A distinct set of values of the join attribute of A
//! is created. This set is used as a filter to restrict the tuples of B
//! that are accessed. This restricted set of B tuples is then joined
//! with the relation A."*
//!
//! Under Limitations 1+2 (§3.3) the production set is exactly the outer
//! relation, so the seven cost components of Table 1 become:
//!
//! | component | here |
//! |---|---|
//! | `JoinCost_P` | cost of the outer DP entry |
//! | `ProductionCost_P` | min(materialize P, recompute P) |
//! | `ProjCost_F` | distinct projection of the join attributes |
//! | `AvailCost_F` | materialize F (+ ship to the inner's site) |
//! | `FilterCost_Rk` | restricted inner: parametric fit for views, semi-join formula for tables, per-value invocation for UDFs |
//! | `AvailCost_Rk'` | pipelined (0) locally, shipping for remote inners |
//! | `FinalJoinCost` | hash join of P with R'k |

use crate::cost::CostParams;
use crate::error::OptError;
use crate::estimate::{base_table_stats, ColEst, EstStats, PlanEstimator};
use crate::parametric::ParametricEstimator;
use fj_algebra::{magic, Catalog, JoinKind, RelationKind, SiteId};
use fj_exec::{lower, PhysPlan, TempStep};
use fj_expr::col;
use fj_storage::{yao_distinct, Column, DataType, Schema};
use std::fmt;

/// The seven cost components of Table 1, in page-I/O-equivalent units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FilterJoinCost {
    /// Cost of performing the joins required to generate production set P.
    pub join_cost_p: f64,
    /// Cost of materializing (or recomputing) production set P.
    pub production_cost_p: f64,
    /// Cost of projecting P to generate the filter set F.
    pub proj_cost_f: f64,
    /// Cost of making F available to the inner relation.
    pub avail_cost_f: f64,
    /// Cost of generating the inner restricted by F.
    pub filter_cost_rk: f64,
    /// Cost of making the restricted inner available for the final join.
    pub avail_cost_rk: f64,
    /// Cost of the final join of P with the restricted inner.
    pub final_join_cost: f64,
    /// Whether P is materialized (true) or recomputed (false).
    pub materialize_production: bool,
    /// Whether the filter set is a lossy Bloom filter.
    pub lossy: bool,
}

impl FilterJoinCost {
    /// Total cost — the sum of the seven components.
    pub fn total(&self) -> f64 {
        self.join_cost_p
            + self.production_cost_p
            + self.proj_cost_f
            + self.avail_cost_f
            + self.filter_cost_rk
            + self.avail_cost_rk
            + self.final_join_cost
    }

    /// The component values in Table 1 order, with their paper names.
    pub fn components(&self) -> [(&'static str, f64); 7] {
        [
            ("JoinCost_P", self.join_cost_p),
            ("ProductionCost_P", self.production_cost_p),
            ("ProjCost_F", self.proj_cost_f),
            ("AvailCost_F", self.avail_cost_f),
            ("FilterCost_Rk", self.filter_cost_rk),
            ("AvailCost_Rk'", self.avail_cost_rk),
            ("FinalJoinCost", self.final_join_cost),
        ]
    }
}

impl fmt::Display for FilterJoinCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.components() {
            writeln!(f, "{name:>18}: {v:>12.2}")?;
        }
        writeln!(f, "{:>18}: {:>12.2}", "TOTAL", self.total())
    }
}

/// A production set that is a *strict prefix* of the outer — Limitation
/// 1 without Limitation 2 (§3.3). The paper notes that searching these
/// "would increase the complexity of optimization by a factor of O(N)";
/// the `allow_prefix_production` knob enables them for the ablation.
pub struct PrefixProduction<'a> {
    /// The prefix plan's output statistics.
    pub stats: &'a EstStats,
    /// Cost of producing the prefix.
    pub cost: f64,
    /// Prefix length (relations), for SIPS reporting.
    pub len: usize,
    /// Filter keys: (production column, inner column).
    pub filter_keys: &'a [(String, String)],
    /// True when the "prefix" is in fact the whole outer — used by the
    /// attribute-subset variants of Limitation 3, where the production
    /// set is the outer but the filter projects only *some* of the join
    /// attributes (a lossy filter "by omitting one of the join
    /// attributes", §3.2).
    pub production_is_outer: bool,
}

/// Everything the enumerator passes to cost one Filter Join candidate.
pub struct FilterJoinArgs<'a> {
    /// The catalog.
    pub catalog: &'a Catalog,
    /// Cost parameters.
    pub params: CostParams,
    /// The parametric memo (shared across the optimization).
    pub memo: &'a mut ParametricEstimator,
    /// Cost of producing the outer (production set).
    pub outer_cost: f64,
    /// Outer output statistics.
    pub outer: &'a EstStats,
    /// Join keys: (qualified outer column, qualified inner column).
    pub keys: &'a [(String, String)],
    /// Alias of the inner relation in the query.
    pub inner_alias: &'a str,
    /// Catalog name of the inner relation.
    pub inner_relation: &'a str,
    /// Use a Bloom filter instead of an exact filter set (base/remote
    /// table inners only).
    pub use_bloom: bool,
    /// Produce the filter set from a strict prefix of the outer instead
    /// of the whole outer (`None` = Limitation 2 applies).
    pub prefix_production: Option<PrefixProduction<'a>>,
}

/// The costed decision, carrying what the plan builder needs.
#[derive(Debug, Clone)]
pub struct FilterJoinDecision {
    /// The Table 1 breakdown.
    pub cost: FilterJoinCost,
    /// Estimated statistics of the restricted inner (qualified under the
    /// inner alias).
    pub restricted: EstStats,
    /// Estimated statistics of the join output.
    pub output: EstStats,
    /// Final-join keys (outer qualified, inner qualified).
    pub keys: Vec<(String, String)>,
    /// Filter-set keys (production-side column, inner column); equal to
    /// `keys` under Limitation 2, taken from the prefix otherwise.
    pub filter_keys: Vec<(String, String)>,
    /// `Some(k)` when the production set is the length-`k` prefix of
    /// the outer rather than the whole outer.
    pub production_prefix_len: Option<usize>,
    /// Inner alias.
    pub inner_alias: String,
    /// Inner catalog name.
    pub inner_relation: String,
    /// Inner site (LOCAL unless the inner is a remote table).
    pub inner_site: SiteId,
    /// Bloom bits (when lossy).
    pub bloom_bits: u64,
    /// Bloom hash count (when lossy).
    pub bloom_hashes: u32,
}

/// Wire width of one filter-set tuple with `n` keys.
fn filter_wire_width(n: usize) -> f64 {
    4.0 + 12.0 * n as f64
}

/// Costs a Filter Join candidate. Returns `None` when the method is not
/// applicable (no keys; Bloom requested for a view; UDF without a
/// probeable key).
pub fn cost_filter_join(args: FilterJoinArgs<'_>) -> Result<Option<FilterJoinDecision>, OptError> {
    if args.keys.is_empty() {
        return Ok(None);
    }
    let params = args.params;
    let kind = args.catalog.resolve(args.inner_relation)?;
    let inner_site = kind.site();
    let remote = inner_site != SiteId::LOCAL;
    if args.use_bloom && matches!(kind, RelationKind::View(_) | RelationKind::Udf(_)) {
        // Lossy filters cannot be pushed through view definitions or
        // drive UDF invocation (a Bloom filter cannot be enumerated).
        return Ok(None);
    }

    let p_rows = args.outer.rows;
    let p_pages = args.outer.pages(&params);

    // The filter set's *source*: the whole outer (Limitation 2) or a
    // strict prefix of it (the ablation).
    let (src_stats, src_cost, filter_keys) = match &args.prefix_production {
        Some(pp) => (pp.stats, pp.cost, pp.filter_keys),
        None => (args.outer, args.outer_cost, args.keys),
    };
    if filter_keys.is_empty() {
        return Ok(None);
    }
    let src_rows = src_stats.rows;
    let src_pages = src_stats.pages(&params);

    // ---- ProductionCost_P: materialize vs recompute. When the
    // production is the outer itself it is read twice (filter
    // projection + final join); a strict prefix only feeds the
    // projection.
    let production_is_outer = args
        .prefix_production
        .as_ref()
        .map(|p| p.production_is_outer)
        .unwrap_or(true);
    let reads = if production_is_outer { 2.0 } else { 1.0 };
    let mat_cost = params.materialize_cost(src_pages) + reads * src_pages;
    let recompute_cost = src_cost;
    let (production_cost_p, materialize_production) = if mat_cost <= recompute_cost {
        (mat_cost, true)
    } else {
        (recompute_cost, false)
    };

    // ---- ProjCost_F: distinct projection of the production key columns.
    let key_domain: f64 = filter_keys
        .iter()
        .map(|(o, _)| src_stats.distinct(o))
        .product::<f64>()
        .max(1.0);
    let f_rows = yao_distinct(src_rows.round() as u64, key_domain.round() as u64);
    let f_width = 8 + 9 * filter_keys.len();
    let f_pages = params.pages(f_rows, f_width);
    let proj_cost_f = params.cpu(src_rows) + params.external_sort_io(f_pages);
    let (avail_cost_f, bloom_bits, bloom_hashes) = if args.use_bloom {
        // Fixed-size bit vector; sized (analytically — no allocation
        // during costing) for ~2% false positives.
        let (bits, hashes) = fj_storage::BloomFilter::sizing(f_rows.round() as u64 + 1, 0.02);
        let bytes = bits / 8;
        let ship = if remote {
            params.network.per_message + params.network.per_byte * bytes as f64
        } else {
            0.0
        };
        // Building scans F in the pipeline (cpu); the filter itself
        // occupies negligible local pages.
        (params.cpu(f_rows) + ship, bits, hashes)
    } else {
        let ship = if remote {
            params.ship_cost(f_rows, filter_wire_width(filter_keys.len()))
        } else {
            0.0
        };
        (params.materialize_cost(f_pages) + f_pages + ship, 0, 0)
    };

    // Inner-side attribute names (unqualified), from the filter keys.
    let inner_attrs: Vec<String> = filter_keys
        .iter()
        .map(|(_, i)| {
            i.strip_prefix(&format!("{}.", args.inner_alias))
                .unwrap_or(i)
                .to_string()
        })
        .collect();

    // ---- FilterCost_Rk and the restricted inner stats.
    let (filter_cost_rk, mut restricted, rk_wire_width) = match &kind {
        RelationKind::View(_) => {
            let fit = args
                .memo
                .fit(args.catalog, params, args.inner_relation, &inner_attrs)?;
            let s = fit.selectivity_of(f_rows);
            let cost = fit.cost(s);
            let rows = fit.cardinality(s);
            let mut stats = fit.unrestricted.clone();
            stats.rows = rows;
            // The filtered key keeps at most f distinct values.
            for a in &inner_attrs {
                if let Some(ce) = stats.cols.get_mut(a) {
                    ce.distinct = ce.distinct.min(f_rows.max(1.0));
                }
            }
            let width = stats.width as f64;
            (cost, stats, width + 4.0)
        }
        RelationKind::Base(t) | RelationKind::Remote(t, _) => {
            let stats = base_table_stats(t);
            let d: f64 = inner_attrs
                .iter()
                .map(|a| stats.distinct(a))
                .product::<f64>()
                .max(1.0);
            let mut frac = (f_rows / d).min(1.0);
            if args.use_bloom {
                // False positives let extra tuples through.
                let fp = 0.02;
                frac = (frac + fp * (1.0 - frac)).min(1.0);
            }
            let scan_pages = stats.pages(&params);
            let cost = scan_pages + params.cpu(stats.rows + f_rows);
            let mut out = stats.clone();
            out.rows = (out.rows * frac).max(0.0);
            for a in &inner_attrs {
                if let Some(ce) = out.cols.get_mut(a) {
                    ce.distinct = ce.distinct.min(f_rows.max(1.0));
                }
            }
            let width = t.schema().row_width() as f64;
            (cost, out, width + 4.0)
        }
        RelationKind::Udf(u) => {
            // A filter set can drive invocation only when it covers
            // every argument column of the function.
            let schema = u.schema();
            let covered = (0..u.arg_count()).all(|i| {
                let arg = schema.column(i).base_name();
                inner_attrs.iter().any(|a| a == arg)
            });
            if !covered {
                return Ok(None);
            }
            let cost = f_rows * u.invocation_cost();
            let rows = f_rows * u.rows_per_call();
            let stats = EstStats {
                rows,
                width: schema.row_width() + 8 + 9 * filter_keys.len(),
                cols: schema
                    .columns()
                    .iter()
                    .map(|c| {
                        (
                            c.name.clone(),
                            ColEst {
                                distinct: rows.max(1.0),
                                ..ColEst::default()
                            },
                        )
                    })
                    .collect(),
            };
            (cost, stats, schema.row_width() as f64 + 4.0)
        }
    };
    restricted = requalify_stats(restricted, args.inner_alias);

    // ---- AvailCost_Rk': pipelined locally; shipped home when remote.
    let avail_cost_rk = if remote {
        params.ship_cost(restricted.rows, rk_wire_width)
    } else {
        0.0
    };

    // ---- FinalJoinCost: hash join of P (probe) with R'k (build).
    let estimator = PlanEstimator::new(args.catalog, params);
    let key_pred = args
        .keys
        .iter()
        .map(|(o, i)| col(o.clone()).eq(col(i.clone())))
        .reduce(|a, b| a.and(b));
    let output = estimator.join_stats(args.outer, &restricted, key_pred.as_ref(), JoinKind::Inner);
    let rk_pages = restricted.pages(&params);
    let final_join_cost =
        params.hash_join_cost(p_rows, p_pages, restricted.rows, rk_pages, output.rows);

    let cost = FilterJoinCost {
        join_cost_p: args.outer_cost,
        production_cost_p,
        proj_cost_f,
        avail_cost_f,
        filter_cost_rk,
        avail_cost_rk,
        final_join_cost,
        materialize_production,
        lossy: args.use_bloom,
    };

    Ok(Some(FilterJoinDecision {
        cost,
        restricted,
        output,
        keys: args.keys.to_vec(),
        filter_keys: filter_keys.to_vec(),
        production_prefix_len: args.prefix_production.as_ref().map(|p| p.len),
        inner_alias: args.inner_alias.to_string(),
        inner_relation: args.inner_relation.to_string(),
        inner_site,
        bloom_bits,
        bloom_hashes,
    }))
}

fn requalify_stats(mut stats: EstStats, alias: &str) -> EstStats {
    if alias.is_empty() {
        return stats;
    }
    stats.cols = stats
        .cols
        .into_iter()
        .map(|(k, v)| {
            let base = k.rsplit_once('.').map(|(_, b)| b).unwrap_or(&k);
            (format!("{alias}.{base}"), v)
        })
        .collect();
    stats
}

/// Builds the physical plan for a costed Filter Join.
///
/// Shape (exact filter, materialized production, local inner):
///
/// ```text
/// WithTemp
///   Materialize __partial<sfx>: <outer plan>
///   Materialize __filter<sfx>:  Distinct(Project(TempScan __partial))
///   Body: HashJoin(TempScan __partial, <restricted inner>)
/// ```
///
/// Remote inners wrap the filter producer and the restricted inner in
/// `Ship` nodes (the SDD-1 semi-join of §5.1); Bloom variants replace
/// the filter materialization with a `BuildBloom` step and the semi-join
/// with a `BloomProbe`.
pub fn build_filter_join_plan(
    catalog: &Catalog,
    outer_phys: &PhysPlan,
    decision: &FilterJoinDecision,
    suffix: &str,
) -> Result<PhysPlan, OptError> {
    build_filter_join_plan_with_production(catalog, outer_phys, None, decision, suffix)
}

/// Like [`build_filter_join_plan`], with an explicit production-set
/// plan when the decision used a prefix production (`None` keeps
/// Limitation 2: production = the outer itself).
pub fn build_filter_join_plan_with_production(
    catalog: &Catalog,
    outer_phys: &PhysPlan,
    production_phys: Option<&PhysPlan>,
    decision: &FilterJoinDecision,
    suffix: &str,
) -> Result<PhysPlan, OptError> {
    let partial_name = format!("__partial{suffix}");
    let filter_name = format!("__filter{suffix}");
    let remote = decision.inner_site != SiteId::LOCAL;
    let src_phys = production_phys.unwrap_or(outer_phys);

    let mut steps = Vec::new();
    let outer_for_body: PhysPlan;
    let filter_src: PhysPlan;
    if decision.cost.materialize_production {
        steps.push(TempStep::Materialize {
            name: partial_name.clone(),
            plan: src_phys.clone(),
        });
        // With a prefix production the final join still consumes the
        // *full* outer, pipelined; only the prefix is materialized.
        outer_for_body = if production_phys.is_some() {
            outer_phys.clone()
        } else {
            PhysPlan::TempScan {
                name: partial_name.clone(),
                alias: String::new(),
            }
        };
        filter_src = PhysPlan::TempScan {
            name: partial_name,
            alias: String::new(),
        };
    } else {
        outer_for_body = outer_phys.clone();
        filter_src = src_phys.clone();
    }

    // Distinct projection of the production key columns as k0, k1, ...
    let filter_plan = PhysPlan::Distinct {
        input: PhysPlan::Project {
            input: filter_src.boxed(),
            exprs: decision
                .filter_keys
                .iter()
                .enumerate()
                .map(|(i, (o, _))| (col(o.clone()), format!("k{i}")))
                .collect(),
        }
        .boxed(),
    };

    let inner_attrs: Vec<String> = decision
        .filter_keys
        .iter()
        .map(|(_, i)| {
            i.strip_prefix(&format!("{}.", decision.inner_alias))
                .unwrap_or(i)
                .to_string()
        })
        .collect();

    let restricted_phys: PhysPlan = if decision.cost.lossy {
        // Bloom build (with shipping charge when remote), then a probe
        // over the inner scan at the inner's site.
        steps.push(TempStep::BuildBloom {
            name: filter_name.clone(),
            plan: filter_plan,
            key_cols: (0..decision.filter_keys.len())
                .map(|i| format!("k{i}"))
                .collect(),
            bits: decision.bloom_bits.max(64),
            hashes: decision.bloom_hashes.max(2),
            ship: remote.then_some((SiteId::LOCAL, decision.inner_site)),
        });
        let probe = PhysPlan::BloomProbe {
            input: PhysPlan::SeqScan {
                table: decision.inner_relation.clone(),
                alias: decision.inner_alias.clone(),
            }
            .boxed(),
            bloom: filter_name,
            key_cols: decision.keys.iter().map(|(_, i)| i.clone()).collect(),
        };
        if remote {
            PhysPlan::Ship {
                input: probe.boxed(),
                from: decision.inner_site,
                to: SiteId::LOCAL,
            }
        } else {
            probe
        }
    } else {
        // Exact filter set: materialize (shipping it to the inner's site
        // when remote), then the restricted inner.
        let filter_step_plan = if remote {
            PhysPlan::Ship {
                input: filter_plan.boxed(),
                from: SiteId::LOCAL,
                to: decision.inner_site,
            }
        } else {
            filter_plan
        };
        steps.push(TempStep::Materialize {
            name: filter_name.clone(),
            plan: filter_step_plan,
        });

        let filter_schema = Schema::new(
            (0..decision.filter_keys.len())
                .map(|i| Column::new(format!("k{i}"), DataType::Int))
                .collect(),
        )?
        .into_ref();
        let mut phys = match catalog.resolve(&decision.inner_relation)? {
            RelationKind::View(_) => {
                let restricted_logical = magic::restricted_inner(
                    catalog,
                    &decision.inner_relation,
                    &inner_attrs,
                    &filter_name,
                    &filter_schema,
                )?;
                let lowered = lower::lower(&restricted_logical, catalog)?;
                // View bodies produce unqualified names; requalify under
                // the inner alias for the final join predicate.
                let view = catalog.view(&decision.inner_relation)?;
                PhysPlan::Project {
                    input: lowered.boxed(),
                    exprs: view
                        .schema
                        .columns()
                        .iter()
                        .map(|c| {
                            (
                                col(c.name.clone()),
                                format!("{}.{}", decision.inner_alias, c.base_name()),
                            )
                        })
                        .collect(),
                }
            }
            // UDF inners: the filter set drives *consecutive procedure
            // calls* (§5.2) — one invocation per distinct filter value.
            // The probe output (filter cols ++ UDF cols) is projected
            // down to the UDF columns so the final join schema matches.
            RelationKind::Udf(u) => {
                let schema = u.schema();
                let arg_cols: Vec<String> = (0..u.arg_count())
                    .map(|i| {
                        let arg = schema.column(i).base_name().to_string();
                        let ki = inner_attrs
                            .iter()
                            .position(|a| *a == arg)
                            .expect("costing checked coverage");
                        format!("__F.k{ki}")
                    })
                    .collect();
                let probe = PhysPlan::UdfProbe {
                    outer: PhysPlan::TempScan {
                        name: filter_name,
                        alias: "__F".into(),
                    }
                    .boxed(),
                    udf: decision.inner_relation.clone(),
                    alias: decision.inner_alias.clone(),
                    arg_cols,
                };
                PhysPlan::Project {
                    input: probe.boxed(),
                    exprs: schema
                        .columns()
                        .iter()
                        .map(|c| {
                            let q = format!("{}.{}", decision.inner_alias, c.base_name());
                            (col(q.clone()), q)
                        })
                        .collect(),
                }
            }
            // Base / remote inners: semi-join the scan directly. Built
            // by hand (not via `lower`) so a *remote* inner's scan is
            // not auto-shipped home — the semi-join runs at the inner's
            // site and only its result ships back (the SDD-1 semi-join
            // discipline).
            _ => PhysPlan::HashJoin {
                outer: PhysPlan::SeqScan {
                    table: decision.inner_relation.clone(),
                    alias: decision.inner_alias.clone(),
                }
                .boxed(),
                inner: PhysPlan::TempScan {
                    name: filter_name,
                    alias: "__F".into(),
                }
                .boxed(),
                keys: decision
                    .filter_keys
                    .iter()
                    .enumerate()
                    .map(|(i, (_, inner))| (inner.clone(), format!("__F.k{i}")))
                    .collect(),
                residual: None,
                kind: JoinKind::Semi,
            },
        };
        if remote {
            phys = PhysPlan::Ship {
                input: phys.boxed(),
                from: decision.inner_site,
                to: SiteId::LOCAL,
            };
        }
        phys
    };

    let body = PhysPlan::HashJoin {
        outer: outer_for_body.boxed(),
        inner: restricted_phys.boxed(),
        keys: decision.keys.clone(),
        residual: None,
        kind: JoinKind::Inner,
    };

    Ok(PhysPlan::WithTemp {
        steps,
        body: body.boxed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::fixtures::paper_catalog;
    use fj_algebra::LogicalPlan;
    use fj_exec::ExecCtx;
    use fj_expr::lit;
    use fj_storage::tuple;
    use std::sync::Arc;

    /// Outer = young employees joined with big departments (the paper's
    /// PartialResult), built as a physical plan.
    fn outer_phys() -> PhysPlan {
        PhysPlan::HashJoin {
            outer: PhysPlan::Filter {
                input: PhysPlan::SeqScan {
                    table: "Emp".into(),
                    alias: "E".into(),
                }
                .boxed(),
                predicate: col("E.age").lt(lit(30)),
            }
            .boxed(),
            inner: PhysPlan::Filter {
                input: PhysPlan::SeqScan {
                    table: "Dept".into(),
                    alias: "D".into(),
                }
                .boxed(),
                predicate: col("D.budget").gt(lit(100_000)),
            }
            .boxed(),
            keys: vec![("E.did".into(), "D.did".into())],
            residual: None,
            kind: JoinKind::Inner,
        }
    }

    fn outer_stats(catalog: &Catalog) -> (f64, EstStats) {
        let est = PlanEstimator::new(catalog, CostParams::default());
        let plan = LogicalPlan::scan("Emp", "E")
            .select(col("E.age").lt(lit(30)))
            .join(
                LogicalPlan::scan("Dept", "D").select(col("D.budget").gt(lit(100_000))),
                Some(col("E.did").eq(col("D.did"))),
            );
        est.cost(&plan).unwrap()
    }

    fn keys() -> Vec<(String, String)> {
        vec![("E.did".to_string(), "V.did".to_string())]
    }

    #[test]
    fn costs_are_positive_and_sum() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let (ocost, ostats) = outer_stats(&cat);
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys(),
            inner_alias: "V",
            inner_relation: "DepAvgSal",
            use_bloom: false,
            prefix_production: None,
        })
        .unwrap()
        .expect("applicable");
        let c = d.cost;
        assert!(c.total() > 0.0);
        let sum: f64 = c.components().iter().map(|(_, v)| v).sum();
        assert!((sum - c.total()).abs() < 1e-9);
        for (name, v) in c.components() {
            assert!(v >= 0.0, "{name} negative: {v}");
        }
    }

    #[test]
    fn no_keys_not_applicable() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let (ocost, ostats) = outer_stats(&cat);
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &[],
            inner_alias: "V",
            inner_relation: "DepAvgSal",
            use_bloom: false,
            prefix_production: None,
        })
        .unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn bloom_on_view_not_applicable() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let (ocost, ostats) = outer_stats(&cat);
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys(),
            inner_alias: "V",
            inner_relation: "DepAvgSal",
            use_bloom: true,
            prefix_production: None,
        })
        .unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn built_plan_executes_and_matches_semantics() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let (ocost, ostats) = outer_stats(&cat);
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys(),
            inner_alias: "V",
            inner_relation: "DepAvgSal",
            use_bloom: false,
            prefix_production: None,
        })
        .unwrap()
        .unwrap();
        let plan = build_filter_join_plan(&cat, &outer_phys(), &d, "_t").unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let rel = plan.execute(&ctx).unwrap();
        // Join output: (E ⨝ D filtered) ⨝ V — 3 young employees in big
        // depts (1, 4, 5) joined with their dept averages.
        assert_eq!(rel.rows.len(), 3);
        assert!(rel.schema.contains("V.avgsal"));
        // Apply the remaining conjunct E.sal > V.avgsal manually to reach
        // the final answer.
        let filtered =
            fj_exec::ops::filter::filter(&ctx, rel, &col("E.sal").gt(col("V.avgsal"))).unwrap();
        assert_eq!(filtered.rows.len(), 2);
    }

    #[test]
    fn filter_join_on_base_table_inner() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let est = PlanEstimator::new(&cat, CostParams::default());
        let eplan = LogicalPlan::scan("Emp", "E").select(col("E.age").lt(lit(30)));
        let (ocost, ostats) = est.cost(&eplan).unwrap();
        let keys = vec![("E.did".to_string(), "D.did".to_string())];
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys,
            inner_alias: "D",
            inner_relation: "Dept",
            use_bloom: false,
            prefix_production: None,
        })
        .unwrap()
        .unwrap();
        let outer = PhysPlan::Filter {
            input: PhysPlan::SeqScan {
                table: "Emp".into(),
                alias: "E".into(),
            }
            .boxed(),
            predicate: col("E.age").lt(lit(30)),
        };
        let plan = build_filter_join_plan(&cat, &outer, &d, "_b").unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let rel = plan.execute(&ctx).unwrap();
        // Young employees (1,3,4,5) each joined with their department.
        assert_eq!(rel.rows.len(), 4);
    }

    #[test]
    fn bloom_filter_join_on_base_table() {
        let cat = paper_catalog();
        let mut memo = ParametricEstimator::new(4);
        let est = PlanEstimator::new(&cat, CostParams::default());
        let eplan = LogicalPlan::scan("Emp", "E").select(col("E.age").lt(lit(30)));
        let (ocost, ostats) = est.cost(&eplan).unwrap();
        let keys = vec![("E.did".to_string(), "D.did".to_string())];
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys,
            inner_alias: "D",
            inner_relation: "Dept",
            use_bloom: true,
            prefix_production: None,
        })
        .unwrap()
        .unwrap();
        assert!(d.cost.lossy);
        let outer = PhysPlan::Filter {
            input: PhysPlan::SeqScan {
                table: "Emp".into(),
                alias: "E".into(),
            }
            .boxed(),
            predicate: col("E.age").lt(lit(30)),
        };
        let plan = build_filter_join_plan(&cat, &outer, &d, "_bl").unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let rel = plan.execute(&ctx).unwrap();
        // No false negatives: all 4 young-employee joins survive.
        assert!(rel.rows.len() >= 4);
        assert!(rel.rows.iter().any(|t| t.values().contains(&10.into())));
    }

    #[test]
    fn attribute_subset_filter_join_is_correct() {
        // Two join attributes; the filter projects only the first —
        // Limitation 3's lossy-by-omission variant. The final join
        // still enforces both keys, so the answer is exact.
        let mut cat = Catalog::new();
        cat.add_table(
            fj_storage::TableBuilder::new("L")
                .column("a", fj_storage::DataType::Int)
                .column("b", fj_storage::DataType::Int)
                .rows((0..50i64).map(|i| vec![(i % 5).into(), (i % 3).into()]))
                .build()
                .unwrap()
                .into_ref(),
        );
        cat.add_table(
            fj_storage::TableBuilder::new("R")
                .column("a", fj_storage::DataType::Int)
                .column("b", fj_storage::DataType::Int)
                .rows((0..60i64).map(|i| vec![(i % 10).into(), (i % 3).into()]))
                .build()
                .unwrap()
                .into_ref(),
        );
        let keys = vec![
            ("l.a".to_string(), "r.a".to_string()),
            ("l.b".to_string(), "r.b".to_string()),
        ];
        let subset = vec![("l.a".to_string(), "r.a".to_string())];
        let est = PlanEstimator::new(&cat, CostParams::default());
        let (ocost, ostats) = est.cost(&LogicalPlan::scan("L", "l")).unwrap();
        let mut memo = ParametricEstimator::new(4);
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params: CostParams::default(),
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys,
            inner_alias: "r",
            inner_relation: "R",
            use_bloom: false,
            prefix_production: Some(PrefixProduction {
                stats: &ostats,
                cost: ocost,
                len: 1,
                filter_keys: &subset,
                production_is_outer: true,
            }),
        })
        .unwrap()
        .unwrap();
        assert_eq!(d.filter_keys, subset);
        assert_eq!(d.keys, keys);
        let outer = PhysPlan::SeqScan {
            table: "L".into(),
            alias: "l".into(),
        };
        let plan = build_filter_join_plan(&cat, &outer, &d, "_ss").unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let rel = plan.execute(&ctx).unwrap();
        // Reference: count matches on (a, b).
        let lrows = cat.table("L").unwrap().rows().to_vec();
        let rrows = cat.table("R").unwrap().rows().to_vec();
        let expected: usize = lrows
            .iter()
            .map(|l| {
                rrows
                    .iter()
                    .filter(|r| l.value(0) == r.value(0) && l.value(1) == r.value(1))
                    .count()
            })
            .sum();
        assert_eq!(rel.rows.len(), expected);
    }

    #[test]
    fn remote_inner_ships_filter_and_result() {
        let mut cat = paper_catalog();
        let dept = cat.table("Dept").unwrap();
        cat.add_remote_table(dept, SiteId(3));
        cat.set_network(fj_algebra::NetworkModel::lan());
        let mut memo = ParametricEstimator::new(4);
        let params = CostParams {
            network: fj_algebra::NetworkModel::lan(),
            ..CostParams::default()
        };
        let est = PlanEstimator::new(&cat, params);
        let eplan = LogicalPlan::scan("Emp", "E");
        let (ocost, ostats) = est.cost(&eplan).unwrap();
        let keys = vec![("E.did".to_string(), "D.did".to_string())];
        let d = cost_filter_join(FilterJoinArgs {
            catalog: &cat,
            params,
            memo: &mut memo,
            outer_cost: ocost,
            outer: &ostats,
            keys: &keys,
            inner_alias: "D",
            inner_relation: "Dept",
            use_bloom: false,
            prefix_production: None,
        })
        .unwrap()
        .unwrap();
        assert!(d.cost.avail_cost_f > 0.0, "filter shipping costed");
        assert!(
            d.cost.avail_cost_rk > 0.0,
            "restricted inner shipping costed"
        );
        let outer = PhysPlan::SeqScan {
            table: "Emp".into(),
            alias: "E".into(),
        };
        let plan = build_filter_join_plan(&cat, &outer, &d, "_r").unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let rel = plan.execute(&ctx).unwrap();
        assert_eq!(rel.rows.len(), 5, "every employee matches a department");
        let s = ctx.ledger.snapshot();
        assert_eq!(s.messages, 2, "filter out + restricted back");
        assert!(s.bytes_shipped > 0);
        let _ = tuple![0]; // keep the macro import used
    }
}
