//! The System-R bottom-up dynamic-programming enumerator (§3.1),
//! extended with the Filter Join as a join method (§3.2–3.3).
//!
//! Two plan shapes are supported, selected by
//! [`OptimizerConfig::plan_shape`]:
//!
//! * [`PlanShape::LeftDeep`] (the default, and the shape of every
//!   pinned paper experiment) explores left-deep join orders: `best[S]`
//!   holds the cheapest plans joining the alias subset `S`, built by
//!   extending `best[S∖{j}]` with leaf `j` under every applicable join
//!   method — block nested loops, hash join, sort-merge, index nested
//!   loops, UDF probing, and the Filter Join (exact and Bloom variants;
//!   that is Limitation 3's "small constant number of filter sets").
//!   Because each join considers O(1) methods and Filter Join costing
//!   is O(1) after the parametric fits (Assumption 1), enabling the
//!   Filter Join multiplies the per-join work by a constant and leaves
//!   the `O(N·2^(N−1))` asymptotic complexity of optimization unchanged
//!   — the property the complexity benchmark measures.
//!
//! * [`PlanShape::Bushy`] enumerates the bushy space DPccp-style: for
//!   every subset `S` it splits `S` into connected
//!   subgraph–complement pairs (`s1`, `s2`) of the join graph (built
//!   from `conjunct_masks` plus the equality-class transitive closure)
//!   and joins `best[s1]` with `best[s2]` in both orientations. Splits
//!   whose inner side is a single leaf are *always* admitted, even
//!   without a connecting edge — that keeps the bushy space a strict
//!   superset of the left-deep space (which freely builds
//!   cross-product intermediates), so the best bushy plan is never
//!   costed worse than the best left-deep plan. Join methods that
//!   intrinsically need a base/UDF leaf on the inner (index nested
//!   loops, UDF probes, and the Filter Join, whose filter restricts a
//!   named inner relation) are offered exactly when the inner side is
//!   a singleton; the symmetric methods (BNL, hash, sort-merge) accept
//!   any subtree on either side. Interesting-orders pruning and SIPS
//!   extraction are shape-agnostic and shared between both modes.

use crate::cost::CostParams;
use crate::error::OptError;
use crate::estimate::{EstStats, PlanEstimator};
use crate::filter_join::{
    build_filter_join_plan, cost_filter_join, FilterJoinArgs, FilterJoinCost,
};
use crate::parametric::ParametricEstimator;
use fj_algebra::{Catalog, JoinKind, JoinQuery, LogicalPlan, RelationKind, Sips};
use fj_exec::{lower, PhysPlan};
use fj_expr::{columns_of, conjoin, split_conjuncts, EquiJoinKey, Expr};
use fj_storage::Index as _;
use std::collections::HashMap;
use std::sync::Arc;

/// Which join-tree shapes the enumerator explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanShape {
    /// Left-deep chains only (System-R; every pinned paper experiment
    /// and the `optimize_with_order` forced-order path use this shape).
    #[default]
    LeftDeep,
    /// The full bushy space: connected subgraph–complement pairs of
    /// the join graph plus every single-leaf extension, a strict
    /// superset of the left-deep space.
    Bushy,
}

/// Optimizer knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Consider the Filter Join method (the paper's contribution).
    pub enable_filter_join: bool,
    /// Consider the lossy (Bloom) filter variant for table inners.
    pub enable_bloom: bool,
    /// Consider index nested loops for indexed local tables.
    pub enable_index_nl: bool,
    /// Consider sort-merge joins.
    pub enable_merge_join: bool,
    /// Consider Filter Joins whose inner is a *local base table* (§5.3's
    /// local semi-join).
    pub filter_join_on_base: bool,
    /// Ablation of Limitation 2 (§3.3): also consider production sets
    /// that are strict *prefixes* of the outer (Limitation 1 alone).
    /// The paper predicts — and the complexity bench confirms — an
    /// extra O(N) factor in enumeration work.
    pub allow_prefix_production: bool,
    /// Join-tree shapes to enumerate. `LeftDeep` (the default) keeps
    /// every pinned result reproducible; `Bushy` explores the full
    /// DPccp-style space.
    pub plan_shape: PlanShape,
    /// Equivalence classes per parametric fit (Figure 5's knob).
    pub eq_classes: usize,
    /// Cost parameters.
    pub params: CostParams,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_filter_join: true,
            enable_bloom: true,
            enable_index_nl: true,
            enable_merge_join: true,
            filter_join_on_base: true,
            allow_prefix_production: false,
            plan_shape: PlanShape::LeftDeep,
            eq_classes: 4,
            params: CostParams::default(),
        }
    }
}

impl OptimizerConfig {
    /// A configuration with the Filter Join disabled — the "traditional
    /// optimizer" baseline.
    pub fn without_filter_join() -> OptimizerConfig {
        OptimizerConfig {
            enable_filter_join: false,
            enable_bloom: false,
            filter_join_on_base: false,
            ..OptimizerConfig::default()
        }
    }

    /// The default configuration with bushy enumeration enabled.
    pub fn bushy() -> OptimizerConfig {
        OptimizerConfig {
            plan_shape: PlanShape::Bushy,
            ..OptimizerConfig::default()
        }
    }

    /// This configuration with `shape` selected.
    pub fn with_shape(self, shape: PlanShape) -> OptimizerConfig {
        OptimizerConfig {
            plan_shape: shape,
            ..self
        }
    }
}

/// The optimizer's output.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen physical plan.
    pub phys: PhysPlan,
    /// Estimated total cost (page units).
    pub cost: f64,
    /// Estimated result cardinality.
    pub est_rows: f64,
    /// Chosen left-deep join order (aliases, outermost first).
    pub order: Vec<String>,
    /// SIPS of every Filter Join in the plan (empty = no magic).
    pub sips: Vec<Sips>,
    /// Table 1 breakdowns for each Filter Join used.
    pub filter_join_costs: Vec<FilterJoinCost>,
    /// Join alternatives costed during enumeration (the complexity
    /// metric of the C1 experiment).
    pub plans_considered: u64,
    /// Nested estimator invocations spent on parametric fits.
    pub nested_invocations: u64,
}

/// One dynamic-programming table entry.
#[derive(Debug, Clone)]
struct Entry {
    cost: f64,
    stats: EstStats,
    phys: PhysPlan,
    order: Vec<usize>,
    /// Output sort order (column names, major first); empty = none.
    /// This is the *interesting orders* property of §3.1: entries with
    /// a useful order are not pruned by cheaper unordered entries.
    order_by: Vec<String>,
    sips: Vec<Sips>,
    fj_costs: Vec<FilterJoinCost>,
}

/// `have` provides ordering `want` iff `want` is a prefix of `have`.
fn order_satisfies(have: &[String], want: &[String]) -> bool {
    want.len() <= have.len() && &have[..want.len()] == want
}

/// Max entries retained per subset (the System-R "interesting orders"
/// frontier, bounded to keep enumeration linear in practice).
const MAX_ENTRIES_PER_SUBSET: usize = 4;

/// Inserts `e` into a Pareto frontier over (cost, sort order): an entry
/// is dominated when another is no more expensive and provides at least
/// its ordering. This is the left-deep frontier, kept byte-identical to
/// the pinned paper experiments.
fn insert_pruned(entries: &mut Vec<Entry>, e: Entry) {
    insert_pruned_shaped(entries, e, false)
}

/// Frontier insertion for both shapes. Under `rows_aware` (the bushy
/// enumerator) dominance additionally requires the dominator's
/// estimated cardinality to be no larger: cardinality estimates are
/// path-dependent, and the bushy space produces many more association
/// orders for the same subset, so pruning on cost alone would let a
/// cheaper-but-fatter bushy entry evict the lean entry a left-deep
/// winner extends — making the "bushy never worse than left-deep"
/// superset guarantee false in practice. The rows-aware frontier keeps
/// both, at twice the entry cap.
fn insert_pruned_shaped(entries: &mut Vec<Entry>, e: Entry, rows_aware: bool) {
    let dominates = |k: &Entry, e: &Entry| {
        k.cost <= e.cost + 1e-12
            && (!rows_aware || k.stats.rows <= e.stats.rows + 1e-9)
            && order_satisfies(&k.order_by, &e.order_by)
    };
    if entries.iter().any(|k| dominates(k, &e)) {
        return;
    }
    entries.retain(|k| !dominates(&e, k));
    entries.push(e);
    let cap = if rows_aware {
        2 * MAX_ENTRIES_PER_SUBSET
    } else {
        MAX_ENTRIES_PER_SUBSET
    };
    if entries.len() > cap {
        // Never drop the cheapest (nor, rows-aware, the leanest); drop
        // the most expensive of the rest.
        let min_cost = entries.iter().map(|k| k.cost).fold(f64::INFINITY, f64::min);
        let min_rows = entries
            .iter()
            .map(|k| k.stats.rows)
            .fold(f64::INFINITY, f64::min);
        let evict = entries
            .iter()
            .enumerate()
            .filter(|(_, k)| k.cost > min_cost && (!rows_aware || k.stats.rows > min_rows))
            .max_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
            .or_else(|| {
                entries
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| k.cost > min_cost)
                    .max_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
            })
            .map(|(idx, _)| idx);
        if let Some(idx) = evict {
            entries.remove(idx);
        }
    }
}

/// The cost-based optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    catalog: Arc<Catalog>,
    /// The active configuration.
    pub config: OptimizerConfig,
}

impl Optimizer {
    /// An optimizer over `catalog` with `config`.
    pub fn new(catalog: Arc<Catalog>, config: OptimizerConfig) -> Optimizer {
        Optimizer { catalog, config }
    }

    /// Optimizes a join query into a physical plan.
    pub fn optimize(&self, query: &JoinQuery) -> Result<OptimizedPlan, OptError> {
        query.validate(&self.catalog)?;
        let n = query.from.len();
        // Left-deep extension is O(N·2^(N−1)); bushy split enumeration
        // is O(3^N), so its cap is tighter.
        let limit = match self.config.plan_shape {
            PlanShape::LeftDeep => 20,
            PlanShape::Bushy => 14,
        };
        if n > limit {
            return Err(OptError::NoPlan(format!(
                "{n} relations exceed the {:?} enumerator's subset limit of {limit}",
                self.config.plan_shape
            )));
        }
        let mut memo = ParametricEstimator::new(self.config.eq_classes);
        let mut plans_considered: u64 = 0;
        let estimator = PlanEstimator::new(&self.catalog, self.config.params);

        // Conjuncts with their referenced alias bitmasks, then the
        // per-alias access paths.
        let conjuncts = self.conjunct_masks(query);
        let classes = equality_classes(&conjuncts);
        let leaves = self.build_leaves(query, &estimator, &conjuncts)?;

        // ---- DP over subsets, keeping a small Pareto frontier of
        // entries per subset (cheapest + interesting sort orders).
        let mut best: HashMap<u64, Vec<Entry>> = HashMap::new();
        for (i, leaf) in leaves.iter().enumerate() {
            let mut seeds = vec![leaf.clone()];
            for alt in self.ordered_leaf_alternatives(query, &estimator, &conjuncts, i)? {
                insert_pruned(&mut seeds, alt);
            }
            best.insert(1u64 << i, seeds);
        }
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let adj = match self.config.plan_shape {
            PlanShape::Bushy => self.join_graph(query, &conjuncts, &classes),
            PlanShape::LeftDeep => Vec::new(),
        };
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let mut frontier: Vec<Entry> = Vec::new();
            match self.config.plan_shape {
                PlanShape::LeftDeep => {
                    for (j, leaf) in leaves.iter().enumerate() {
                        let bit = 1u64 << j;
                        if mask & bit == 0 {
                            continue;
                        }
                        let outer_mask = mask & !bit;
                        let Some(outers) = best.get(&outer_mask) else {
                            continue;
                        };
                        let leaf_alts = best
                            .get(&bit)
                            .cloned()
                            .unwrap_or_else(|| vec![leaf.clone()]);
                        // Conjuncts first fully bound at this join.
                        let applicable: Vec<Expr> = conjuncts
                            .iter()
                            .filter(|(_, m)| *m & !mask == 0 && *m & bit != 0 && *m != bit)
                            .map(|(c, _)| c.clone())
                            .collect();
                        for outer in outers {
                            if !outer.cost.is_finite() {
                                continue;
                            }
                            let prefixes = self.prefix_entries(&best, outer);
                            for leaf_alt in &leaf_alts {
                                let candidates = self.join_candidates(
                                    query,
                                    &estimator,
                                    &mut memo,
                                    &mut plans_considered,
                                    outer,
                                    leaf_alt,
                                    Some(j),
                                    mask,
                                    &applicable,
                                    &classes,
                                    &prefixes,
                                )?;
                                for c in candidates {
                                    insert_pruned(&mut frontier, c);
                                }
                            }
                        }
                    }
                }
                PlanShape::Bushy => {
                    // DPccp-style: split `mask` into subgraph–complement
                    // pairs, canonicalized on the side holding the
                    // lowest set bit so each unordered split is visited
                    // once; both orientations are then tried.
                    let low = mask & mask.wrapping_neg();
                    let mut s1 = (mask - 1) & mask;
                    while s1 != 0 {
                        if s1 & low == 0 {
                            s1 = (s1 - 1) & mask;
                            continue;
                        }
                        let s2 = mask & !s1;
                        let linked = masks_connected(&adj, s1, s2);
                        // Conjuncts first fully bound at this join:
                        // bound by `mask` and crossing the split.
                        let applicable: Vec<Expr> = conjuncts
                            .iter()
                            .filter(|(_, m)| *m & !mask == 0 && *m & s1 != 0 && *m & s2 != 0)
                            .map(|(c, _)| c.clone())
                            .collect();
                        for (om, im) in [(s1, s2), (s2, s1)] {
                            let inner_leaf =
                                (im.count_ones() == 1).then(|| im.trailing_zeros() as usize);
                            // Composite inners require a join-graph edge
                            // (a csg–cmp pair); single-leaf inners are
                            // always admitted, keeping the space a
                            // strict superset of left-deep (which
                            // freely forms cross-product intermediates).
                            if inner_leaf.is_none() && !linked {
                                continue;
                            }
                            let (Some(outers), Some(inners)) = (best.get(&om), best.get(&im))
                            else {
                                continue;
                            };
                            for outer in outers {
                                if !outer.cost.is_finite() {
                                    continue;
                                }
                                let prefixes = self.prefix_entries(&best, outer);
                                for inner in inners {
                                    let candidates = self.join_candidates(
                                        query,
                                        &estimator,
                                        &mut memo,
                                        &mut plans_considered,
                                        outer,
                                        inner,
                                        inner_leaf,
                                        mask,
                                        &applicable,
                                        &classes,
                                        &prefixes,
                                    )?;
                                    for c in candidates {
                                        insert_pruned(&mut frontier, c);
                                    }
                                }
                            }
                        }
                        s1 = (s1 - 1) & mask;
                    }
                }
            }
            if !frontier.is_empty() {
                best.insert(mask, frontier);
            }
        }

        // Pick the winner by *total* cost including the final
        // projection: cardinality estimates are path-dependent, so two
        // entries tied on entry cost can differ once the projection's
        // per-row CPU is added.
        let proj_cpu = |e: &Entry| e.cost + self.config.params.cpu(e.stats.rows);
        let final_entry = best
            .remove(&full)
            .unwrap_or_default()
            .into_iter()
            .min_by(|a, b| proj_cpu(a).total_cmp(&proj_cpu(b)))
            .ok_or_else(|| OptError::NoPlan("dynamic program found no plan".into()))?;
        if !final_entry.cost.is_finite() {
            return Err(OptError::NoPlan(
                "no finite-cost plan (non-enumerable UDF without probe keys?)".into(),
            ));
        }

        // ---- Final projection (explicit, or SELECT * in FROM order).
        let mut phys = final_entry.phys;
        let mut cost = final_entry.cost;
        let est_rows = final_entry.stats.rows;
        phys = PhysPlan::Project {
            input: phys.boxed(),
            exprs: self.final_projection(query)?,
        };
        cost += self.config.params.cpu(est_rows);

        Ok(OptimizedPlan {
            phys,
            cost,
            est_rows,
            order: final_entry
                .order
                .iter()
                .map(|&i| query.from[i].alias.clone())
                .collect(),
            sips: final_entry.sips,
            filter_join_costs: final_entry.fj_costs,
            plans_considered,
            nested_invocations: memo.nested_invocations,
        })
    }

    /// Optimizes a query under a *forced* join order (the aliases,
    /// outermost first) — still choosing the cheapest join method
    /// (including the Filter Join) at every position. This is how the
    /// Figure 3 experiment prices each of the six orders of the
    /// motivating query.
    ///
    /// A forced order always denotes a forced **left-deep** chain:
    /// `["A", "B", "C"]` means `(A ⋈ B) ⋈ C`, never `A ⋈ (B ⋈ C)`.
    /// The [`OptimizerConfig::plan_shape`] knob is deliberately ignored
    /// here — there is no order-list syntax for a bushy tree, and
    /// silently reinterpreting the list under `Bushy` would price a
    /// different plan than the caller asked for. An order that is not a
    /// permutation of the query's aliases (wrong length, unknown alias,
    /// or duplicate alias — the inputs a bushy caller might plausibly
    /// construct) is rejected with
    /// [`OptError::InvalidForcedOrder`] rather than planned wrongly:
    /// before this check, a duplicated alias would silently drop the
    /// relations it displaced from the chain.
    pub fn optimize_with_order(
        &self,
        query: &JoinQuery,
        order: &[String],
    ) -> Result<OptimizedPlan, OptError> {
        query.validate(&self.catalog)?;
        let n = query.from.len();
        if order.len() != n {
            return Err(OptError::InvalidForcedOrder(format!(
                "order lists {} aliases, query has {n}",
                order.len()
            )));
        }
        let perm: Vec<usize> = order
            .iter()
            .map(|a| {
                query
                    .from
                    .iter()
                    .position(|i| &i.alias == a)
                    .ok_or_else(|| {
                        OptError::InvalidForcedOrder(format!("unknown alias '{a}' in order"))
                    })
            })
            .collect::<Result<_, _>>()?;
        let seen = perm.iter().fold(0u64, |m, &i| m | (1u64 << i));
        if seen.count_ones() as usize != n {
            let dup = order
                .iter()
                .enumerate()
                .find(|(i, a)| order[..*i].contains(a))
                .map(|(_, a)| a.as_str())
                .unwrap_or("?");
            return Err(OptError::InvalidForcedOrder(format!(
                "alias '{dup}' appears more than once in order"
            )));
        }

        let mut memo = ParametricEstimator::new(self.config.eq_classes);
        let mut plans_considered: u64 = 0;
        let estimator = PlanEstimator::new(&self.catalog, self.config.params);
        let conjuncts = self.conjunct_masks(query);
        let classes = equality_classes(&conjuncts);
        let leaves = self.build_leaves(query, &estimator, &conjuncts)?;

        let mut frontier: Vec<Entry> = vec![leaves[perm[0]].clone()];
        let mut chain: Vec<Entry> = vec![leaves[perm[0]].clone()];
        let mut mask = 1u64 << perm[0];
        for &j in &perm[1..] {
            let bit = 1u64 << j;
            mask |= bit;
            let applicable: Vec<Expr> = conjuncts
                .iter()
                .filter(|(_, m)| *m & !mask == 0 && *m & bit != 0 && *m != bit)
                .map(|(c, _)| c.clone())
                .collect();
            let mut next: Vec<Entry> = Vec::new();
            for outer in &frontier {
                let prefixes: Vec<(usize, &Entry)> = if self.config.allow_prefix_production {
                    chain.iter().enumerate().map(|(i, e)| (i + 1, e)).collect()
                } else {
                    Vec::new()
                };
                let candidates = self.join_candidates(
                    query,
                    &estimator,
                    &mut memo,
                    &mut plans_considered,
                    outer,
                    &leaves[j],
                    Some(j),
                    mask,
                    &applicable,
                    &classes,
                    &prefixes,
                )?;
                for c in candidates {
                    insert_pruned(&mut next, c);
                }
            }
            if next.is_empty() {
                return Err(OptError::NoPlan("no join method applicable".into()));
            }
            frontier = next;
            let step_best = frontier
                .iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost))
                .expect("non-empty frontier")
                .clone();
            chain.push(step_best);
        }
        let proj_cpu = |e: &Entry| e.cost + self.config.params.cpu(e.stats.rows);
        let entry = frontier
            .into_iter()
            .min_by(|a, b| proj_cpu(a).total_cmp(&proj_cpu(b)))
            .expect("non-empty frontier");
        if !entry.cost.is_finite() {
            return Err(OptError::NoPlan("forced order has no finite plan".into()));
        }

        let mut phys = entry.phys;
        let mut cost = entry.cost;
        phys = PhysPlan::Project {
            input: phys.boxed(),
            exprs: self.final_projection(query)?,
        };
        cost += self.config.params.cpu(entry.stats.rows);
        Ok(OptimizedPlan {
            phys,
            cost,
            est_rows: entry.stats.rows,
            order: order.to_vec(),
            sips: entry.sips,
            filter_join_costs: entry.fj_costs,
            plans_considered,
            nested_invocations: memo.nested_invocations,
        })
    }

    /// The SELECT list to apply on top of the final join: the user's
    /// projection, or — `SELECT *` semantics — every column of every
    /// FROM item in declaration order (the chosen join order must not
    /// leak into the output schema).
    fn final_projection(&self, query: &JoinQuery) -> Result<Vec<(Expr, String)>, OptError> {
        if let Some(p) = &query.projection {
            return Ok(p.clone());
        }
        let mut out = Vec::new();
        for item in &query.from {
            let schema = query.alias_schema(&self.catalog, &item.alias)?;
            for c in schema.columns() {
                out.push((fj_expr::col(c.name.clone()), c.name.clone()));
            }
        }
        Ok(out)
    }
    /// The FROM position of the alias whose schema provides `col`.
    fn alias_of(&self, query: &JoinQuery, col: &str) -> Option<usize> {
        query.from.iter().position(|item| {
            query
                .alias_schema(&self.catalog, &item.alias)
                .is_ok_and(|s| s.contains(col))
        })
    }

    /// Conjuncts of the query predicate, each with the bitmask of
    /// aliases it references.
    fn conjunct_masks(&self, query: &JoinQuery) -> Vec<(Expr, u64)> {
        query
            .predicate
            .as_ref()
            .map(|p| {
                split_conjuncts(p)
                    .into_iter()
                    .map(|c| {
                        let mask = columns_of(&c)
                            .iter()
                            .filter_map(|col| self.alias_of(query, col))
                            .fold(0u64, |m, i| m | (1 << i));
                        (c, mask)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Per-alias neighbor bitmasks of the join graph. Alias `i` is
    /// adjacent to every alias it shares a multi-relation conjunct or an
    /// equality class with — the transitive closure is what lets the
    /// bushy enumerator treat `D ⋈ V` as connected under
    /// `E.did = D.did AND E.did = V.did` even though no conjunct names
    /// the pair directly (the same derivation Figure 3's order 3 uses).
    fn join_graph(
        &self,
        query: &JoinQuery,
        conjuncts: &[(Expr, u64)],
        classes: &[std::collections::BTreeSet<String>],
    ) -> Vec<u64> {
        let n = query.from.len();
        let mut adj = vec![0u64; n];
        fn connect(adj: &mut [u64], m: u64) {
            if m.count_ones() < 2 {
                return;
            }
            let mut bits = m;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                adj[i] |= m & !(1u64 << i);
                bits &= bits - 1;
            }
        }
        for (_, m) in conjuncts {
            connect(&mut adj, *m);
        }
        for class in classes {
            let m = class
                .iter()
                .filter_map(|c| self.alias_of(query, c))
                .fold(0u64, |acc, i| acc | (1u64 << i));
            connect(&mut adj, m);
        }
        adj
    }

    /// Prefix productions for the Limitation-2 ablation: the DP table
    /// holds the cheapest entry for every prefix of the outer's own
    /// left-to-right leaf order.
    fn prefix_entries<'a>(
        &self,
        best: &'a HashMap<u64, Vec<Entry>>,
        outer: &Entry,
    ) -> Vec<(usize, &'a Entry)> {
        if !self.config.allow_prefix_production {
            return Vec::new();
        }
        (1..outer.order.len())
            .filter_map(|k| {
                let m = outer.order[..k].iter().fold(0u64, |acc, &i| acc | (1 << i));
                best.get(&m)
                    .and_then(|v| v.iter().min_by(|a, b| a.cost.total_cmp(&b.cost)))
                    .map(|e| (k, e))
            })
            .collect()
    }

    /// Builds the per-alias leaf entries (access paths with local
    /// conjuncts applied).
    fn build_leaves(
        &self,
        query: &JoinQuery,
        estimator: &PlanEstimator<'_>,
        conjuncts: &[(Expr, u64)],
    ) -> Result<Vec<Entry>, OptError> {
        let mut leaves = Vec::with_capacity(query.from.len());
        for (i, item) in query.from.iter().enumerate() {
            let local: Vec<Expr> = conjuncts
                .iter()
                .filter(|(_, m)| *m == (1u64 << i))
                .map(|(c, _)| c.clone())
                .collect();
            let mut logical = LogicalPlan::scan(item.relation.clone(), item.alias.clone());
            if let Some(p) = conjoin(local.clone()) {
                logical = logical.select(p);
            }
            let kind = query.alias_kind(&self.catalog, &item.alias)?;
            let (cost, stats, phys) = match &kind {
                RelationKind::Udf(u) if u.domain().is_none() => {
                    let schema = u.schema().with_qualifier(&item.alias);
                    let stats = EstStats {
                        rows: 1000.0,
                        width: schema.row_width(),
                        cols: schema
                            .columns()
                            .iter()
                            .map(|c| {
                                (
                                    c.name.clone(),
                                    crate::estimate::ColEst {
                                        distinct: 1000.0,
                                        ..Default::default()
                                    },
                                )
                            })
                            .collect(),
                    };
                    let phys = PhysPlan::UdfFullScan {
                        udf: item.relation.clone(),
                        alias: item.alias.clone(),
                    };
                    (f64::INFINITY, stats, phys)
                }
                _ => {
                    let (cost, stats) = estimator.cost(&logical)?;
                    let phys = lower::lower(&logical, &self.catalog)?;
                    (cost, stats, phys)
                }
            };
            leaves.push(Entry {
                cost,
                stats,
                phys,
                order: vec![i],
                order_by: Vec::new(),
                sips: Vec::new(),
                fj_costs: Vec::new(),
            });
        }
        Ok(leaves)
    }

    /// Alternative *ordered* access paths for a leaf: one per B-tree
    /// index on a local base table — the classic interesting-orders
    /// source (§3.1). The ordered scan costs the index's leaf pages on
    /// top of the heap scan, in exchange for a sort order later merge
    /// joins can exploit.
    fn ordered_leaf_alternatives(
        &self,
        query: &JoinQuery,
        estimator: &PlanEstimator<'_>,
        conjuncts: &[(Expr, u64)],
        i: usize,
    ) -> Result<Vec<Entry>, OptError> {
        let item = &query.from[i];
        let Ok(RelationKind::Base(t)) = query.alias_kind(&self.catalog, &item.alias) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (ci, column) in t.schema().columns().iter().enumerate() {
            if t.btree_index(ci).is_none() {
                continue;
            }
            let local: Vec<Expr> = conjuncts
                .iter()
                .filter(|(_, m)| *m == (1u64 << i))
                .map(|(c, _)| c.clone())
                .collect();
            let mut logical = LogicalPlan::scan(item.relation.clone(), item.alias.clone());
            if let Some(p) = conjoin(local.clone()) {
                logical = logical.select(p.clone());
            }
            let (seq_cost, stats) = estimator.cost(&logical)?;
            let index_pages = t
                .btree_index(ci)
                .map(|b| b.page_count() as f64)
                .unwrap_or(0.0);
            let mut phys = PhysPlan::IndexOrderedScan {
                table: item.relation.clone(),
                alias: item.alias.clone(),
                col: column.base_name().to_string(),
            };
            if let Some(p) = conjoin(local) {
                phys = PhysPlan::Filter {
                    input: phys.boxed(),
                    predicate: p,
                };
            }
            out.push(Entry {
                cost: seq_cost + index_pages + self.config.params.cpu(t.row_count() as f64),
                stats: stats.clone(),
                phys,
                order: vec![i],
                order_by: vec![format!("{}.{}", item.alias, column.base_name())],
                sips: Vec::new(),
                fj_costs: Vec::new(),
            });
        }
        Ok(out)
    }

    /// All join-method candidates for joining `outer` with `inner`.
    /// `inner_leaf` is `Some(j)` when the inner side is the single FROM
    /// item `j` — the precondition for the methods that restrict a
    /// *named* relation (index nested loops, UDF probes, and the Filter
    /// Join). With a composite inner (a bushy subtree) only the
    /// symmetric methods — BNL, hash join, sort-merge — apply.
    #[allow(clippy::too_many_arguments)]
    fn join_candidates(
        &self,
        query: &JoinQuery,
        estimator: &PlanEstimator<'_>,
        memo: &mut ParametricEstimator,
        plans_considered: &mut u64,
        outer: &Entry,
        inner: &Entry,
        inner_leaf: Option<usize>,
        mask: u64,
        applicable: &[Expr],
        classes: &[std::collections::BTreeSet<String>],
        prefixes: &[(usize, &Entry)],
    ) -> Result<Vec<Entry>, OptError> {
        let params = self.config.params;
        let leaf = inner;
        let pred = conjoin(applicable.to_vec());
        let mut keys: Vec<(String, String)> = pred
            .as_ref()
            .map(|p| {
                fj_expr::equi_join_keys(p, &|c| outer.stats.cols.contains_key(c), &|c| {
                    leaf.stats.cols.contains_key(c)
                })
                .into_iter()
                .map(|k| (k.left, k.right))
                .collect()
            })
            .unwrap_or_default();
        // Transitive closure: when the predicate only links this pair of
        // inputs through a third relation (Figure 3's order 3), derive a
        // join key from the equality class. Enforcing it early is sound:
        // the full predicate implies it.
        let mut derived: Vec<Expr> = Vec::new();
        if keys.is_empty() {
            for class in classes {
                let o = class.iter().find(|c| outer.stats.cols.contains_key(*c));
                let i = class.iter().find(|c| leaf.stats.cols.contains_key(*c));
                if let (Some(o), Some(i)) = (o, i) {
                    derived.push(fj_expr::col(o.clone()).eq(fj_expr::col(i.clone())));
                    keys.push((o.clone(), i.clone()));
                }
            }
        }
        let residual = pred.as_ref().map(|p| {
            conjoin(
                split_conjuncts(p)
                    .into_iter()
                    .filter(|c| !is_key_conjunct(c, &keys)),
            )
        });
        let residual = residual.flatten();
        // Estimate with derived equalities included (they restrict the
        // output just like written ones).
        let pred_est = conjoin(applicable.iter().cloned().chain(derived.iter().cloned()));
        let out_stats = estimator.join_stats(
            &outer.stats,
            &leaf.stats,
            pred_est.as_ref(),
            JoinKind::Inner,
        );

        let op = outer.stats.pages(&params);
        let ip = leaf.stats.pages(&params);
        let mut out = Vec::new();
        // Every join implementation here iterates the outer side in
        // arrival order, so the outer's sort order is preserved unless
        // the candidate sets its own (merge join).
        let push = |cost_delta: f64,
                    phys: PhysPlan,
                    sips: Option<Sips>,
                    fj: Option<FilterJoinCost>,
                    stats: EstStats,
                    out: &mut Vec<Entry>,
                    base_cost: f64,
                    order_by: Vec<String>| {
            // The left-to-right leaf order of the combined tree; for a
            // leaf inner this appends exactly `j`, as the left-deep DP
            // always did.
            let mut order = outer.order.clone();
            order.extend_from_slice(&inner.order);
            let mut all_sips = outer.sips.clone();
            all_sips.extend(inner.sips.iter().cloned());
            let mut all_fj = outer.fj_costs.clone();
            all_fj.extend(inner.fj_costs.iter().cloned());
            if let Some(s) = sips {
                all_sips.push(s);
            }
            if let Some(f) = fj {
                all_fj.push(f);
            }
            out.push(Entry {
                cost: base_cost + cost_delta,
                stats,
                phys,
                order,
                order_by,
                sips: all_sips,
                fj_costs: all_fj,
            });
        };

        let both = outer.cost + leaf.cost;

        // 1. Block nested loops (always applicable when the leaf is
        // enumerable).
        if leaf.cost.is_finite() {
            *plans_considered += 1;
            push(
                params.bnl_cost(outer.stats.rows, op, leaf.stats.rows, ip),
                PhysPlan::NestedLoops {
                    outer: outer.phys.clone().boxed(),
                    inner: leaf.phys.clone().boxed(),
                    predicate: pred.clone(),
                    kind: JoinKind::Inner,
                },
                None,
                None,
                out_stats.clone(),
                &mut out,
                both,
                outer.order_by.clone(),
            );
        }

        if !keys.is_empty() && leaf.cost.is_finite() {
            // 2. Hash join.
            *plans_considered += 1;
            push(
                params.hash_join_cost(outer.stats.rows, op, leaf.stats.rows, ip, out_stats.rows),
                PhysPlan::HashJoin {
                    outer: outer.phys.clone().boxed(),
                    inner: leaf.phys.clone().boxed(),
                    keys: keys.clone(),
                    residual: residual.clone(),
                    kind: JoinKind::Inner,
                },
                None,
                None,
                out_stats.clone(),
                &mut out,
                both,
                outer.order_by.clone(),
            );
            // 3. Sort-merge join — an *interesting order* producer: the
            // output is sorted by the outer key columns, and an outer
            // that already provides that order skips its sort (§3.1).
            if self.config.enable_merge_join {
                *plans_considered += 1;
                let okey_cols: Vec<String> = keys.iter().map(|(o, _)| o.clone()).collect();
                let ikey_cols: Vec<String> = keys.iter().map(|(_, i)| i.clone()).collect();
                let outer_sorted = order_satisfies(&outer.order_by, &okey_cols);
                let inner_sorted = order_satisfies(&leaf.order_by, &ikey_cols);
                push(
                    params.merge_join_cost_with_orders(
                        outer.stats.rows,
                        op,
                        leaf.stats.rows,
                        ip,
                        out_stats.rows,
                        outer_sorted,
                        inner_sorted,
                    ),
                    PhysPlan::MergeJoin {
                        outer: outer.phys.clone().boxed(),
                        inner: leaf.phys.clone().boxed(),
                        keys: keys.clone(),
                        residual: residual.clone(),
                    },
                    None,
                    None,
                    out_stats.clone(),
                    &mut out,
                    both,
                    okey_cols,
                );
            }
        }

        // Methods 4–6 restrict a *named* inner relation (an index
        // probe, a UDF invocation, or a filter applied to the inner's
        // access path), so they require the inner side to be a single
        // FROM item; a composite (bushy) inner stops here.
        let Some(j) = inner_leaf else {
            return Ok(out);
        };
        let item = &query.from[j];
        let kind = query.alias_kind(&self.catalog, &item.alias)?;

        // 4. Index nested loops: local base table with an index on the
        // join column.
        if self.config.enable_index_nl && keys.len() == 1 {
            if let RelationKind::Base(t) = &kind {
                let inner_col = keys[0]
                    .1
                    .strip_prefix(&format!("{}.", item.alias))
                    .unwrap_or(&keys[0].1)
                    .to_string();
                if let Ok(ci) = t.schema().resolve(&inner_col) {
                    if t.has_index(ci) {
                        *plans_considered += 1;
                        let probe_pages = if t.hash_index(ci).is_some() {
                            1.0
                        } else {
                            t.btree_index(ci).map(|b| b.height() as f64).unwrap_or(1.0)
                        };
                        let base_rows = t.row_count() as f64;
                        let d = t
                            .stats()
                            .column(ci)
                            .map(|s| s.distinct as f64)
                            .unwrap_or(1.0)
                            .max(1.0);
                        // Local leaf conjuncts become residuals (the
                        // probe sees unfiltered heap rows).
                        let local: Vec<Expr> =
                            query.conjuncts_within(&self.catalog, &[item.alias.as_str()]);
                        let full_residual = conjoin(local.into_iter().chain(residual.clone()));
                        push(
                            params.inl_cost(outer.stats.rows, probe_pages, base_rows / d)
                                - leaf.cost, // leaf scan not performed
                            PhysPlan::IndexNestedLoops {
                                outer: outer.phys.clone().boxed(),
                                table: item.relation.clone(),
                                alias: item.alias.clone(),
                                outer_key: keys[0].0.clone(),
                                inner_col,
                                residual: full_residual,
                            },
                            None,
                            None,
                            out_stats.clone(),
                            &mut out,
                            both,
                            outer.order_by.clone(),
                        );
                    }
                }
            }
        }

        // 5. UDF probe: keys cover the UDF's argument columns.
        if let RelationKind::Udf(u) = &kind {
            let schema = u.schema();
            let arg_names: Vec<String> = (0..u.arg_count())
                .map(|i| format!("{}.{}", item.alias, schema.column(i).base_name()))
                .collect();
            let covered: Vec<Option<String>> = arg_names
                .iter()
                .map(|a| {
                    keys.iter()
                        .find(|(_, ik)| ik == a)
                        .map(|(ok, _)| ok.clone())
                })
                .collect();
            if covered.iter().all(Option::is_some) {
                *plans_considered += 1;
                let arg_cols: Vec<String> = covered.into_iter().map(Option::unwrap).collect();
                let cost_delta = outer.stats.rows * u.invocation_cost();
                let mut stats = out_stats.clone();
                stats.rows = outer.stats.rows * u.rows_per_call();
                push(
                    cost_delta,
                    PhysPlan::UdfProbe {
                        outer: outer.phys.clone().boxed(),
                        udf: item.relation.clone(),
                        alias: item.alias.clone(),
                        arg_cols,
                    },
                    None,
                    None,
                    stats,
                    &mut out,
                    outer.cost, // leaf never enumerated
                    outer.order_by.clone(),
                );
            }
        }

        // 6. The Filter Join (exact, and Bloom for table inners).
        let fj_applicable = self.config.enable_filter_join
            && !keys.is_empty()
            && (kind.is_virtual() || self.config.filter_join_on_base);
        if fj_applicable {
            let variants: &[bool] = if self.config.enable_bloom {
                &[false, true]
            } else {
                &[false]
            };
            for &use_bloom in variants {
                *plans_considered += 1;
                let decision = cost_filter_join(FilterJoinArgs {
                    catalog: &self.catalog,
                    params,
                    memo,
                    outer_cost: outer.cost,
                    outer: &outer.stats,
                    keys: &keys,
                    inner_alias: &item.alias,
                    inner_relation: &item.relation,
                    use_bloom,
                    prefix_production: None,
                })?;
                let Some(d) = decision else { continue };
                let suffix = format!("_{mask:x}_{j}{}", if use_bloom { "b" } else { "" });
                let mut phys = build_filter_join_plan(&self.catalog, &outer.phys, &d, &suffix)?;
                // Residual + the inner's local conjuncts apply on top.
                let local: Vec<Expr> =
                    query.conjuncts_within(&self.catalog, &[item.alias.as_str()]);
                let extra = conjoin(local.iter().cloned().chain(residual.clone()));
                let mut stats = d.output.clone();
                let mut cost_delta = d.cost.total() - outer.cost; // JoinCost_P already in base
                if let Some(p) = extra {
                    let sel = estimator.selectivity(&p, &stats);
                    cost_delta += params.cpu(stats.rows);
                    stats.rows *= sel;
                    phys = PhysPlan::Filter {
                        input: phys.boxed(),
                        predicate: p,
                    };
                }
                let sips = Sips {
                    production: outer
                        .order
                        .iter()
                        .map(|&i| query.from[i].alias.clone())
                        .collect(),
                    inner: item.alias.clone(),
                    filter_keys: keys
                        .iter()
                        .map(|(l, r)| EquiJoinKey {
                            left: l.clone(),
                            right: r.clone(),
                        })
                        .collect(),
                };
                push(
                    cost_delta,
                    phys,
                    Some(sips),
                    Some(d.cost),
                    stats,
                    &mut out,
                    outer.cost, // leaf's own access cost replaced by FilterCost_Rk
                    outer.order_by.clone(),
                );
            }

            // 6a. Attribute-subset filter sets (Limitation 3): with
            // multiple join attributes, "the filter set could contain
            // any subset of them" — a lossy filter by attribute
            // omission. We try each single attribute (a small constant
            // number of variants, as the limitation requires).
            if keys.len() > 1 {
                for drop_idx in 0..keys.len() {
                    let subset: Vec<(String, String)> = keys
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop_idx)
                        .map(|(_, k)| k.clone())
                        .collect();
                    *plans_considered += 1;
                    let decision = cost_filter_join(FilterJoinArgs {
                        catalog: &self.catalog,
                        params,
                        memo,
                        outer_cost: outer.cost,
                        outer: &outer.stats,
                        keys: &keys,
                        inner_alias: &item.alias,
                        inner_relation: &item.relation,
                        use_bloom: false,
                        prefix_production: Some(crate::filter_join::PrefixProduction {
                            stats: &outer.stats,
                            cost: outer.cost,
                            len: outer.order.len(),
                            filter_keys: &subset,
                            production_is_outer: true,
                        }),
                    })?;
                    let Some(d) = decision else { continue };
                    let suffix = format!("_{mask:x}_{j}s{drop_idx}");
                    let mut phys = build_filter_join_plan(&self.catalog, &outer.phys, &d, &suffix)?;
                    let local: Vec<Expr> =
                        query.conjuncts_within(&self.catalog, &[item.alias.as_str()]);
                    let extra = conjoin(local.iter().cloned().chain(residual.clone()));
                    let mut stats = d.output.clone();
                    let mut cost_delta = d.cost.total() - outer.cost;
                    if let Some(p) = extra {
                        let sel = estimator.selectivity(&p, &stats);
                        cost_delta += params.cpu(stats.rows);
                        stats.rows *= sel;
                        phys = PhysPlan::Filter {
                            input: phys.boxed(),
                            predicate: p,
                        };
                    }
                    let sips = Sips {
                        production: outer
                            .order
                            .iter()
                            .map(|&i| query.from[i].alias.clone())
                            .collect(),
                        inner: item.alias.clone(),
                        filter_keys: subset
                            .iter()
                            .map(|(l, r)| EquiJoinKey {
                                left: l.clone(),
                                right: r.clone(),
                            })
                            .collect(),
                    };
                    push(
                        cost_delta,
                        phys,
                        Some(sips),
                        Some(d.cost),
                        stats,
                        &mut out,
                        outer.cost,
                        outer.order_by.clone(),
                    );
                }
            }

            // 6b. Prefix production sets (Limitation-2 ablation): the
            // filter set comes from a strict prefix of the outer; the
            // final join still consumes the full outer. One exact
            // variant per prefix — this is the O(N) factor §3.3 warns
            // about.
            for &(k, prefix) in prefixes {
                // Keys linking the *prefix* to the inner (direct or via
                // equality classes).
                let mut fkeys: Vec<(String, String)> = pred_est
                    .as_ref()
                    .map(|p| {
                        fj_expr::equi_join_keys(p, &|c| prefix.stats.cols.contains_key(c), &|c| {
                            leaf.stats.cols.contains_key(c)
                        })
                        .into_iter()
                        .map(|key| (key.left, key.right))
                        .collect()
                    })
                    .unwrap_or_default();
                if fkeys.is_empty() {
                    for class in classes {
                        let o = class.iter().find(|c| prefix.stats.cols.contains_key(*c));
                        let i = class.iter().find(|c| leaf.stats.cols.contains_key(*c));
                        if let (Some(o), Some(i)) = (o, i) {
                            fkeys.push((o.clone(), i.clone()));
                        }
                    }
                }
                if fkeys.is_empty() {
                    continue;
                }
                *plans_considered += 1;
                let decision = cost_filter_join(FilterJoinArgs {
                    catalog: &self.catalog,
                    params,
                    memo,
                    outer_cost: outer.cost,
                    outer: &outer.stats,
                    keys: &keys,
                    inner_alias: &item.alias,
                    inner_relation: &item.relation,
                    use_bloom: false,
                    prefix_production: Some(crate::filter_join::PrefixProduction {
                        stats: &prefix.stats,
                        cost: prefix.cost,
                        len: k,
                        filter_keys: &fkeys,
                        production_is_outer: false,
                    }),
                })?;
                let Some(d) = decision else { continue };
                let suffix = format!("_{mask:x}_{j}p{k}");
                let mut phys = crate::filter_join::build_filter_join_plan_with_production(
                    &self.catalog,
                    &outer.phys,
                    Some(&prefix.phys),
                    &d,
                    &suffix,
                )?;
                let local: Vec<Expr> =
                    query.conjuncts_within(&self.catalog, &[item.alias.as_str()]);
                let extra = conjoin(local.iter().cloned().chain(residual.clone()));
                let mut stats = d.output.clone();
                let mut cost_delta = d.cost.total() - outer.cost;
                if let Some(p) = extra {
                    let sel = estimator.selectivity(&p, &stats);
                    cost_delta += params.cpu(stats.rows);
                    stats.rows *= sel;
                    phys = PhysPlan::Filter {
                        input: phys.boxed(),
                        predicate: p,
                    };
                }
                let sips = Sips {
                    production: outer.order[..k]
                        .iter()
                        .map(|&i| query.from[i].alias.clone())
                        .collect(),
                    inner: item.alias.clone(),
                    filter_keys: fkeys
                        .iter()
                        .map(|(l, r)| EquiJoinKey {
                            left: l.clone(),
                            right: r.clone(),
                        })
                        .collect(),
                };
                push(
                    cost_delta,
                    phys,
                    Some(sips),
                    Some(d.cost),
                    stats,
                    &mut out,
                    outer.cost,
                    outer.order_by.clone(),
                );
            }
        }

        Ok(out)
    }
}

/// Computes the transitive closure of column equalities in the query
/// predicate as equivalence classes. `E.did = D.did AND E.did = V.did`
/// puts all three columns in one class, which is how join order 3 of
/// Figure 3 can pass a `D`-derived filter set into `V` even though the
/// predicate never writes `D.did = V.did` explicitly.
pub fn equality_classes(conjuncts: &[(Expr, u64)]) -> Vec<std::collections::BTreeSet<String>> {
    use std::collections::BTreeSet;
    let mut classes: Vec<BTreeSet<String>> = Vec::new();
    for (c, _) in conjuncts {
        let Expr::Binary {
            op: fj_expr::BinOp::Eq,
            left,
            right,
        } = c
        else {
            continue;
        };
        let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
            continue;
        };
        let ia = classes.iter().position(|s| s.contains(a));
        let ib = classes.iter().position(|s| s.contains(b));
        match (ia, ib) {
            (Some(x), Some(y)) => {
                if x != y {
                    let merged = classes.remove(y.max(x));
                    classes[y.min(x)].extend(merged);
                }
            }
            (Some(x), None) => {
                classes[x].insert(b.clone());
            }
            (None, Some(y)) => {
                classes[y].insert(a.clone());
            }
            (None, None) => {
                classes.push(BTreeSet::from([a.clone(), b.clone()]));
            }
        }
    }
    classes
}

/// True when some join-graph edge crosses from `s1` into `s2` — the
/// connectedness test that admits a csg–cmp split.
fn masks_connected(adj: &[u64], s1: u64, s2: u64) -> bool {
    let mut bits = s1;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        if adj.get(i).copied().unwrap_or(0) & s2 != 0 {
            return true;
        }
        bits &= bits - 1;
    }
    false
}

fn is_key_conjunct(c: &Expr, keys: &[(String, String)]) -> bool {
    if let Expr::Binary {
        op: fj_expr::BinOp::Eq,
        left,
        right,
    } = c
    {
        if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
            return keys
                .iter()
                .any(|(l, r)| (l == a && r == b) || (l == b && r == a));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_exec::ExecCtx;
    use fj_storage::tuple;

    fn run(phys: &PhysPlan, catalog: &Catalog) -> Vec<fj_storage::Tuple> {
        let ctx = ExecCtx::new(Arc::new(catalog.clone()));
        let mut rows = phys.execute(&ctx).unwrap().rows;
        rows.sort();
        rows
    }

    #[test]
    fn optimizes_paper_query_correctly() {
        let cat = Arc::new(paper_catalog());
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        let plan = opt.optimize(&paper_query()).unwrap();
        assert!(plan.cost.is_finite());
        assert_eq!(plan.order.len(), 3);
        let rows = run(&plan.phys, &cat);
        assert_eq!(
            rows,
            vec![tuple![10, 9000.0, 5000.0], tuple![30, 4000.0, 3000.0]]
        );
    }

    #[test]
    fn filter_join_disabled_also_correct() {
        let cat = Arc::new(paper_catalog());
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::without_filter_join());
        let plan = opt.optimize(&paper_query()).unwrap();
        assert!(plan.sips.is_empty(), "no SIPS without filter joins");
        let rows = run(&plan.phys, &cat);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn both_configs_agree_on_answers() {
        let cat = Arc::new(paper_catalog());
        let with = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let without = Optimizer::new(Arc::clone(&cat), OptimizerConfig::without_filter_join())
            .optimize(&paper_query())
            .unwrap();
        assert_eq!(run(&with.phys, &cat), run(&without.phys, &cat));
        // Cost-based: the chosen plan with FJ enabled is never estimated
        // worse than without (superset of methods).
        assert!(with.cost <= without.cost + 1e-9);
    }

    #[test]
    fn enumeration_counts_grow_with_methods() {
        let cat = Arc::new(paper_catalog());
        let with = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let without = Optimizer::new(Arc::clone(&cat), OptimizerConfig::without_filter_join())
            .optimize(&paper_query())
            .unwrap();
        assert!(with.plans_considered > without.plans_considered);
        // Constant-factor, not asymptotic, growth: within ~4×.
        assert!(with.plans_considered <= 4 * without.plans_considered);
    }

    #[test]
    fn two_way_join_simple() {
        let cat = Arc::new(paper_catalog());
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("Emp", "E"),
            fj_algebra::FromItem::new("Dept", "D"),
        ])
        .with_predicate(fj_expr::col("E.did").eq(fj_expr::col("D.did")));
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        let plan = opt.optimize(&q).unwrap();
        let rows = run(&plan.phys, &cat);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn single_relation_query() {
        let cat = Arc::new(paper_catalog());
        let q = JoinQuery::new(vec![fj_algebra::FromItem::new("Emp", "E")])
            .with_predicate(fj_expr::col("E.age").lt(fj_expr::lit(30)));
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        let plan = opt.optimize(&q).unwrap();
        let rows = run(&plan.phys, &cat);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn cross_product_handled() {
        let cat = Arc::new(paper_catalog());
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("Emp", "E"),
            fj_algebra::FromItem::new("Dept", "D"),
        ]);
        let opt = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default());
        let plan = opt.optimize(&q).unwrap();
        let rows = run(&plan.phys, &cat);
        assert_eq!(rows.len(), 15);
    }

    #[test]
    fn too_many_relations_rejected() {
        let cat = Arc::new(paper_catalog());
        let from: Vec<fj_algebra::FromItem> = (0..21)
            .map(|i| fj_algebra::FromItem::new("Emp", format!("E{i}")))
            .collect();
        let q = JoinQuery::new(from);
        let opt = Optimizer::new(cat, OptimizerConfig::default());
        assert!(matches!(opt.optimize(&q), Err(OptError::NoPlan(_))));
    }

    #[test]
    fn prefix_production_ablation_correct_and_more_plans() {
        let cat = Arc::new(paper_catalog());
        let q = paper_query();
        let limited = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
            .optimize(&q)
            .unwrap();
        let cfg = OptimizerConfig {
            allow_prefix_production: true,
            ..OptimizerConfig::default()
        };
        let ablated = Optimizer::new(Arc::clone(&cat), cfg).optimize(&q).unwrap();
        // More candidates are costed (the O(N) factor of §3.3)...
        assert!(
            ablated.plans_considered > limited.plans_considered,
            "{} vs {}",
            ablated.plans_considered,
            limited.plans_considered
        );
        // ...the search space is a superset, so never a worse plan...
        assert!(ablated.cost <= limited.cost + 1e-9);
        // ...and answers are identical.
        assert_eq!(run(&ablated.phys, &cat), run(&limited.phys, &cat));
        // Any prefix-production SIPS is a proper prefix of the order.
        for s in &ablated.sips {
            let k = s.production.len();
            assert_eq!(&s.production[..], &ablated.order[..k]);
        }
    }

    #[test]
    fn forced_order_with_prefix_production_still_correct() {
        let cat = Arc::new(paper_catalog());
        let q = paper_query();
        let cfg = OptimizerConfig {
            allow_prefix_production: true,
            ..OptimizerConfig::default()
        };
        let opt = Optimizer::new(Arc::clone(&cat), cfg);
        let order = vec!["E".to_string(), "D".to_string(), "V".to_string()];
        let plan = opt.optimize_with_order(&q, &order).unwrap();
        let rows = run(&plan.phys, &cat);
        assert_eq!(
            rows,
            vec![tuple![10, 9000.0, 5000.0], tuple![30, 4000.0, 3000.0]]
        );
    }

    #[test]
    fn interesting_orders_let_merge_chains_skip_sorts() {
        // Three relations joined on the SAME key: once the first merge
        // join produces key order, the second merge join's outer side
        // is already sorted. The frontier must retain that entry even
        // when a hash join is cheaper at the two-way stage.
        let mut cat = Catalog::new();
        for name in ["A", "B", "C"] {
            cat.add_table(
                fj_storage::TableBuilder::new(name)
                    .column("k", fj_storage::DataType::Int)
                    .column("v", fj_storage::DataType::Int)
                    .rows((0..6000i64).map(|i| vec![((i * 37) % 6000).into(), i.into()]))
                    .build()
                    .unwrap()
                    .into_ref(),
            );
        }
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("A", "a"),
            fj_algebra::FromItem::new("B", "b"),
            fj_algebra::FromItem::new("C", "c"),
        ])
        .with_predicate(
            fj_expr::col("a.k")
                .eq(fj_expr::col("b.k"))
                .and(fj_expr::col("a.k").eq(fj_expr::col("c.k"))),
        );
        // Force sorts to matter: tiny memory makes spilling sorts and
        // grace hash joins expensive.
        let mut cfg = OptimizerConfig::default();
        cfg.params.memory_pages = 4;
        let cat = Arc::new(cat);
        let plan = Optimizer::new(Arc::clone(&cat), cfg).optimize(&q).unwrap();
        // Regardless of the methods chosen, answers must be exact.
        let ctx = fj_exec::ExecCtx::new(Arc::clone(&cat)).with_memory_pages(4);
        let rel = plan.phys.execute(&ctx).unwrap();
        assert_eq!(rel.rows.len(), 6000);
        // And the frontier machinery must never make plans worse than
        // the single-entry DP would have found: compare against a
        // hash-only configuration.
        let mut hash_only = cfg;
        hash_only.enable_merge_join = false;
        let hash_plan = Optimizer::new(cat, hash_only).optimize(&q).unwrap();
        assert!(plan.cost <= hash_plan.cost + 1e-6);
    }

    #[test]
    fn ordered_index_scan_access_path_when_it_pays() {
        // Two big tables with B-tree indexes on the join key and a tiny
        // buffer pool: a merge join over two *ordered index scans* skips
        // both sorts, while hash join pays Grace partitioning. The DP
        // must surface the ordered access path (§3.1).
        let mut cat = Catalog::new();
        for name in ["A", "B"] {
            let mut b = fj_storage::TableBuilder::new(name).column("k", fj_storage::DataType::Int);
            for c in 0..7 {
                b = b.column(format!("v{c}"), fj_storage::DataType::Int);
            }
            let mut t = b
                .rows((0..20_000i64).map(|i| {
                    let mut row = vec![fj_storage::Value::Int((i * 13) % 20_000)];
                    row.extend((0..7).map(|c| fj_storage::Value::Int(i + c)));
                    row
                }))
                .build()
                .unwrap();
            t.create_btree_index(0).unwrap();
            cat.add_table(t.into_ref());
        }
        let q = JoinQuery::new(vec![
            fj_algebra::FromItem::new("A", "a"),
            fj_algebra::FromItem::new("B", "b"),
        ])
        .with_predicate(fj_expr::col("a.k").eq(fj_expr::col("b.k")));
        let mut cfg = OptimizerConfig::default();
        cfg.params.memory_pages = 8;
        cfg.enable_index_nl = false; // isolate merge-vs-hash
        let cat = Arc::new(cat);
        let plan = Optimizer::new(Arc::clone(&cat), cfg).optimize(&q).unwrap();
        let d = plan.phys.display();
        assert!(
            d.contains("IndexOrderedScan") && d.contains("MergeJoin"),
            "expected ordered-scan merge join:\n{d}"
        );
        // And it executes correctly under the same memory budget.
        let ctx = fj_exec::ExecCtx::new(Arc::clone(&cat)).with_memory_pages(8);
        let rel = plan.phys.execute(&ctx).unwrap();
        assert_eq!(rel.rows.len(), 20_000);
    }

    #[test]
    fn order_satisfies_prefix_semantics() {
        let ab = vec!["a".to_string(), "b".to_string()];
        let a = vec!["a".to_string()];
        let b = vec!["b".to_string()];
        assert!(order_satisfies(&ab, &a), "sorted by (a,b) is sorted by a");
        assert!(!order_satisfies(&a, &ab));
        assert!(!order_satisfies(&ab, &b));
        assert!(order_satisfies(&a, &[]), "everything satisfies no order");
    }

    #[test]
    fn projection_applied() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(Arc::clone(&cat), OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let ctx = ExecCtx::new(Arc::clone(&cat));
        let rel = plan.phys.execute(&ctx).unwrap();
        assert_eq!(rel.schema.arity(), 3);
        assert_eq!(rel.schema.column(2).name, "avgsal");
    }
}
