//! Canonical fingerprints for plan caching.
//!
//! A fingerprint digests **everything plan choice depends on**:
//!
//! * the catalog [`epoch`](fj_algebra::Catalog::epoch) — bumped by every
//!   schema or network-model mutation, so cached plans go stale the
//!   moment their inputs do;
//! * the [`relation_version`](fj_algebra::Catalog::relation_version) of
//!   every relation the query's FROM clause names — a data mutation
//!   (INSERT/UPDATE/DELETE swaps the table via
//!   [`Catalog::replace_table`](fj_algebra::Catalog::replace_table))
//!   invalidates exactly the plans that read the mutated table; plans
//!   over other tables stay warm;
//! * the logical [`JoinQuery`] down to predicate and projection
//!   *constants* (expressions are folded in via their `Display`
//!   rendering, which prints literal values — `age > 30` and `age > 40`
//!   fingerprint differently);
//! * every [`OptimizerConfig`] knob, with `f64` cost parameters hashed
//!   bit-exactly via `to_bits`.
//!
//! The digest is FNV-1a over a length-prefixed field encoding, so it is
//! deterministic across processes and Rust releases (unlike
//! `DefaultHasher`, whose algorithm is unspecified) and free of
//! concatenation ambiguity between adjacent string fields.

use crate::enumerate::OptimizerConfig;
use fj_algebra::{Catalog, JoinQuery};

/// Incremental FNV-1a 64-bit digest with length-prefixed field writes.
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Digest {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Digest {
        Digest(0xcbf29ce484222325)
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` bit-exactly.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[v as u8])
    }

    /// Folds a string with a length prefix (so `"ab","c"` and
    /// `"a","bc"` digest differently).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// The canonical plan-cache key for optimizing `query` against
/// `catalog` under `config`: the catalog epoch, the data version of
/// every relation the query reads, the query shape down to its
/// constants, and every config knob.
pub fn fingerprint(catalog: &Catalog, query: &JoinQuery, config: &OptimizerConfig) -> u64 {
    let mut d = Digest::new();
    d.u64(catalog.epoch());

    d.u64(query.from.len() as u64);
    for item in &query.from {
        d.str(&item.relation).str(&item.alias);
        d.u64(catalog.relation_version(&item.relation));
    }
    match &query.predicate {
        None => d.bool(false),
        Some(p) => d.bool(true).str(&p.to_string()),
    };
    match &query.projection {
        None => d.bool(false),
        Some(cols) => {
            d.bool(true).u64(cols.len() as u64);
            for (expr, name) in cols {
                d.str(&expr.to_string()).str(name);
            }
            &mut d
        }
    };

    d.bool(config.enable_filter_join)
        .bool(config.enable_bloom)
        .bool(config.enable_index_nl)
        .bool(config.enable_merge_join)
        .bool(config.filter_join_on_base)
        .bool(config.allow_prefix_production)
        .bool(config.plan_shape == crate::enumerate::PlanShape::Bushy)
        .u64(config.eq_classes as u64)
        .f64(config.params.cpu_weight)
        .u64(config.params.memory_pages)
        .f64(config.params.network.per_message)
        .f64(config.params.network.per_byte);

    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::{FromItem, JoinQuery};
    use fj_expr::{col, lit};
    use fj_storage::{DataType, TableBuilder, Value};

    fn q(threshold: i64) -> JoinQuery {
        JoinQuery::new(vec![FromItem::new("emp", "E"), FromItem::new("dept", "D")]).with_predicate(
            col("E.did")
                .eq(col("D.did"))
                .and(col("E.sal").gt(lit(threshold))),
        )
    }

    fn table(name: &str) -> fj_storage::TableRef {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap()
            .into_ref()
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(table("emp"));
        cat.add_table(table("dept"));
        cat.add_table(table("proj"));
        cat
    }

    #[test]
    fn identical_inputs_agree() {
        let cfg = OptimizerConfig::default();
        let cat = catalog();
        assert_eq!(
            fingerprint(&cat, &q(30), &cfg),
            fingerprint(&cat, &q(30), &cfg)
        );
    }

    #[test]
    fn predicate_constant_changes_key() {
        let cfg = OptimizerConfig::default();
        let cat = catalog();
        assert_ne!(
            fingerprint(&cat, &q(30), &cfg),
            fingerprint(&cat, &q(40), &cfg)
        );
    }

    #[test]
    fn epoch_changes_key() {
        let cfg = OptimizerConfig::default();
        let mut cat = catalog();
        let before = fingerprint(&cat, &q(30), &cfg);
        cat.add_table(table("extra")); // structural change → epoch bump
        assert_ne!(before, fingerprint(&cat, &q(30), &cfg));
    }

    #[test]
    fn mutating_a_read_relation_changes_key() {
        let cfg = OptimizerConfig::default();
        let mut cat = catalog();
        let before = fingerprint(&cat, &q(30), &cfg);
        cat.replace_table(table("emp"));
        assert_ne!(
            before,
            fingerprint(&cat, &q(30), &cfg),
            "q reads emp: its cached plan must go stale"
        );
    }

    #[test]
    fn mutating_an_unrelated_relation_keeps_key_warm() {
        let cfg = OptimizerConfig::default();
        let mut cat = catalog();
        let before = fingerprint(&cat, &q(30), &cfg);
        cat.replace_table(table("proj"));
        assert_eq!(
            before,
            fingerprint(&cat, &q(30), &cfg),
            "q never reads proj: its cached plan stays valid"
        );
    }

    #[test]
    fn config_changes_key() {
        let a = OptimizerConfig::default();
        let b = OptimizerConfig::without_filter_join();
        let mut c = OptimizerConfig::default();
        c.params.cpu_weight *= 2.0;
        let cat = catalog();
        assert_ne!(fingerprint(&cat, &q(30), &a), fingerprint(&cat, &q(30), &b));
        assert_ne!(fingerprint(&cat, &q(30), &a), fingerprint(&cat, &q(30), &c));
    }

    #[test]
    fn plan_shape_changes_key() {
        let cat = catalog();
        assert_ne!(
            fingerprint(&cat, &q(30), &OptimizerConfig::default()),
            fingerprint(&cat, &q(30), &OptimizerConfig::bushy()),
            "a cached left-deep plan must not satisfy a bushy request"
        );
    }

    #[test]
    fn string_fields_are_length_prefixed() {
        let ab_c = JoinQuery::new(vec![FromItem::new("ab", "c")]);
        let a_bc = JoinQuery::new(vec![FromItem::new("a", "bc")]);
        let cfg = OptimizerConfig::default();
        let cat = Catalog::new();
        assert_ne!(
            fingerprint(&cat, &ab_c, &cfg),
            fingerprint(&cat, &a_bc, &cfg)
        );
    }
}
