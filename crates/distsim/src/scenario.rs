//! Two-site join scenarios.

use fj_algebra::{Catalog, NetworkModel, SiteId};
use fj_storage::TableRef;
use std::sync::Arc;

/// A join between a local outer relation and a remote inner relation —
/// the canonical §5.1 setting (relation A at `Site_A`, B at `Site_B`,
/// join answered at A's site).
#[derive(Debug, Clone)]
pub struct TwoSiteScenario {
    /// Catalog with both tables registered (outer local, inner remote).
    pub catalog: Arc<Catalog>,
    /// Outer (local) table name.
    pub outer: String,
    /// Inner (remote) table name.
    pub inner: String,
    /// The remote site.
    pub remote_site: SiteId,
    /// Join key column name in the outer table (unqualified).
    pub outer_key: String,
    /// Join key column name in the inner table (unqualified).
    pub inner_key: String,
}

impl TwoSiteScenario {
    /// Builds the scenario: `outer` stays at the local site, `inner` is
    /// placed at site 1, and the catalog carries `network`.
    pub fn new(
        outer: TableRef,
        inner: TableRef,
        outer_key: impl Into<String>,
        inner_key: impl Into<String>,
        network: NetworkModel,
    ) -> TwoSiteScenario {
        let remote_site = SiteId(1);
        let mut catalog = Catalog::new();
        let outer_name = outer.name().to_string();
        let inner_name = inner.name().to_string();
        catalog.add_table(outer);
        catalog.add_remote_table(inner, remote_site);
        catalog.set_network(network);
        TwoSiteScenario {
            catalog: Arc::new(catalog),
            outer: outer_name,
            inner: inner_name,
            remote_site,
            outer_key: outer_key.into(),
            inner_key: inner_key.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::RelationKind;
    use fj_storage::{DataType, TableBuilder};

    #[test]
    fn scenario_places_tables() {
        let a = TableBuilder::new("A")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap()
            .into_ref();
        let b = TableBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap()
            .into_ref();
        let s = TwoSiteScenario::new(a, b, "k", "k", NetworkModel::lan());
        assert!(matches!(
            s.catalog.resolve("A").unwrap(),
            RelationKind::Base(_)
        ));
        assert!(matches!(
            s.catalog.resolve("B").unwrap(),
            RelationKind::Remote(_, site) if site == s.remote_site
        ));
        assert!(s.catalog.network().ship_cost(4096) > 0.0);
    }
}
