//! The distributed join strategies of §5.1, executable with full ledger
//! accounting.

use crate::scenario::TwoSiteScenario;
use fj_algebra::{JoinKind, SiteId};
use fj_exec::physical::Rel;
use fj_exec::{ExecCtx, ExecError, PhysPlan, TempStep};
use fj_expr::col;
use fj_storage::{Index, LedgerSnapshot, Value};

/// The strategy menu for a local-outer / remote-inner join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistStrategy {
    /// System R*: ship the whole inner to the local site, join there.
    FetchInner,
    /// System R*: probe the remote inner once per outer tuple (requires
    /// an index on the inner key; each probe is one round trip).
    FetchMatches,
    /// SDD-1: ship the distinct outer keys to the inner's site, semi-join
    /// there, ship the survivors back — the Filter Join with a remote
    /// inner.
    SemiJoin,
    /// The lossy variant: ship a fixed-size Bloom filter instead of the
    /// exact filter set.
    BloomSemiJoin,
}

impl DistStrategy {
    /// All strategies.
    pub const ALL: [DistStrategy; 4] = [
        DistStrategy::FetchInner,
        DistStrategy::FetchMatches,
        DistStrategy::SemiJoin,
        DistStrategy::BloomSemiJoin,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DistStrategy::FetchInner => "fetch-inner (R*)",
            DistStrategy::FetchMatches => "fetch-matches (R*)",
            DistStrategy::SemiJoin => "semi-join (SDD-1)",
            DistStrategy::BloomSemiJoin => "bloom semi-join",
        }
    }
}

/// Result of running one strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The join result.
    pub rows: Vec<fj_storage::Tuple>,
    /// Ledger charges attributable to this run.
    pub charges: LedgerSnapshot,
    /// Scalar cost under the scenario's network weights (page units).
    pub cost: f64,
}

/// Runs `strategy` on the scenario, returning the join result and its
/// measured charges. Every strategy computes the identical result
/// multiset (asserted by the equivalence tests); only the cost differs.
pub fn run_strategy(
    scenario: &TwoSiteScenario,
    strategy: DistStrategy,
) -> Result<StrategyOutcome, ExecError> {
    let ctx = ExecCtx::new(scenario.catalog.clone());
    let before = ctx.ledger.snapshot();
    let ok = format!("O.{}", scenario.outer_key);
    let ik = format!("I.{}", scenario.inner_key);
    let outer_scan = PhysPlan::SeqScan {
        table: scenario.outer.clone(),
        alias: "O".into(),
    };
    let inner_scan = PhysPlan::SeqScan {
        table: scenario.inner.clone(),
        alias: "I".into(),
    };

    let mut rows = match strategy {
        DistStrategy::FetchInner => {
            let plan = PhysPlan::HashJoin {
                outer: outer_scan.boxed(),
                inner: PhysPlan::Ship {
                    input: inner_scan.boxed(),
                    from: scenario.remote_site,
                    to: SiteId::LOCAL,
                }
                .boxed(),
                keys: vec![(ok.clone(), ik.clone())],
                residual: None,
                kind: JoinKind::Inner,
            };
            plan.execute(&ctx)?.rows
        }
        DistStrategy::FetchMatches => fetch_matches(scenario, &ctx)?.rows,
        DistStrategy::SemiJoin => {
            let filter = PhysPlan::Ship {
                input: PhysPlan::Distinct {
                    input: PhysPlan::Project {
                        input: outer_scan.clone().boxed(),
                        exprs: vec![(col(ok.clone()), "k0".into())],
                    }
                    .boxed(),
                }
                .boxed(),
                from: SiteId::LOCAL,
                to: scenario.remote_site,
            };
            let restricted = PhysPlan::Ship {
                input: PhysPlan::HashJoin {
                    outer: inner_scan.boxed(),
                    inner: PhysPlan::TempScan {
                        name: "__f".into(),
                        alias: "__F".into(),
                    }
                    .boxed(),
                    keys: vec![(ik.clone(), "__F.k0".into())],
                    residual: None,
                    kind: JoinKind::Semi,
                }
                .boxed(),
                from: scenario.remote_site,
                to: SiteId::LOCAL,
            };
            let plan = PhysPlan::WithTemp {
                steps: vec![TempStep::Materialize {
                    name: "__f".into(),
                    plan: filter,
                }],
                body: PhysPlan::HashJoin {
                    outer: outer_scan.boxed(),
                    inner: restricted.boxed(),
                    keys: vec![(ok.clone(), ik.clone())],
                    residual: None,
                    kind: JoinKind::Inner,
                }
                .boxed(),
            };
            plan.execute(&ctx)?.rows
        }
        DistStrategy::BloomSemiJoin => {
            let expected = scenario.catalog.table(&scenario.outer)?.row_count().max(1);
            let bloom = fj_storage::BloomFilter::with_capacity(expected, 0.02);
            let plan = PhysPlan::WithTemp {
                steps: vec![TempStep::BuildBloom {
                    name: "__b".into(),
                    plan: PhysPlan::Project {
                        input: outer_scan.clone().boxed(),
                        exprs: vec![(col(ok.clone()), "k0".into())],
                    },
                    key_cols: vec!["k0".into()],
                    bits: bloom.n_bits(),
                    hashes: 4,
                    ship: Some((SiteId::LOCAL, scenario.remote_site)),
                }],
                body: PhysPlan::HashJoin {
                    outer: outer_scan.boxed(),
                    inner: PhysPlan::Ship {
                        input: PhysPlan::BloomProbe {
                            input: inner_scan.boxed(),
                            bloom: "__b".into(),
                            key_cols: vec![ik.clone()],
                        }
                        .boxed(),
                        from: scenario.remote_site,
                        to: SiteId::LOCAL,
                    }
                    .boxed(),
                    keys: vec![(ok, ik)],
                    residual: None,
                    kind: JoinKind::Inner,
                }
                .boxed(),
            };
            plan.execute(&ctx)?.rows
        }
    };
    rows.sort();
    let charges = ctx.ledger.snapshot().delta(&before);
    let net = scenario.catalog.network();
    let cost = charges.weighted(
        fj_storage::CPU_WEIGHT_DEFAULT,
        net.per_byte,
        net.per_message,
    );
    Ok(StrategyOutcome {
        rows,
        charges,
        cost,
    })
}

/// Fetch-matches: one network round trip per outer tuple, probing an
/// index on the remote inner's key. Each probe ships the key out (a
/// small message) and the matching tuples back.
fn fetch_matches(scenario: &TwoSiteScenario, ctx: &ExecCtx) -> Result<Rel, ExecError> {
    let outer_table = scenario.catalog.table(&scenario.outer)?;
    let inner_table = scenario.catalog.table(&scenario.inner)?;
    let okey = outer_table
        .schema()
        .resolve(&scenario.outer_key)
        .map_err(ExecError::Storage)?;
    let ikey = inner_table
        .schema()
        .resolve(&scenario.inner_key)
        .map_err(ExecError::Storage)?;
    if !inner_table.has_index(ikey) {
        return Err(ExecError::InvalidPhysicalPlan(format!(
            "fetch-matches needs an index on {}.{}",
            scenario.inner, scenario.inner_key
        )));
    }
    let out_schema = outer_table
        .schema()
        .with_qualifier("O")
        .join(&inner_table.schema().with_qualifier("I"))
        .map_err(ExecError::Storage)?
        .into_ref();

    let mut rows = Vec::new();
    for o in outer_table.scan(&ctx.ledger) {
        let key = o.value(okey);
        if key.is_null() {
            continue;
        }
        // Probe request: key value out.
        ctx.ledger.ship(key.wire_width() as u64 + 4);
        let ids: Vec<usize> = if let Some(h) = inner_table.hash_index(ikey) {
            h.probe(key, &ctx.ledger).to_vec()
        } else if let Some(b) = inner_table.btree_index(ikey) {
            b.probe(key, &ctx.ledger).to_vec()
        } else {
            unreachable!("checked above")
        };
        // Matches back: one response message with the matching tuples.
        let mut bytes = 4u64;
        let mut matched = Vec::with_capacity(ids.len());
        for rid in ids {
            let t = inner_table.fetch(rid, &ctx.ledger);
            bytes += t.wire_width() as u64;
            matched.push(t.clone());
        }
        ctx.ledger.ship(bytes);
        for t in matched {
            rows.push(o.concat(&t));
        }
    }
    Ok(Rel::new(out_schema, rows))
}

/// Convenience: expected join rows computed by a trusted local hash
/// join (used by tests and the D1 harness to validate every strategy).
pub fn reference_join(scenario: &TwoSiteScenario) -> Result<Vec<fj_storage::Tuple>, ExecError> {
    let outer = scenario.catalog.table(&scenario.outer)?;
    let inner = scenario.catalog.table(&scenario.inner)?;
    let ok = outer
        .schema()
        .resolve(&scenario.outer_key)
        .map_err(ExecError::Storage)?;
    let ik = inner
        .schema()
        .resolve(&scenario.inner_key)
        .map_err(ExecError::Storage)?;
    let mut map: std::collections::HashMap<&Value, Vec<&fj_storage::Tuple>> =
        std::collections::HashMap::new();
    for t in inner.rows() {
        let v = t.value(ik);
        if !v.is_null() {
            map.entry(v).or_default().push(t);
        }
    }
    let mut rows = Vec::new();
    for o in outer.rows() {
        let v = o.value(ok);
        if v.is_null() {
            continue;
        }
        if let Some(ms) = map.get(v) {
            for m in ms {
                rows.push(o.concat(m));
            }
        }
    }
    rows.sort();
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::NetworkModel;
    use fj_storage::{DataType, TableBuilder};

    fn scenario(network: NetworkModel) -> TwoSiteScenario {
        let outer = TableBuilder::new("Orders")
            .column("cust", DataType::Int)
            .column("amount", DataType::Int)
            .rows((0..200i64).map(|i| vec![(i % 20).into(), i.into()]))
            .build()
            .unwrap()
            .into_ref();
        let mut inner = TableBuilder::new("Customers")
            .column("cust", DataType::Int)
            .column("region", DataType::Int)
            .rows((0..1000i64).map(|i| vec![i.into(), (i % 7).into()]))
            .build()
            .unwrap();
        inner.create_hash_index(0).unwrap();
        TwoSiteScenario::new(outer, inner.into_ref(), "cust", "cust", network)
    }

    #[test]
    fn all_strategies_agree_on_result() {
        let s = scenario(NetworkModel::lan());
        let expected = reference_join(&s).unwrap();
        assert_eq!(expected.len(), 200);
        for strat in DistStrategy::ALL {
            let out = run_strategy(&s, strat).unwrap();
            assert_eq!(out.rows, expected, "strategy {}", strat.name());
        }
    }

    #[test]
    fn semi_join_ships_less_than_fetch_inner_when_selective() {
        // Only 20 of 1000 customers are referenced: the filter set is
        // tiny and the semi-join ships far fewer bytes.
        let s = scenario(NetworkModel::wan());
        let fetch = run_strategy(&s, DistStrategy::FetchInner).unwrap();
        let semi = run_strategy(&s, DistStrategy::SemiJoin).unwrap();
        assert!(
            semi.charges.bytes_shipped * 5 < fetch.charges.bytes_shipped,
            "semi {} vs fetch {}",
            semi.charges.bytes_shipped,
            fetch.charges.bytes_shipped
        );
        assert!(semi.cost < fetch.cost, "semi-join wins on a WAN");
    }

    #[test]
    fn fetch_inner_wins_on_free_network() {
        // With free communication, the semi-join's extra local work
        // (second outer scan, distinct projection) makes it lose — the
        // R* critique of SDD-1.
        let s = scenario(NetworkModel::free());
        let fetch = run_strategy(&s, DistStrategy::FetchInner).unwrap();
        let semi = run_strategy(&s, DistStrategy::SemiJoin).unwrap();
        assert!(fetch.cost <= semi.cost);
    }

    #[test]
    fn fetch_matches_message_count_scales_with_outer() {
        let s = scenario(NetworkModel::lan());
        let out = run_strategy(&s, DistStrategy::FetchMatches).unwrap();
        // 200 probes × 2 messages each (request + response).
        assert_eq!(out.charges.messages, 400);
    }

    #[test]
    fn bloom_ships_fixed_size_filter() {
        let s = scenario(NetworkModel::wan());
        let bloom = run_strategy(&s, DistStrategy::BloomSemiJoin).unwrap();
        let semi = run_strategy(&s, DistStrategy::SemiJoin).unwrap();
        // Both beat fetch-inner; the bloom's outbound filter is fixed
        // size. (With only 20 distinct keys the exact set is small too,
        // so just sanity-check both completed with 3 messages or fewer.)
        assert!(bloom.charges.messages <= 3);
        assert!(semi.charges.messages <= 3);
    }

    #[test]
    fn fetch_matches_requires_index() {
        let outer = TableBuilder::new("A")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap()
            .into_ref();
        let inner = TableBuilder::new("B")
            .column("k", DataType::Int)
            .row(vec![1.into()])
            .build()
            .unwrap()
            .into_ref();
        let s = TwoSiteScenario::new(outer, inner, "k", "k", NetworkModel::lan());
        assert!(run_strategy(&s, DistStrategy::FetchMatches).is_err());
    }
}
