//! # fj-distsim
//!
//! The distributed-database simulation substrate (§5.1): sites, a
//! network cost model, and the classical distributed join strategies
//! the paper situates the Filter Join among —
//!
//! * **Fetch inner** (System R*): ship the whole remote relation to the
//!   query site and join locally;
//! * **Fetch matches** (System R*): probe the remote relation across
//!   the network once per outer tuple;
//! * **Semi-join** (SDD-1): ship a distinct filter set to the remote
//!   site, restrict there, ship the survivors back — precisely a Filter
//!   Join with a remote inner;
//! * **Bloom semi-join**: the lossy variant with a fixed-size bit
//!   vector.
//!
//! > "In SDD-1, semi-joins were the only join method ... in the System
//! > R* optimizer, semi-joins were not considered ... In reality, both
//! > local and communication costs can be important, and their relative
//! > importance should be captured by appropriate cost metrics." (§5.1)
//!
//! [`strategies::run_strategy`] executes each strategy with full ledger
//! accounting so the D1 experiment can reproduce both regimes (and show
//! the cost-based optimizer picking the right one as the network weight
//! sweeps).

pub mod scenario;
pub mod strategies;

pub use scenario::TwoSiteScenario;
pub use strategies::{reference_join, run_strategy, DistStrategy, StrategyOutcome};
