//! Runtime metrics: per-query latency histogram, throughput, cache hit
//! rate, and queue depth.
//!
//! All counters are atomics updated by worker threads with `Relaxed`
//! ordering (they are statistics, not synchronization), matching the
//! cost ledger's accounting discipline. The latency histogram uses
//! power-of-two microsecond buckets: bucket *i* covers
//! `[2^i, 2^(i+1))` µs, so quantile estimates are upper bounds accurate
//! to a factor of two — plenty for the throughput bench's speedup
//! comparisons.

use fj_exec::InterruptReason;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (covers up to ~2^40 µs ≈ 12
/// days; the last bucket absorbs anything longer).
pub const LATENCY_BUCKETS: usize = 40;

/// Live counters shared by the workers (interior; see
/// [`RuntimeMetrics`] for the snapshot type).
#[derive(Debug)]
pub struct MetricsRecorder {
    completed: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    interrupted_by_budget: AtomicU64,
    workers_replaced: AtomicU64,
    fragments_served: AtomicU64,
    semijoin_sets_shipped: AtomicU64,
    bytes_scattered: AtomicU64,
    bytes_gathered: AtomicU64,
    spills: AtomicU64,
    spill_partitions: AtomicU64,
    latency_sum_micros: AtomicU64,
    latency_max_micros: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder {
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            interrupted_by_budget: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
            fragments_served: AtomicU64::new(0),
            semijoin_sets_shipped: AtomicU64::new(0),
            bytes_scattered: AtomicU64::new(0),
            bytes_gathered: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            spill_partitions: AtomicU64::new(0),
            latency_sum_micros: AtomicU64::new(0),
            latency_max_micros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(micros: u64) -> usize {
    (63 - micros.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

impl MetricsRecorder {
    /// Records one finished query (successful or not).
    pub fn record(&self, latency: Duration, ok: bool) {
        let us = latency.as_micros() as u64;
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_micros.fetch_add(us, Ordering::Relaxed);
        self.latency_max_micros.fetch_max(us, Ordering::Relaxed);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the histogram counters.
    pub fn histogram(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.latency_sum_micros.load(Ordering::Relaxed),
            max_micros: self.latency_max_micros.load(Ordering::Relaxed),
        }
    }

    /// Successfully completed queries.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Failed queries.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Records one interrupted query under the counter its reason maps
    /// to: explicit/deadline cancellations vs. governor budget trips.
    pub fn record_interrupt(&self, reason: InterruptReason) {
        match reason {
            InterruptReason::Deadline | InterruptReason::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            InterruptReason::MemoryBudget | InterruptReason::RowLimit => {
                self.interrupted_by_budget.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one worker replaced after a caught panic.
    pub fn record_worker_replaced(&self) {
        self.workers_replaced.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries stopped by explicit cancellation or deadline expiry.
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Queries stopped by a memory-page or output-row budget.
    pub fn interrupted_by_budget(&self) -> u64 {
        self.interrupted_by_budget.load(Ordering::Relaxed)
    }

    /// Workers respawned after a caught panic.
    pub fn workers_replaced(&self) -> u64 {
        self.workers_replaced.load(Ordering::Relaxed)
    }

    /// Records one distributed query fragment executed to completion.
    pub fn record_fragment_served(&self) {
        self.fragments_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` semijoin filter sets received and applied.
    pub fn record_semijoin_sets(&self, n: u64) {
        self.semijoin_sets_shipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `bytes` of partition payload scattered onto this node.
    pub fn record_bytes_scattered(&self, bytes: u64) {
        self.bytes_scattered.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of partial-result payload gathered off this node.
    pub fn record_bytes_gathered(&self, bytes: u64) {
        self.bytes_gathered.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Distributed fragments executed.
    pub fn fragments_served(&self) -> u64 {
        self.fragments_served.load(Ordering::Relaxed)
    }

    /// Semijoin filter sets received and applied.
    pub fn semijoin_sets_shipped(&self) -> u64 {
        self.semijoin_sets_shipped.load(Ordering::Relaxed)
    }

    /// Partition payload bytes scattered onto this node.
    pub fn bytes_scattered(&self) -> u64 {
        self.bytes_scattered.load(Ordering::Relaxed)
    }

    /// Partial-result payload bytes gathered off this node.
    pub fn bytes_gathered(&self) -> u64 {
        self.bytes_gathered.load(Ordering::Relaxed)
    }

    /// Records one query's spill activity (operator spill events and
    /// temp partitions created). A no-op for the common in-memory case.
    pub fn record_spill_activity(&self, spills: u64, partitions: u64) {
        if spills == 0 && partitions == 0 {
            return;
        }
        self.spills.fetch_add(spills, Ordering::Relaxed);
        self.spill_partitions
            .fetch_add(partitions, Ordering::Relaxed);
    }

    /// Operator spill events (each grace recursion level counts once).
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Temp partitions created by spilling operators.
    pub fn spill_partitions(&self) -> u64 {
        self.spill_partitions.load(Ordering::Relaxed)
    }
}

/// Power-of-two latency histogram snapshot.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` = queries with latency in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all recorded latencies, µs.
    pub sum_micros: u64,
    /// Largest recorded latency, µs.
    pub max_micros: u64,
}

impl LatencyHistogram {
    /// Total recorded queries.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0 < q ≤ 1);
    /// accurate to a factor of two. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_micros
    }
}

/// One observable snapshot of the whole service, from
/// `QueryService::metrics`.
#[derive(Debug, Clone)]
pub struct RuntimeMetrics {
    /// Successfully completed queries since service start.
    pub completed: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Queries stopped by explicit cancellation or deadline expiry.
    pub cancelled: u64,
    /// Queries stopped by a memory-page or output-row budget.
    pub interrupted_by_budget: u64,
    /// Workers respawned after a caught panic (pool stays at size).
    pub workers_replaced: u64,
    /// Configured worker-pool size — with `workers_replaced`, a
    /// router's view of pool strength.
    pub workers: usize,
    /// Queries a worker is executing right now.
    pub in_flight: usize,
    /// Per-query traces recorded over the service's lifetime (the
    /// trace ring keeps only the most recent ones; this counts all).
    pub traces_recorded: u64,
    /// Buffer-pool hits since start (0 in in-memory mode).
    pub pool_hits: u64,
    /// Buffer-pool misses — physical page-file reads — since start
    /// (0 in in-memory mode).
    pub pool_misses: u64,
    /// Pages evicted from the buffer pool since start.
    pub pool_evictions: u64,
    /// WAL group fsyncs issued since start.
    pub wal_fsyncs: u64,
    /// Distributed query fragments executed since start.
    pub fragments_served: u64,
    /// Semijoin filter sets received and applied since start.
    pub semijoin_sets_shipped: u64,
    /// Partition payload bytes scattered onto this node since start.
    pub bytes_scattered: u64,
    /// Partial-result payload bytes gathered off this node since start.
    pub bytes_gathered: u64,
    /// Mutations committed since start (both storage modes).
    pub mutations_applied: u64,
    /// WAL page-delta records appended since start (0 in in-memory
    /// mode).
    pub wal_deltas: u64,
    /// Dirty pages currently resident in the buffer pool (gauge; 0 in
    /// in-memory mode).
    pub dirty_pages: u64,
    /// Dirty pool victims persisted by eviction write-back since start.
    pub dirty_writebacks: u64,
    /// Fuzzy checkpoints completed since start (0 in in-memory mode).
    pub checkpoints: u64,
    /// Operator spill events since start (each grace recursion level
    /// counts once; 0 when spilling is off).
    pub spills: u64,
    /// Temp partitions created by spilling operators since start.
    pub spill_partitions: u64,
    /// Bytes appended to spill temp files since start.
    pub spill_bytes_written: u64,
    /// Bytes read back from spill temp files since start.
    pub spill_bytes_read: u64,
    /// High-water mark of bytes simultaneously held in live spill temp
    /// files.
    pub peak_temp_bytes: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`; 0 when unused.
    pub cache_hit_rate: f64,
    /// Plans currently cached.
    pub cache_entries: usize,
    /// Jobs waiting in the submission queue right now.
    pub queue_depth: usize,
    /// Wall-clock seconds since the service started.
    pub uptime_secs: f64,
    /// `completed / uptime` — queries per second since start.
    pub throughput_qps: f64,
    /// Latency distribution of finished queries.
    pub latency: LatencyHistogram,
}

impl RuntimeMetrics {
    /// One-line JSON rendering with a stable key order, hand-rolled so
    /// both the `fj-net` STATS reply and the reproduce binary emit the
    /// same scrapeable shape. Floats are fixed to six decimals (every
    /// field here is finite, so the output is always valid JSON).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"completed\":{},\"errors\":{},\"cancelled\":{},",
                "\"interrupted_by_budget\":{},\"workers_replaced\":{},",
                "\"workers\":{},\"in_flight\":{},",
                "\"traces_recorded\":{},",
                "\"pool_hits\":{},\"pool_misses\":{},",
                "\"pool_evictions\":{},\"wal_fsyncs\":{},",
                "\"fragments_served\":{},\"semijoin_sets_shipped\":{},",
                "\"bytes_scattered\":{},\"bytes_gathered\":{},",
                "\"mutations_applied\":{},\"wal_deltas\":{},",
                "\"dirty_pages\":{},\"dirty_writebacks\":{},",
                "\"checkpoints\":{},",
                "\"spills\":{},\"spill_partitions\":{},",
                "\"spill_bytes_written\":{},\"spill_bytes_read\":{},",
                "\"peak_temp_bytes\":{},",
                "\"cache_hits\":{},",
                "\"cache_misses\":{},\"cache_hit_rate\":{:.6},",
                "\"cache_entries\":{},\"queue_depth\":{},",
                "\"uptime_secs\":{:.6},\"throughput_qps\":{:.6},",
                "\"latency_mean_micros\":{:.6},\"latency_p50_micros\":{},",
                "\"latency_p99_micros\":{},\"latency_max_micros\":{}}}"
            ),
            self.completed,
            self.errors,
            self.cancelled,
            self.interrupted_by_budget,
            self.workers_replaced,
            self.workers,
            self.in_flight,
            self.traces_recorded,
            self.pool_hits,
            self.pool_misses,
            self.pool_evictions,
            self.wal_fsyncs,
            self.fragments_served,
            self.semijoin_sets_shipped,
            self.bytes_scattered,
            self.bytes_gathered,
            self.mutations_applied,
            self.wal_deltas,
            self.dirty_pages,
            self.dirty_writebacks,
            self.checkpoints,
            self.spills,
            self.spill_partitions,
            self.spill_bytes_written,
            self.spill_bytes_read,
            self.peak_temp_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.cache_entries,
            self.queue_depth,
            self.uptime_secs,
            self.throughput_qps,
            self.latency.mean_micros(),
            self.latency.quantile_micros(0.5),
            self.latency.quantile_micros(0.99),
            self.latency.max_micros,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn record_and_summarize() {
        let m = MetricsRecorder::default();
        m.record(Duration::from_micros(10), true);
        m.record(Duration::from_micros(100), true);
        m.record(Duration::from_micros(1000), false);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.errors(), 1);
        let h = m.histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_micros, 1110);
        assert_eq!(h.max_micros, 1000);
        assert!((h.mean_micros() - 370.0).abs() < 1e-9);
        // p50 falls in the 100µs bucket: [64,128) → upper bound 128.
        assert_eq!(h.quantile_micros(0.5), 128);
        assert!(h.quantile_micros(1.0) >= 1024);
    }

    #[test]
    fn to_json_is_stable_and_parseable_shaped() {
        let m = RuntimeMetrics {
            completed: 3,
            errors: 1,
            cancelled: 2,
            interrupted_by_budget: 1,
            workers_replaced: 1,
            workers: 4,
            in_flight: 2,
            traces_recorded: 5,
            pool_hits: 9,
            pool_misses: 3,
            pool_evictions: 1,
            wal_fsyncs: 2,
            fragments_served: 7,
            semijoin_sets_shipped: 4,
            bytes_scattered: 640,
            bytes_gathered: 320,
            mutations_applied: 6,
            wal_deltas: 8,
            dirty_pages: 5,
            dirty_writebacks: 3,
            checkpoints: 2,
            spills: 4,
            spill_partitions: 16,
            spill_bytes_written: 4096,
            spill_bytes_read: 4096,
            peak_temp_bytes: 2048,
            cache_hits: 2,
            cache_misses: 2,
            cache_hit_rate: 0.5,
            cache_entries: 2,
            queue_depth: 0,
            uptime_secs: 1.25,
            throughput_qps: 2.4,
            latency: MetricsRecorder::default().histogram(),
        };
        let j = m.to_json();
        assert!(j.starts_with("{\"completed\":3,"));
        assert!(j.ends_with("\"latency_max_micros\":0}"));
        assert!(j.contains("\"cache_hit_rate\":0.500000"));
        assert!(j.contains("\"queue_depth\":0"));
        assert!(j.contains("\"cancelled\":2"));
        assert!(j.contains("\"interrupted_by_budget\":1"));
        assert!(j.contains("\"workers_replaced\":1"));
        assert!(j.contains("\"workers\":4"));
        assert!(j.contains("\"in_flight\":2"));
        assert!(j.contains("\"traces_recorded\":5"));
        assert!(j.contains("\"pool_hits\":9"));
        assert!(j.contains("\"pool_misses\":3"));
        assert!(j.contains("\"pool_evictions\":1"));
        assert!(j.contains("\"wal_fsyncs\":2"));
        assert!(j.contains("\"fragments_served\":7"));
        assert!(j.contains("\"semijoin_sets_shipped\":4"));
        assert!(j.contains("\"bytes_scattered\":640"));
        assert!(j.contains("\"bytes_gathered\":320"));
        assert!(j.contains("\"mutations_applied\":6"));
        assert!(j.contains("\"wal_deltas\":8"));
        assert!(j.contains("\"dirty_pages\":5"));
        assert!(j.contains("\"dirty_writebacks\":3"));
        assert!(j.contains("\"checkpoints\":2"));
        assert!(j.contains("\"spills\":4"));
        assert!(j.contains("\"spill_partitions\":16"));
        assert!(j.contains("\"spill_bytes_written\":4096"));
        assert!(j.contains("\"spill_bytes_read\":4096"));
        assert!(j.contains("\"peak_temp_bytes\":2048"));
        // Stable key order: completed always precedes errors precedes
        // cache_hits.
        let (a, b, c) = (
            j.find("\"completed\"").unwrap(),
            j.find("\"errors\"").unwrap(),
            j.find("\"cache_hits\"").unwrap(),
        );
        assert!(a < b && b < c);
    }

    #[test]
    fn to_json_key_set_snapshot() {
        // The exact ordered key set of the metrics JSON is a wire
        // contract (the STATS reply and the reproduce binary both
        // scrape it): adding, removing, or reordering a key must be a
        // conscious change to this list. Every value is a bare number,
        // so the quoted tokens are precisely the keys.
        let j = RuntimeMetrics {
            completed: 0,
            errors: 0,
            cancelled: 0,
            interrupted_by_budget: 0,
            workers_replaced: 0,
            workers: 1,
            in_flight: 0,
            traces_recorded: 0,
            pool_hits: 0,
            pool_misses: 0,
            pool_evictions: 0,
            wal_fsyncs: 0,
            fragments_served: 0,
            semijoin_sets_shipped: 0,
            bytes_scattered: 0,
            bytes_gathered: 0,
            mutations_applied: 0,
            wal_deltas: 0,
            dirty_pages: 0,
            dirty_writebacks: 0,
            checkpoints: 0,
            spills: 0,
            spill_partitions: 0,
            spill_bytes_written: 0,
            spill_bytes_read: 0,
            peak_temp_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_hit_rate: 0.0,
            cache_entries: 0,
            queue_depth: 0,
            uptime_secs: 0.0,
            throughput_qps: 0.0,
            latency: MetricsRecorder::default().histogram(),
        }
        .to_json();
        let keys: Vec<&str> = j.split('"').skip(1).step_by(2).collect();
        assert_eq!(
            keys,
            [
                "completed",
                "errors",
                "cancelled",
                "interrupted_by_budget",
                "workers_replaced",
                "workers",
                "in_flight",
                "traces_recorded",
                "pool_hits",
                "pool_misses",
                "pool_evictions",
                "wal_fsyncs",
                "fragments_served",
                "semijoin_sets_shipped",
                "bytes_scattered",
                "bytes_gathered",
                "mutations_applied",
                "wal_deltas",
                "dirty_pages",
                "dirty_writebacks",
                "checkpoints",
                "spills",
                "spill_partitions",
                "spill_bytes_written",
                "spill_bytes_read",
                "peak_temp_bytes",
                "cache_hits",
                "cache_misses",
                "cache_hit_rate",
                "cache_entries",
                "queue_depth",
                "uptime_secs",
                "throughput_qps",
                "latency_mean_micros",
                "latency_p50_micros",
                "latency_p99_micros",
                "latency_max_micros",
            ]
        );
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = MetricsRecorder::default().histogram();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.quantile_micros(0.5), 0);
    }
}
