//! A bounded MPMC submission queue built on `Mutex` + `Condvar`.
//!
//! Producers block in [`BoundedQueue::push`] while the queue is at
//! capacity — that blocking *is* the service's backpressure: an
//! overloaded service slows its callers down instead of buffering
//! unboundedly. [`BoundedQueue::try_push`] is the non-blocking variant
//! for callers that prefer an error over waiting.
//!
//! Closing the queue wakes everyone: pending pushes fail, and pops
//! drain the remaining items before returning `None` — so a shutdown
//! still completes every query that was accepted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// `try_push` found the queue at capacity.
    Full,
    /// The queue was closed (service shutting down).
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue; see the module docs.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is room, then enqueues `item`. Fails only
    /// when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues without blocking; fails with [`PushError::Full`] at
    /// capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, blocked pushers and
    /// poppers wake. Already-queued items still drain through `pop`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_push_full_then_room_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn blocking_push_waits_for_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        // Give the pusher time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q = Arc::new(BoundedQueue::<i32>::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
