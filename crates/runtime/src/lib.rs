//! # fj-runtime
//!
//! A concurrent query service over the `filterjoin` engine: the layer
//! that turns the paper's single-shot optimize-and-execute pipeline
//! into a long-running, multi-client runtime.
//!
//! * [`QueryService`] — a fixed-size worker pool draining a **bounded
//!   submission queue**; a full queue blocks submitters (backpressure)
//!   rather than buffering without limit.
//! * [`PlanCache`] — optimized plans keyed by the canonical
//!   [`fj_optimizer::fingerprint`] of (catalog epoch, logical query,
//!   optimizer config), with hit/miss accounting. Catalog mutations
//!   bump the epoch, so a stale plan can never be served.
//! * **Intra-query parallelism** — each worker can execute its query
//!   with parallel heap scans and hash-partitioned joins
//!   (`fj_exec::ops::parallel`); the atomic cost ledger keeps measured
//!   charges identical to serial execution.
//! * [`RuntimeMetrics`] — per-query latency histogram, throughput,
//!   cache hit rate, and queue depth.
//! * **Query governor** — every submission carries a shared
//!   [`Interrupt`] handle: deadlines, explicit [`Ticket::cancel`],
//!   and row/memory budgets all trip it, and operators poll it
//!   cooperatively so a query stops within a bounded number of tuples
//!   and returns [`RuntimeError::Interrupted`].
//! * **Self-healing workers** — a panic inside the engine is caught,
//!   reported on the query's ticket as
//!   [`RuntimeError::WorkerPanicked`], and the worker is respawned so
//!   pool capacity never degrades (`workers_replaced` counts these).
//! * **Fault injection** — [`ServiceConfig::fault_plan`] installs a
//!   seeded [`fj_storage::FaultPlan`] on the page-read path for
//!   deterministic chaos testing.
//! * **Memory governance & spilling** —
//!   [`ServiceConfig::spill_soft_watermark_pages`] arms a
//!   [`MemoryBroker`] and a [`TempStore`]: operators whose working set
//!   would breach the watermark spill to temp files (grace hash join,
//!   external merge sort, spillable aggregation) instead of dying on
//!   the memory budget, and the budget stays armed as a kill switch.
//!
//! ```
//! use fj_algebra::fixtures::{paper_catalog, paper_query};
//! use fj_runtime::{QueryService, ServiceConfig};
//!
//! // One worker makes the cache accounting deterministic here; real
//! // deployments use several (the default is 4).
//! let config = ServiceConfig { workers: 1, ..ServiceConfig::default() };
//! let service = QueryService::start(paper_catalog(), config);
//! let tickets: Vec<_> = (0..8)
//!     .map(|_| service.submit(paper_query()).unwrap())
//!     .collect();
//! for t in tickets {
//!     assert_eq!(t.wait().unwrap().rows.len(), 2);
//! }
//! let m = service.metrics();
//! assert_eq!(m.completed, 8);
//! assert_eq!(m.cache_hits, 7); // first execution optimizes, the rest hit
//! service.shutdown();
//! ```

pub mod cache;
pub mod metrics;
pub mod queue;
pub mod service;

pub use cache::{CacheStats, PlanCache};
pub use fj_exec::{Interrupt, InterruptReason, MemoryBroker, MemoryGrant, SpillSnapshot};
pub use fj_storage::FaultPlan;
pub use fj_storage::Mutation;
pub use fj_storage::{TempStore, TempStoreStats};
pub use fj_store::{CheckpointPhase, RecoveryReport, Store, StoreStats};
pub use fj_trace::{QueryTrace, TraceRing, TracedQuery};
pub use metrics::{LatencyHistogram, MetricsRecorder, RuntimeMetrics, LATENCY_BUCKETS};
pub use queue::{BoundedQueue, PushError};
pub use service::{
    MutationStats, MutationTicket, QueryService, RuntimeError, ServiceConfig, ServiceHealth,
    StorageMode, Ticket,
};
