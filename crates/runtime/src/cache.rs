//! The plan cache: fingerprint → optimized plan, with hit/miss
//! accounting and insertion-order eviction.
//!
//! Keys come from [`fj_optimizer::fingerprint`], which folds in the
//! catalog epoch *and* the data version of every relation the query
//! reads — a structural catalog change strands every old key, while a
//! data mutation (INSERT/UPDATE/DELETE) strands only the keys of plans
//! that read the mutated table; plans over other tables stay warm
//! across mutations. The service still calls [`PlanCache::clear`] on
//! full catalog installation to release the memory the dead entries
//! hold; mutations skip the clear on purpose.

use fj_optimizer::OptimizedPlan;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Arc<OptimizedPlan>>,
    /// Insertion order, oldest first (the eviction queue).
    order: VecDeque<u64>,
}

/// Cache hit/miss counters, as reported by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing (the caller then optimizes).
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0 when never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded fingerprint-keyed plan cache; see the module docs.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to ≥1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `fingerprint`, counting a hit or miss.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<OptimizedPlan>> {
        let found = self.lock().map.get(&fingerprint).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a plan, evicting the oldest entry when at capacity.
    /// Concurrent double-optimization of the same query is benign: the
    /// second insert just replaces an identical plan.
    pub fn insert(&self, fingerprint: u64, plan: Arc<OptimizedPlan>) {
        let mut inner = self.lock();
        if inner.map.insert(fingerprint, plan).is_none() {
            inner.order.push_back(fingerprint);
        }
        while inner.map.len() > self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
    }

    /// Empties the cache (counters are kept — they describe the
    /// service's lifetime, not one catalog generation).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_exec::PhysPlan;
    use fj_storage::Schema;

    fn plan(cost: f64) -> Arc<OptimizedPlan> {
        Arc::new(OptimizedPlan {
            phys: PhysPlan::Values {
                schema: Schema::empty().into_ref(),
                rows: Vec::new(),
            },
            cost,
            est_rows: 0.0,
            order: Vec::new(),
            sips: Vec::new(),
            filter_join_costs: Vec::new(),
            plans_considered: 0,
            nested_invocations: 0,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = PlanCache::new(8);
        assert!(c.get(1).is_none());
        c.insert(1, plan(10.0));
        assert_eq!(c.get(1).unwrap().cost, 10.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_oldest_first() {
        let c = PlanCache::new(2);
        c.insert(1, plan(1.0));
        c.insert(2, plan(2.0));
        c.insert(3, plan(3.0));
        assert!(c.get(1).is_none(), "oldest evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c = PlanCache::new(4);
        c.insert(1, plan(1.0));
        c.get(1);
        c.clear();
        assert!(c.get(1).is_none());
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn reinsert_does_not_duplicate_eviction_slot() {
        let c = PlanCache::new(2);
        c.insert(1, plan(1.0));
        c.insert(1, plan(1.5));
        c.insert(2, plan(2.0));
        assert_eq!(c.get(1).unwrap().cost, 1.5);
        assert!(c.get(2).is_some());
    }
}
