//! The concurrent query service: a fixed worker pool draining a bounded
//! submission queue, executing against an immutable shared catalog
//! snapshot with a fingerprint-keyed plan cache.
//!
//! Concurrency model (see `DESIGN.md`, "Runtime & concurrency model"):
//!
//! * the catalog snapshot is an `Arc<Catalog>` behind an `RwLock` — a
//!   worker clones the `Arc` once per query, so queries in flight keep
//!   executing against the snapshot they started with even while a new
//!   catalog is installed;
//! * plans are cached under the [`fj_optimizer::fingerprint`] of
//!   (catalog epoch, query, optimizer config) — installing a catalog
//!   bumps the epoch, so stale plans can never be served;
//! * the cost ledger is per-query (a fresh [`ExecCtx`] per job), so
//!   measured charges reconcile with the System-R formulas exactly as
//!   in serial execution, even with intra-query parallel operators
//!   charging from several threads.

use crate::cache::PlanCache;
use crate::metrics::{MetricsRecorder, RuntimeMetrics};
use crate::queue::{BoundedQueue, PushError};
use fj_algebra::{Catalog, JoinQuery, RelationKind, SiteId};
use fj_core::QueryResult;
use fj_exec::{ExecCtx, ExecError, Interrupt, InterruptReason, MemoryBroker, PoolProbe, SpillCtx};
use fj_optimizer::{fingerprint, OptError, Optimizer, OptimizerConfig};
use fj_storage::{FaultPlan, Mutation, Table, TableRef, TempStore, TempStoreStats};
use fj_store::{RecoveryReport, Store, StoreError, StoreStats};
use fj_trace::{TraceCollector, TraceRing, TracedQuery};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level failures (distinct from per-query optimizer/executor
/// errors, which arrive as [`RuntimeError::Query`]).
#[derive(Debug)]
pub enum RuntimeError {
    /// The optimizer or executor rejected the query.
    Query(OptError),
    /// The query was interrupted mid-execution: cancelled, deadlined,
    /// or stopped by a governor budget. The worker that ran it is free
    /// and accepting new work.
    Interrupted(InterruptReason),
    /// `try_submit` found the queue at capacity.
    QueueFull,
    /// The service is shutting down and accepts no new queries.
    ShuttingDown,
    /// The worker executing this query disappeared without replying.
    WorkerLost,
    /// The worker panicked while executing this query. The pool has
    /// already respawned a replacement (see `workers_replaced` in the
    /// metrics); the panic message is preserved for diagnosis.
    WorkerPanicked(String),
    /// [`Ticket::wait_timeout`] expired. The expiry also trips the
    /// query's interrupt, so the abandoned query stops cooperatively
    /// and its worker frees up.
    DeadlineExceeded,
    /// [`ServiceConfig::validate`] rejected a zero-sized knob.
    InvalidConfig(String),
    /// Disk-backed storage failed: the data directory could not be
    /// opened/recovered, a load did not persist, or a recovered table's
    /// schema contradicts the catalog template.
    Storage(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Query(e) => write!(f, "query failed: {e}"),
            RuntimeError::Interrupted(reason) => write!(f, "query interrupted: {reason}"),
            RuntimeError::QueueFull => write!(f, "submission queue is full"),
            RuntimeError::ShuttingDown => write!(f, "query service is shutting down"),
            RuntimeError::WorkerLost => write!(f, "worker thread lost before replying"),
            RuntimeError::WorkerPanicked(msg) => {
                write!(f, "worker panicked while executing this query: {msg}")
            }
            RuntimeError::DeadlineExceeded => {
                write!(f, "deadline expired before the query finished")
            }
            RuntimeError::InvalidConfig(what) => write!(f, "invalid service config: {what}"),
            RuntimeError::Storage(what) => write!(f, "storage failure: {what}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<OptError> for RuntimeError {
    fn from(e: OptError) -> Self {
        match e {
            // An interrupt surfacing through the executor is a
            // first-class runtime outcome, not a query defect.
            OptError::Exec(ExecError::Interrupted(reason)) => RuntimeError::Interrupted(reason),
            other => RuntimeError::Query(other),
        }
    }
}

/// Where a service's base tables physically live.
#[derive(Debug, Clone, Default)]
pub enum StorageMode {
    /// Pure in-memory heaps (the default): page I/O is *simulated*
    /// through the cost ledger only. Byte-identical to the engine's
    /// behavior before disk backing existed.
    #[default]
    InMemory,
    /// Disk-backed: the catalog is reconciled with an [`fj_store::Store`]
    /// data directory at startup (crash recovery included), every base
    /// table's pages are physically read through a buffer pool, and the
    /// service can restart from the directory alone. Execution still
    /// runs against the in-memory rows, so results and fault schedules
    /// stay byte-identical to [`StorageMode::InMemory`] — the disk adds
    /// a physical shadow of the simulated I/O, not a new semantics.
    Disk {
        /// The data directory (created on first use).
        dir: PathBuf,
        /// Buffer-pool capacity in pages. Clamped to ≥ 1.
        pool_pages: usize,
    },
}

impl StorageMode {
    /// Whether this is the disk-backed mode.
    pub fn is_disk(&self) -> bool {
        matches!(self, StorageMode::Disk { .. })
    }
}

/// Tuning knobs for [`QueryService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the submission queue (inter-query
    /// parallelism). Clamped to ≥1.
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue blocks
    /// `submit` (backpressure) and fails `try_submit`.
    pub queue_capacity: usize,
    /// Threads each query may use internally (parallel scans and
    /// partitioned hash joins). 1 = serial operators.
    pub intra_query_threads: usize,
    /// Executor buffer memory in pages (the cost model's `M`).
    pub memory_pages: u64,
    /// Plan-cache capacity in plans.
    pub plan_cache_capacity: usize,
    /// Default optimizer configuration for submitted queries.
    pub optimizer: OptimizerConfig,
    /// Governor: per-query cap on rows emitted across all plan nodes
    /// (`None` = unlimited). A breach interrupts the query with
    /// [`InterruptReason::RowLimit`].
    pub row_budget: Option<u64>,
    /// Governor: per-query cap on materialized pages (temps, sort
    /// runs, grace partitions; `None` = unlimited). A breach interrupts
    /// with [`InterruptReason::MemoryBudget`].
    pub memory_budget_pages: Option<u64>,
    /// Seeded fault plan injected into every query's storage access
    /// paths (`None` = no injection). Test/chaos tooling only.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Whether queries record a per-operator [`fj_trace::QueryTrace`]
    /// by default. Off by default — tracing off takes the executor's
    /// zero-overhead path. Per-submission opt-in/out via
    /// [`QueryService::submit_with_options`].
    pub collect_trace: bool,
    /// Capacity of the bounded ring of recent traces
    /// ([`QueryService::recent_traces`]). Clamped to ≥1.
    pub trace_ring_capacity: usize,
    /// Physical storage mode: in-memory (the default) or disk-backed
    /// with a data directory and buffer pool (see [`StorageMode`]).
    pub storage: StorageMode,
    /// Memory-broker soft watermark in pages — the switch that turns
    /// spilling on. `Some(w)`: operators whose inputs exceed
    /// `memory_pages` (or whose broker reservation is denied because
    /// concurrent queries already hold `w` pages) partition to temp
    /// files instead of tripping [`InterruptReason::MemoryBudget`].
    /// `None` (the default): the pre-spilling behavior, byte-identical
    /// charges and all.
    pub spill_soft_watermark_pages: Option<u64>,
    /// Directory for spill temp files (`None` = a fresh scratch
    /// directory, removed when the service stops). Only meaningful
    /// when spilling is on.
    pub spill_dir: Option<PathBuf>,
    /// Bound on recursive grace-join repartitioning depth. Clamped to
    /// ≥ 1. Only meaningful when spilling is on.
    pub spill_max_recursion_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            intra_query_threads: 1,
            memory_pages: fj_exec::context::DEFAULT_MEMORY_PAGES,
            plan_cache_capacity: 1024,
            optimizer: OptimizerConfig::default(),
            row_budget: None,
            memory_budget_pages: None,
            fault_plan: None,
            collect_trace: false,
            trace_ring_capacity: 16,
            storage: StorageMode::InMemory,
            spill_soft_watermark_pages: None,
            spill_dir: None,
            spill_max_recursion_depth: fj_exec::DEFAULT_SPILL_MAX_DEPTH,
        }
    }
}

impl ServiceConfig {
    /// Strict validation: every sizing knob must be non-zero. This is
    /// the check front ends (e.g. `fj-net`) should run on
    /// operator-supplied configuration before starting a service.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let reject = |what: &str| Err(RuntimeError::InvalidConfig(format!("{what} must be ≥ 1")));
        if self.workers == 0 {
            return reject("workers");
        }
        if self.queue_capacity == 0 {
            return reject("queue_capacity");
        }
        if self.intra_query_threads == 0 {
            return reject("intra_query_threads");
        }
        if self.plan_cache_capacity == 0 {
            return reject("plan_cache_capacity");
        }
        if self.memory_pages == 0 {
            return reject("memory_pages");
        }
        if self.trace_ring_capacity == 0 {
            return reject("trace_ring_capacity");
        }
        if let StorageMode::Disk { pool_pages, .. } = &self.storage {
            if *pool_pages == 0 {
                return reject("storage pool_pages");
            }
        }
        if self.spill_soft_watermark_pages == Some(0) {
            return reject("spill_soft_watermark_pages");
        }
        if self.spill_max_recursion_depth == 0 {
            return reject("spill_max_recursion_depth");
        }
        Ok(())
    }

    /// The lenient counterpart of [`ServiceConfig::validate`]: clamps
    /// every zero-sized knob up to 1. [`QueryService::start`] applies
    /// this — it is the one place where clamping happens, so a
    /// `ServiceConfig { workers: 0, .. }` still yields a working
    /// single-worker service rather than a deadlocked one.
    pub fn normalized(mut self) -> ServiceConfig {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.intra_query_threads = self.intra_query_threads.max(1);
        self.plan_cache_capacity = self.plan_cache_capacity.max(1);
        self.memory_pages = self.memory_pages.max(1);
        self.trace_ring_capacity = self.trace_ring_capacity.max(1);
        if let StorageMode::Disk { pool_pages, .. } = &mut self.storage {
            *pool_pages = (*pool_pages).max(1);
        }
        if let Some(w) = &mut self.spill_soft_watermark_pages {
            *w = (*w).max(1);
        }
        self.spill_max_recursion_depth = self.spill_max_recursion_depth.max(1);
        self
    }
}

/// One unit of work in the submission queue: a query or a mutation.
/// Both kinds share the worker pool, the interrupt machinery, and the
/// queue's admission control.
enum Job {
    Query(QueryJob),
    Mutation(MutationJob),
}

struct QueryJob {
    query: JoinQuery,
    config: OptimizerConfig,
    collect_trace: bool,
    interrupt: Interrupt,
    reply: mpsc::Sender<Result<QueryResult, RuntimeError>>,
}

struct MutationJob {
    mutation: Mutation,
    interrupt: Interrupt,
    reply: mpsc::Sender<Result<MutationStats, RuntimeError>>,
}

/// What a committed mutation changed, as reported on its
/// [`MutationTicket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationStats {
    /// Rows inserted, updated, or deleted.
    pub rows_affected: u64,
    /// The table's post-mutation row count.
    pub row_count: u64,
    /// The table's post-mutation data version (the store's
    /// log-structured version in disk mode, the catalog's
    /// [`relation_version`](Catalog::relation_version) in memory).
    pub version: u64,
}

struct Shared {
    queue: BoundedQueue<Job>,
    catalog: RwLock<Arc<Catalog>>,
    cache: PlanCache,
    metrics: MetricsRecorder,
    /// Bounded ring of recent per-query traces (traced queries only).
    traces: TraceRing,
    in_flight: AtomicUsize,
    /// Live worker JoinHandles. Behind a mutex because a panicking
    /// worker pushes its own replacement's handle before exiting.
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic id source for replacement-worker thread names.
    worker_seq: AtomicUsize,
    /// Serializes mutations against each other across both storage
    /// modes (the read-apply-install window must not interleave);
    /// queries and checkpoints are unaffected.
    mutation_lock: Mutex<()>,
    /// Mutations committed by this service since start (both modes).
    mutations_applied: AtomicU64,
    /// The disk store behind the catalog's page backings
    /// (`None` = in-memory mode).
    store: Option<Arc<Store>>,
    /// Spilling infrastructure shared by every query: one temp store
    /// (RAII — deleting the scratch directory on shutdown) and one
    /// memory broker arbitrating the soft watermark across concurrent
    /// queries. `None` = spilling off.
    spill: Option<SpillShared>,
    /// What [`Store::open`] found at startup (disk mode only).
    recovery: Option<RecoveryReport>,
    cfg: ServiceConfig,
    started: Instant,
}

impl Shared {
    fn snapshot(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The service-wide spilling state (see [`ServiceConfig`]'s spill
/// knobs).
struct SpillShared {
    temp: Arc<TempStore>,
    broker: Arc<MemoryBroker>,
}

/// A pending query: redeem with [`Ticket::wait`], abort with
/// [`Ticket::cancel`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResult, RuntimeError>>,
    interrupt: Interrupt,
}

impl Ticket {
    /// Cancels the query: trips its interrupt with
    /// [`InterruptReason::Cancelled`]. If the query is still queued it
    /// will never execute (the worker replies `Interrupted` on
    /// dequeue); if it is mid-execution it stops within a bounded
    /// number of tuples. Returns `true` if this call tripped the flag
    /// first (`false` if the query was already interrupted for another
    /// reason). The reply still arrives — `wait` after `cancel` returns
    /// either the completed result (the query won the race) or
    /// [`RuntimeError::Interrupted`], never both.
    pub fn cancel(&self) -> bool {
        self.interrupt.trip(InterruptReason::Cancelled)
    }

    /// A clone of the query's interrupt handle, for callers that need
    /// to trip it from another thread or with a different reason (the
    /// `fj-net` server trips [`InterruptReason::Deadline`] from its
    /// connection handler).
    pub fn interrupt_handle(&self) -> Interrupt {
        self.interrupt.clone()
    }

    /// Blocks until the worker finishes this query.
    pub fn wait(self) -> Result<QueryResult, RuntimeError> {
        self.rx.recv().unwrap_or(Err(RuntimeError::WorkerLost))
    }

    /// Blocks at most `timeout` for the worker to finish this query.
    ///
    /// Expiry **cancels the query**: the interrupt trips with
    /// [`InterruptReason::Deadline`], so an abandoned query stops
    /// within a bounded number of tuples and its worker frees up —
    /// the wait is never a leak. The caller gets
    /// [`RuntimeError::DeadlineExceeded`] immediately; the worker's
    /// own `Interrupted` reply goes to the dropped channel.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryResult, RuntimeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.interrupt.trip(InterruptReason::Deadline);
                Err(RuntimeError::DeadlineExceeded)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RuntimeError::WorkerLost),
        }
    }

    /// Non-consuming poll: waits at most `timeout` for the reply.
    /// `None` means the query is still running (the ticket remains
    /// redeemable) — the primitive for callers that interleave waiting
    /// with other work, like the `fj-net` connection handler watching
    /// for CANCEL frames.
    pub fn poll(&self, timeout: Duration) -> Option<Result<QueryResult, RuntimeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(RuntimeError::WorkerLost)),
        }
    }
}

/// A pending mutation: redeem with [`MutationTicket::wait`], abort
/// with [`MutationTicket::cancel`]. The same interrupt machinery as
/// query [`Ticket`]s: a cancellation observed before the WAL commit
/// fsync aborts the mutation with **zero** persistent or in-memory
/// effects; one observed after commits normally.
#[derive(Debug)]
pub struct MutationTicket {
    rx: mpsc::Receiver<Result<MutationStats, RuntimeError>>,
    interrupt: Interrupt,
}

impl MutationTicket {
    /// Trips the mutation's interrupt with
    /// [`InterruptReason::Cancelled`]. If the commit fsync has not
    /// happened yet the mutation aborts and leaves no partial state;
    /// otherwise it completes and `wait` returns the result.
    pub fn cancel(&self) -> bool {
        self.interrupt.trip(InterruptReason::Cancelled)
    }

    /// A clone of the mutation's interrupt handle (the `fj-net` server
    /// trips [`InterruptReason::Deadline`] from its connection
    /// handler).
    pub fn interrupt_handle(&self) -> Interrupt {
        self.interrupt.clone()
    }

    /// Blocks until the worker finishes this mutation.
    pub fn wait(self) -> Result<MutationStats, RuntimeError> {
        self.rx.recv().unwrap_or(Err(RuntimeError::WorkerLost))
    }

    /// Blocks at most `timeout`; expiry trips
    /// [`InterruptReason::Deadline`], so an abandoned uncommitted
    /// mutation aborts cleanly instead of leaking.
    pub fn wait_timeout(self, timeout: Duration) -> Result<MutationStats, RuntimeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.interrupt.trip(InterruptReason::Deadline);
                Err(RuntimeError::DeadlineExceeded)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RuntimeError::WorkerLost),
        }
    }

    /// Non-consuming poll; `None` means still running.
    pub fn poll(&self, timeout: Duration) -> Option<Result<MutationStats, RuntimeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(RuntimeError::WorkerLost)),
        }
    }
}

/// A point-in-time health view of one [`QueryService`]: the snapshot a
/// replica-aware router needs to tell a healthy pool from a degraded
/// one. Cheaper than [`QueryService::metrics`] (no histogram copy) and
/// stable under load — every field is one relaxed atomic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Configured worker-pool size (post-normalization).
    pub workers: usize,
    /// Workers respawned after caught panics; a non-zero value means
    /// the pool has been through trauma even if it is back at strength.
    pub workers_replaced: u64,
    /// Jobs waiting in the submission queue (not yet picked up).
    pub queued: usize,
    /// Jobs a worker is executing right now.
    pub in_flight: usize,
    /// Submission-queue capacity (the shed threshold).
    pub queue_capacity: usize,
    /// Buffer-pool hits since start (0 in in-memory mode).
    pub pool_hits: u64,
    /// Buffer-pool misses — physical page reads — since start (0 in
    /// in-memory mode).
    pub pool_misses: u64,
    /// Pages evicted from the buffer pool since start.
    pub pool_evictions: u64,
    /// WAL group fsyncs issued since start.
    pub wal_fsyncs: u64,
    /// Distributed query fragments executed since start.
    pub fragments_served: u64,
    /// Semijoin filter sets received and applied since start.
    pub semijoin_sets_shipped: u64,
    /// Partition payload bytes scattered onto this node since start.
    pub bytes_scattered: u64,
    /// Partial-result payload bytes gathered off this node since start.
    pub bytes_gathered: u64,
    /// Mutations committed since start (both storage modes).
    pub mutations_applied: u64,
    /// WAL page-delta records appended since start (0 in in-memory
    /// mode).
    pub wal_deltas: u64,
    /// Dirty pages currently resident in the buffer pool (gauge; 0 in
    /// in-memory mode).
    pub dirty_pages: u64,
    /// Fuzzy checkpoints completed since start (0 in in-memory mode).
    pub checkpoints: u64,
    /// Operator spill events since start (0 when spilling is off).
    pub spills: u64,
    /// Temp partitions created by spilling operators since start.
    pub spill_partitions: u64,
    /// Bytes appended to spill temp files since start.
    pub spill_bytes_written: u64,
    /// Bytes read back from spill temp files since start.
    pub spill_bytes_read: u64,
    /// High-water mark of bytes simultaneously held in live spill temp
    /// files.
    pub peak_temp_bytes: u64,
}

impl ServiceHealth {
    /// Whether the submission queue is at (or past) capacity — the
    /// condition under which `try_submit` sheds.
    pub fn saturated(&self) -> bool {
        self.queued >= self.queue_capacity
    }
}

/// The concurrent query service; see the module docs.
pub struct QueryService {
    shared: Arc<Shared>,
}

impl fmt::Debug for QueryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryService")
            .field("workers", &self.shared.cfg.workers)
            .field("queue_depth", &self.shared.queue.len())
            .finish()
    }
}

impl QueryService {
    /// Starts the worker pool over `catalog`. The config is passed
    /// through [`ServiceConfig::normalized`] first, so zero-sized knobs
    /// are clamped to 1 (use [`ServiceConfig::validate`] beforehand to
    /// reject them instead).
    pub fn start(catalog: Catalog, config: ServiceConfig) -> QueryService {
        match QueryService::try_start(catalog, config) {
            Ok(service) => service,
            Err(e) => panic!("failed to start query service: {e}"),
        }
    }

    /// Fallible counterpart of [`QueryService::start`] — the path for
    /// disk-backed services, where opening or recovering the data
    /// directory can fail ([`RuntimeError::Storage`]). In-memory
    /// startup never errors.
    ///
    /// In [`StorageMode::Disk`], `catalog` acts as a *template*: tables
    /// already committed in the data directory are recovered from disk
    /// (replacing the template's copy; their schemas must match),
    /// tables the store has never seen are loaded into it, and every
    /// base table is attached to the store's buffer pool so queries
    /// physically read pages through it.
    pub fn try_start(
        catalog: Catalog,
        config: ServiceConfig,
    ) -> Result<QueryService, RuntimeError> {
        let config = config.normalized();
        let (catalog, store, recovery) = match &config.storage {
            StorageMode::InMemory => (catalog, None, None),
            StorageMode::Disk { dir, pool_pages } => {
                let (store, report) = Store::open(dir, *pool_pages, config.fault_plan.clone())
                    .map_err(|e| RuntimeError::Storage(e.to_string()))?;
                let store = Arc::new(store);
                let catalog = build_disk_catalog(catalog, &store)?;
                (catalog, Some(store), Some(report))
            }
        };
        let spill = match config.spill_soft_watermark_pages {
            Some(watermark) => {
                let temp = match &config.spill_dir {
                    Some(dir) => TempStore::open(dir),
                    None => TempStore::open_scratch(),
                }
                .map_err(|e| RuntimeError::Storage(e.to_string()))?;
                let temp = match &config.fault_plan {
                    Some(faults) => temp.with_faults(Arc::clone(faults)),
                    None => temp,
                };
                Some(SpillShared {
                    temp: Arc::new(temp),
                    broker: MemoryBroker::new(watermark),
                })
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            catalog: RwLock::new(Arc::new(catalog)),
            cache: PlanCache::new(config.plan_cache_capacity),
            metrics: MetricsRecorder::default(),
            traces: TraceRing::new(config.trace_ring_capacity),
            in_flight: AtomicUsize::new(0),
            worker_handles: Mutex::new(Vec::new()),
            worker_seq: AtomicUsize::new(config.workers),
            mutation_lock: Mutex::new(()),
            mutations_applied: AtomicU64::new(0),
            store,
            spill,
            recovery,
            cfg: config.clone(),
            started: Instant::now(),
        });
        for i in 0..shared.cfg.workers {
            spawn_worker(&shared, format!("fj-worker-{i}"));
        }
        Ok(QueryService { shared })
    }

    /// Enqueues a query under the service's default optimizer config.
    /// Blocks while the queue is full — that is the backpressure.
    pub fn submit(&self, query: JoinQuery) -> Result<Ticket, RuntimeError> {
        self.submit_with_config(query, self.shared.cfg.optimizer)
    }

    /// Enqueues under an overridden optimizer config (cached separately:
    /// the config is part of the plan fingerprint).
    pub fn submit_with_config(
        &self,
        query: JoinQuery,
        config: OptimizerConfig,
    ) -> Result<Ticket, RuntimeError> {
        self.submit_with_options(query, config, self.shared.cfg.collect_trace)
    }

    /// Fully explicit blocking submit: optimizer config and whether
    /// this query records a per-operator trace (overriding
    /// [`ServiceConfig::collect_trace`] either way).
    pub fn submit_with_options(
        &self,
        query: JoinQuery,
        config: OptimizerConfig,
        collect_trace: bool,
    ) -> Result<Ticket, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        let interrupt = Interrupt::new();
        let job = Job::Query(QueryJob {
            query,
            config,
            collect_trace,
            interrupt: interrupt.clone(),
            reply: tx,
        });
        match self.shared.queue.push(job) {
            Ok(()) => Ok(Ticket { rx, interrupt }),
            Err(_) => Err(RuntimeError::ShuttingDown),
        }
    }

    /// Non-blocking submit: fails with [`RuntimeError::QueueFull`]
    /// instead of applying backpressure.
    pub fn try_submit(&self, query: JoinQuery) -> Result<Ticket, RuntimeError> {
        self.try_submit_with_config(query, self.shared.cfg.optimizer)
    }

    /// Non-blocking submit under an overridden optimizer config — the
    /// admission-control path network front ends use: a full queue is
    /// reported as a retryable error at the edge instead of blocking a
    /// connection handler.
    pub fn try_submit_with_config(
        &self,
        query: JoinQuery,
        config: OptimizerConfig,
    ) -> Result<Ticket, RuntimeError> {
        self.try_submit_with_options(query, config, self.shared.cfg.collect_trace)
    }

    /// Fully explicit non-blocking submit — the path the `fj-net`
    /// server uses when a client sets the TRACE flag on one query.
    pub fn try_submit_with_options(
        &self,
        query: JoinQuery,
        config: OptimizerConfig,
        collect_trace: bool,
    ) -> Result<Ticket, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        let interrupt = Interrupt::new();
        let job = Job::Query(QueryJob {
            query,
            config,
            collect_trace,
            interrupt: interrupt.clone(),
            reply: tx,
        });
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(Ticket { rx, interrupt }),
            Err(PushError::Full) => Err(RuntimeError::QueueFull),
            Err(PushError::Closed) => Err(RuntimeError::ShuttingDown),
        }
    }

    /// Submit + wait: the synchronous convenience path.
    pub fn execute(&self, query: JoinQuery) -> Result<QueryResult, RuntimeError> {
        self.submit(query)?.wait()
    }

    /// Enqueues a mutation (INSERT/UPDATE/DELETE). Blocks while the
    /// queue is full, like [`submit`](QueryService::submit). In disk
    /// mode the mutation commits through the store's WAL before it
    /// becomes visible; in memory it swaps the catalog table in place.
    /// Either way the mutated table's plans go stale via its
    /// [`relation_version`](Catalog::relation_version) while every
    /// other cached plan stays warm.
    pub fn submit_mutation(&self, mutation: Mutation) -> Result<MutationTicket, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        let interrupt = Interrupt::new();
        let job = Job::Mutation(MutationJob {
            mutation,
            interrupt: interrupt.clone(),
            reply: tx,
        });
        match self.shared.queue.push(job) {
            Ok(()) => Ok(MutationTicket { rx, interrupt }),
            Err(_) => Err(RuntimeError::ShuttingDown),
        }
    }

    /// Non-blocking mutation submit: fails with
    /// [`RuntimeError::QueueFull`] instead of applying backpressure —
    /// the admission-control path the network front end uses.
    pub fn try_submit_mutation(&self, mutation: Mutation) -> Result<MutationTicket, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        let interrupt = Interrupt::new();
        let job = Job::Mutation(MutationJob {
            mutation,
            interrupt: interrupt.clone(),
            reply: tx,
        });
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(MutationTicket { rx, interrupt }),
            Err(PushError::Full) => Err(RuntimeError::QueueFull),
            Err(PushError::Closed) => Err(RuntimeError::ShuttingDown),
        }
    }

    /// Submit + wait for a mutation: the synchronous convenience path.
    pub fn execute_mutation(&self, mutation: Mutation) -> Result<MutationStats, RuntimeError> {
        self.submit_mutation(mutation)?.wait()
    }

    /// Atomically installs a new catalog snapshot. Queries already
    /// executing finish against the snapshot they started with; the
    /// plan cache is cleared (its keys are dead anyway — the epoch is
    /// part of every fingerprint).
    pub fn install_catalog(&self, catalog: Catalog) {
        if let Err(e) = self.try_install_catalog(catalog) {
            panic!("failed to install catalog: {e}");
        }
    }

    /// Fallible catalog install. In disk mode the new catalog is
    /// reconciled with the store first (new tables are persisted and
    /// backed, previously committed ones recover from disk), which can
    /// fail with [`RuntimeError::Storage`]; in-memory installs never
    /// error.
    pub fn try_install_catalog(&self, catalog: Catalog) -> Result<(), RuntimeError> {
        let catalog = match &self.shared.store {
            Some(store) => build_disk_catalog(catalog, store)?,
            None => catalog,
        };
        *self
            .shared
            .catalog
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Arc::new(catalog);
        self.shared.cache.clear();
        Ok(())
    }

    /// The current catalog snapshot (as queries would see it).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.shared.snapshot()
    }

    /// The health snapshot a replica router probes for: pool strength,
    /// replacements, and queue pressure, without the histogram copy a
    /// full [`QueryService::metrics`] snapshot carries.
    pub fn health(&self) -> ServiceHealth {
        let store = self.store_stats();
        let temp = self.spill_stats();
        ServiceHealth {
            workers: self.shared.cfg.workers,
            workers_replaced: self.shared.metrics.workers_replaced(),
            queued: self.shared.queue.len(),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            queue_capacity: self.shared.cfg.queue_capacity,
            pool_hits: store.pool_hits,
            pool_misses: store.pool_misses,
            pool_evictions: store.pool_evictions,
            wal_fsyncs: store.wal_fsyncs,
            fragments_served: self.shared.metrics.fragments_served(),
            semijoin_sets_shipped: self.shared.metrics.semijoin_sets_shipped(),
            bytes_scattered: self.shared.metrics.bytes_scattered(),
            bytes_gathered: self.shared.metrics.bytes_gathered(),
            mutations_applied: self.shared.mutations_applied.load(Ordering::Relaxed),
            wal_deltas: store.wal_deltas,
            dirty_pages: store.dirty_pages,
            checkpoints: store.checkpoints,
            spills: self.shared.metrics.spills(),
            spill_partitions: self.shared.metrics.spill_partitions(),
            spill_bytes_written: temp.bytes_written,
            spill_bytes_read: temp.bytes_read,
            peak_temp_bytes: temp.peak_bytes,
        }
    }

    /// The live metrics recorder, for layers above the service (e.g.
    /// the network server) that observe events the service itself
    /// cannot see — scattered partitions, shipped semijoin sets,
    /// gathered fragment bytes.
    pub fn metrics_recorder(&self) -> &crate::metrics::MetricsRecorder {
        &self.shared.metrics
    }

    /// The disk store's counter snapshot — all zeros in in-memory mode,
    /// so callers can difference without caring about the mode.
    pub fn store_stats(&self) -> StoreStats {
        self.shared
            .store
            .as_deref()
            .map(Store::stats)
            .unwrap_or_default()
    }

    /// The spill temp store's counter snapshot — all zeros when
    /// spilling is off, so callers can difference without caring.
    pub fn spill_stats(&self) -> TempStoreStats {
        self.shared
            .spill
            .as_ref()
            .map(|s| s.temp.stats())
            .unwrap_or_default()
    }

    /// The spill temp store itself (chaos harnesses verify its
    /// directory drains); `None` when spilling is off.
    pub fn spill_temp_store(&self) -> Option<&Arc<TempStore>> {
        self.shared.spill.as_ref().map(|s| &s.temp)
    }

    /// The memory broker arbitrating the soft watermark; `None` when
    /// spilling is off.
    pub fn memory_broker(&self) -> Option<&Arc<MemoryBroker>> {
        self.shared.spill.as_ref().map(|s| &s.broker)
    }

    /// The disk store itself (checkpointing, cold-start pool clears in
    /// tests); `None` in in-memory mode.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.shared.store.as_ref()
    }

    /// What recovery found at startup; `None` in in-memory mode.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.recovery
    }

    /// Checkpoints the disk store (scrub + manifest publish + WAL
    /// truncate); a no-op in in-memory mode.
    pub fn checkpoint(&self) -> Result<(), RuntimeError> {
        match &self.shared.store {
            Some(store) => store
                .checkpoint()
                .map_err(|e| RuntimeError::Storage(e.to_string())),
            None => Ok(()),
        }
    }

    /// The most recent per-query traces (oldest first, bounded by
    /// [`ServiceConfig::trace_ring_capacity`]). Only queries that ran
    /// with tracing on appear here.
    pub fn recent_traces(&self) -> Vec<TracedQuery> {
        self.shared.traces.recent()
    }

    /// The recent traces as a JSON array (stable key order, same
    /// discipline as [`RuntimeMetrics::to_json`]).
    pub fn recent_traces_json(&self) -> String {
        self.shared.traces.to_json()
    }

    /// Live service metrics.
    pub fn metrics(&self) -> RuntimeMetrics {
        let cache = self.shared.cache.stats();
        let uptime = self.shared.started.elapsed().as_secs_f64();
        let completed = self.shared.metrics.completed();
        let store = self.store_stats();
        let temp = self.spill_stats();
        RuntimeMetrics {
            completed,
            errors: self.shared.metrics.errors(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            cache_entries: cache.entries,
            cancelled: self.shared.metrics.cancelled(),
            interrupted_by_budget: self.shared.metrics.interrupted_by_budget(),
            workers_replaced: self.shared.metrics.workers_replaced(),
            workers: self.shared.cfg.workers,
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            traces_recorded: self.shared.traces.recorded(),
            pool_hits: store.pool_hits,
            pool_misses: store.pool_misses,
            pool_evictions: store.pool_evictions,
            wal_fsyncs: store.wal_fsyncs,
            fragments_served: self.shared.metrics.fragments_served(),
            semijoin_sets_shipped: self.shared.metrics.semijoin_sets_shipped(),
            bytes_scattered: self.shared.metrics.bytes_scattered(),
            bytes_gathered: self.shared.metrics.bytes_gathered(),
            mutations_applied: self.shared.mutations_applied.load(Ordering::Relaxed),
            wal_deltas: store.wal_deltas,
            dirty_pages: store.dirty_pages,
            dirty_writebacks: store.dirty_writebacks,
            checkpoints: store.checkpoints,
            spills: self.shared.metrics.spills(),
            spill_partitions: self.shared.metrics.spill_partitions(),
            spill_bytes_written: temp.bytes_written,
            spill_bytes_read: temp.bytes_read,
            peak_temp_bytes: temp.peak_bytes,
            queue_depth: self.shared.queue.len() + self.shared.in_flight.load(Ordering::Relaxed),
            uptime_secs: uptime,
            throughput_qps: if uptime > 0.0 {
                completed as f64 / uptime
            } else {
                0.0
            },
            latency: self.shared.metrics.histogram(),
        }
    }

    /// Stops accepting new queries, drains the queue, and joins the
    /// workers. Every accepted query still gets its reply.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        // A panicking worker pushes its replacement's handle while we
        // drain, so keep draining until the vector stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut guard = self
                    .shared
                    .worker_handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for w in handles {
                let _ = w.join();
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Spawns a worker thread and registers its handle for shutdown.
fn spawn_worker(shared: &Arc<Shared>, name: String) {
    let cloned = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&cloned))
        .expect("spawn query-service worker");
    shared
        .worker_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let keep_going = match job {
            Job::Query(job) => run_query_job(shared, job),
            Job::Mutation(job) => run_mutation_job(shared, job),
        };
        if !keep_going {
            // This worker's stack may be poisoned by whatever
            // panicked; the fresh replacement takes over.
            return;
        }
    }
}

fn run_query_job(shared: &Arc<Shared>, job: QueryJob) -> bool {
    // Cancelled while still queued: report without ever executing.
    if let Some(reason) = job.interrupt.tripped() {
        shared.metrics.record_interrupt(reason);
        shared.metrics.record(Duration::ZERO, false);
        let _ = job.reply.send(Err(RuntimeError::Interrupted(reason)));
        return true;
    }
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    // Self-healing: a panic inside the engine is caught, reported
    // on this query's ticket, and answered by respawning a
    // replacement worker so pool capacity never degrades.
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(shared, &job)));
    let latency = t0.elapsed();
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(result) => {
            shared.metrics.record(latency, result.is_ok());
            if let Err(RuntimeError::Interrupted(reason)) = &result {
                shared.metrics.record_interrupt(*reason);
            }
            let result = result.map(|mut r| {
                r.latency_micros = latency.as_micros() as u64;
                r
            });
            // A dropped ticket just means the submitter stopped caring.
            let _ = job.reply.send(result);
            true
        }
        Err(payload) => {
            shared.metrics.record(latency, false);
            let msg = panic_message(payload.as_ref());
            // Replace first, answer second: by the time the caller
            // observes WorkerPanicked on its ticket, the pool is
            // back at strength and `workers_replaced` reflects it.
            shared.metrics.record_worker_replaced();
            let id = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
            spawn_worker(shared, format!("fj-worker-{id}"));
            let _ = job.reply.send(Err(RuntimeError::WorkerPanicked(msg)));
            false
        }
    }
}

fn run_mutation_job(shared: &Arc<Shared>, job: MutationJob) -> bool {
    // Cancelled while still queued: never touches any state.
    if let Some(reason) = job.interrupt.tripped() {
        shared.metrics.record_interrupt(reason);
        shared.metrics.record(Duration::ZERO, false);
        let _ = job.reply.send(Err(RuntimeError::Interrupted(reason)));
        return true;
    }
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        apply_mutation(shared, &job)
    }));
    let latency = t0.elapsed();
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(result) => {
            shared.metrics.record(latency, result.is_ok());
            if result.is_ok() {
                shared.mutations_applied.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(RuntimeError::Interrupted(reason)) = &result {
                shared.metrics.record_interrupt(*reason);
            }
            let _ = job.reply.send(result);
            true
        }
        Err(payload) => {
            shared.metrics.record(latency, false);
            let msg = panic_message(payload.as_ref());
            shared.metrics.record_worker_replaced();
            let id = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
            spawn_worker(shared, format!("fj-worker-{id}"));
            let _ = job.reply.send(Err(RuntimeError::WorkerPanicked(msg)));
            false
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Optimize (through the cache) + execute one query against the current
/// snapshot. Mirrors `Database::execute_with_config`, with the catalog
/// shared instead of cloned per call.
fn execute_job(shared: &Shared, job: &QueryJob) -> Result<QueryResult, RuntimeError> {
    let query = &job.query;
    let config = job.config;
    let catalog = shared.snapshot();
    let key = fingerprint(&catalog, query, &config);
    let (plan, cache_hit) = match shared.cache.get(key) {
        Some(plan) => (plan, true),
        None => {
            let plan = Arc::new(Optimizer::new(Arc::clone(&catalog), config).optimize(query)?);
            shared.cache.insert(key, Arc::clone(&plan));
            (plan, false)
        }
    };

    let mut ctx = ExecCtx::new(catalog)
        .with_memory_pages(shared.cfg.memory_pages)
        .with_threads(shared.cfg.intra_query_threads)
        .with_interrupt(job.interrupt.clone());
    if let Some(rows) = shared.cfg.row_budget {
        ctx = ctx.with_row_budget(rows);
    }
    if let Some(pages) = shared.cfg.memory_budget_pages {
        ctx = ctx.with_memory_budget_pages(pages);
    }
    if let Some(faults) = &shared.cfg.fault_plan {
        ctx = ctx.with_faults(Arc::clone(faults));
    }
    if let Some(spill) = &shared.spill {
        ctx = ctx.with_spill(
            SpillCtx::new(Arc::clone(&spill.temp), Arc::clone(&spill.broker))
                .with_max_depth(shared.cfg.spill_max_recursion_depth),
        );
    }
    if let Some(store) = &shared.store {
        let store = Arc::clone(store);
        ctx = ctx.with_pool_probe(PoolProbe::new(move || {
            let stats = store.stats();
            (stats.pool_hits, stats.pool_misses)
        }));
    }
    let collector = job.collect_trace.then(|| Arc::new(TraceCollector::new()));
    if let Some(c) = &collector {
        ctx = ctx.with_tracer(Arc::clone(c));
    }
    let before = ctx.ledger.snapshot();
    let result = plan.phys.execute(&ctx);
    // Spill activity counts even for queries that end up interrupted
    // mid-spill — the temp I/O happened either way.
    let spilled = ctx.spill_snapshot();
    shared
        .metrics
        .record_spill_activity(spilled.spills, spilled.partitions);
    let rel = result.map_err(OptError::from)?;
    let charges = ctx.ledger.snapshot().delta(&before);
    let trace = collector.and_then(|c| c.finish());
    if let Some(t) = &trace {
        shared.traces.push(TracedQuery {
            query: query_tag(query),
            trace: t.clone(),
        });
    }
    let measured_cost = charges.weighted(
        config.params.cpu_weight,
        config.params.network.per_byte,
        config.params.network.per_message,
    );
    Ok(QueryResult {
        schema: rel.schema,
        rows: rel.rows,
        charges,
        measured_cost,
        estimated_cost: Some(plan.cost),
        plan: plan.phys.clone(),
        order: plan.order.clone(),
        sips: plan.sips.clone(),
        filter_join_costs: plan.filter_join_costs.clone(),
        cache_hit,
        latency_micros: 0,
        trace,
    })
}

/// Applies one mutation end to end: commit it to the storage layer
/// (WAL-durable in disk mode, pure apply in memory), rebuild the
/// mutated table fresh — statistics re-analyzed from the new rows,
/// indexes recreated, the store's buffer pool reattached — and swap it
/// into the live catalog via [`Catalog::replace_table`]. The plan
/// cache is *not* cleared: the mutated relation's bumped version
/// already invalidates exactly the plans that read it.
fn apply_mutation(shared: &Shared, job: &MutationJob) -> Result<MutationStats, RuntimeError> {
    // Serialize mutations: the read→apply→install window must not
    // interleave with another mutation's (lost-update hazard).
    let _serialize = shared
        .mutation_lock
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let mutation = &job.mutation;
    let name = mutation.table();
    let interrupt = job.interrupt.clone();
    let cancelled = move || interrupt.tripped().is_some();
    let interrupted = |job: &MutationJob| {
        RuntimeError::Interrupted(
            job.interrupt
                .tripped()
                .unwrap_or(InterruptReason::Cancelled),
        )
    };

    match &shared.store {
        Some(store) => {
            // Disk mode: the store's WAL commit is the atomic point. A
            // cancellation before it leaves zero state anywhere.
            let result = store.mutate(mutation, &cancelled).map_err(|e| match e {
                StoreError::Cancelled => interrupted(job),
                other => RuntimeError::Storage(other.to_string()),
            })?;
            let (schema, rows) = store
                .recovered_rows(name)
                .map_err(|e| RuntimeError::Storage(e.to_string()))?;
            debug_assert_eq!(rows.len() as u64, result.row_count);
            install_mutated_table(shared, name, schema, rows, Some(store))?;
            Ok(MutationStats {
                rows_affected: result.rows_affected,
                row_count: result.row_count,
                version: result.version,
            })
        }
        None => {
            // In-memory mode: pure apply against the current snapshot,
            // then swap. The final cancel poll sits right before the
            // install — the in-memory "commit point".
            let catalog = shared.snapshot();
            let old = catalog
                .table(name)
                .map_err(|e| RuntimeError::Storage(e.to_string()))?;
            let (rows, rows_affected) = mutation.apply(old.schema(), old.rows()).map_err(|e| {
                RuntimeError::Storage(format!("{} on '{name}': {e}", mutation.verb()))
            })?;
            if cancelled() {
                return Err(interrupted(job));
            }
            let row_count = rows.len() as u64;
            let version =
                install_mutated_table(shared, name, (**old.schema()).clone(), rows, None)?;
            Ok(MutationStats {
                rows_affected,
                row_count,
                version,
            })
        }
    }
}

/// Swaps a freshly mutated table into the live catalog: rebuilds it
/// from `rows` (statistics re-analyzed on construction), recreates the
/// old table's hash/B-tree indexes, reattaches the disk store's buffer
/// pool when there is one, and installs it with
/// [`Catalog::replace_table`] under the catalog write lock. Returns
/// the relation's new catalog data version.
fn install_mutated_table(
    shared: &Shared,
    name: &str,
    schema: fj_storage::Schema,
    rows: Vec<fj_storage::Tuple>,
    store: Option<&Arc<Store>>,
) -> Result<u64, RuntimeError> {
    let storage_err = |e: fj_storage::StorageError| RuntimeError::Storage(e.to_string());
    let mut guard = shared.catalog.write().unwrap_or_else(|e| e.into_inner());
    let old = guard.table(name).ok();
    let mut table = Table::new(name, schema, rows).map_err(storage_err)?;
    if let Some(old) = &old {
        for col in old.hash_indexed_columns() {
            table.create_hash_index(col).map_err(storage_err)?;
        }
        for col in old.btree_indexed_columns() {
            table.create_btree_index(col).map_err(storage_err)?;
        }
    }
    if let Some(backing) = store.and_then(|s| s.backing_for(name)) {
        table.attach_backing(backing);
    }
    let mut catalog = (**guard).clone();
    catalog.replace_table(table.into_ref());
    let version = catalog.relation_version(name);
    *guard = Arc::new(catalog);
    Ok(version)
}

/// Reconciles a catalog template with a disk store and returns the
/// disk-backed catalog a service executes against.
///
/// For every base table (local or remote) in the template:
///
/// * already committed in the store with the same schema → the
///   *recovered* rows are authoritative (they survived the crash; the
///   template's copy is discarded).
/// * committed but with a *different* schema → the template wins: the
///   table is reloaded as a log-structured replacement (fresh
///   `table_id`, bumped version), exactly like reloading a name in the
///   store itself. Installing a reshaped catalog over an old data
///   directory is a redeploy, not an error.
/// * unknown to the store → the template's rows are loaded (WAL +
///   page file + commit marker) so the next restart recovers them.
///
/// Each table is then rebuilt as a *fresh* [`Table`] — catalog clones
/// share `Arc<Table>`, so mutating the template in place would leak
/// backings into unrelated in-memory catalogs — with the template's
/// hash/B-tree indexes recreated and the store's buffer pool attached
/// as its [`fj_storage::PageBacking`]. Committed tables the template
/// does not mention (loaded by a previous catalog generation) are
/// recovered and served too, index-less.
///
/// Views, UDFs, and the network model pass through unchanged.
fn build_disk_catalog(template: Catalog, store: &Store) -> Result<Catalog, RuntimeError> {
    let storage_err = |e: fj_store::StoreError| RuntimeError::Storage(e.to_string());
    let mut catalog = template.clone();
    let template_tables: Vec<(TableRef, SiteId)> = template
        .relation_names()
        .iter()
        .filter_map(|name| match template.resolve(name) {
            Ok(RelationKind::Base(t)) => Some((t, SiteId::LOCAL)),
            Ok(RelationKind::Remote(t, site)) => Some((t, site)),
            _ => None,
        })
        .collect();
    for (tmpl, site) in &template_tables {
        let name = tmpl.name().to_string();
        let recovered = if store.has_table(&name) {
            let (schema, rows) = store.recovered_rows(&name).map_err(storage_err)?;
            (schema == **tmpl.schema()).then_some(rows)
        } else {
            None
        };
        let rows = match recovered {
            Some(rows) => rows,
            None => {
                // Unknown name, or a schema change: (re)load the
                // template's copy as a log-structured replacement.
                store.load_table(tmpl).map_err(storage_err)?;
                tmpl.rows().to_vec()
            }
        };
        let mut table = Table::new(&name, (**tmpl.schema()).clone(), rows)
            .map_err(|e| RuntimeError::Storage(e.to_string()))?;
        for col in tmpl.hash_indexed_columns() {
            table
                .create_hash_index(col)
                .map_err(|e| RuntimeError::Storage(e.to_string()))?;
        }
        for col in tmpl.btree_indexed_columns() {
            table
                .create_btree_index(col)
                .map_err(|e| RuntimeError::Storage(e.to_string()))?;
        }
        if let Some(backing) = store.backing_for(&name) {
            table.attach_backing(backing);
        }
        let table = table.into_ref();
        if *site == SiteId::LOCAL {
            catalog.add_table(table);
        } else {
            catalog.add_remote_table(table, *site);
        }
    }
    // Committed tables the template never mentioned: recover and serve.
    for name in store.table_names() {
        if template_tables.iter().any(|(t, _)| t.name() == name) {
            continue;
        }
        let (schema, rows) = store.recovered_rows(&name).map_err(storage_err)?;
        let table =
            Table::new(&name, schema, rows).map_err(|e| RuntimeError::Storage(e.to_string()))?;
        if let Some(backing) = store.backing_for(&name) {
            table.attach_backing(backing);
        }
        catalog.add_table(table.into_ref());
    }
    Ok(catalog)
}

/// A short human-readable tag for a query in the trace ring: its FROM
/// list ("Emp AS E, Dept AS D, DepAvgSal AS V").
fn query_tag(query: &JoinQuery) -> String {
    query
        .from
        .iter()
        .map(|f| format!("{} AS {}", f.relation, f.alias))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServiceConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_knobs_rejected_by_validate() {
        for mutate in [
            (|c: &mut ServiceConfig| c.workers = 0) as fn(&mut ServiceConfig),
            |c| c.queue_capacity = 0,
            |c| c.intra_query_threads = 0,
            |c| c.plan_cache_capacity = 0,
            |c| c.memory_pages = 0,
            |c| c.trace_ring_capacity = 0,
            |c| c.spill_soft_watermark_pages = Some(0),
            |c| c.spill_max_recursion_depth = 0,
        ] {
            let mut cfg = ServiceConfig::default();
            mutate(&mut cfg);
            assert!(
                matches!(cfg.validate(), Err(RuntimeError::InvalidConfig(_))),
                "zeroed knob must fail validation"
            );
        }
    }

    #[test]
    fn normalized_clamps_every_zero_knob_to_one() {
        let cfg = ServiceConfig {
            workers: 0,
            queue_capacity: 0,
            intra_query_threads: 0,
            memory_pages: 0,
            plan_cache_capacity: 0,
            trace_ring_capacity: 0,
            spill_soft_watermark_pages: Some(0),
            spill_max_recursion_depth: 0,
            ..ServiceConfig::default()
        }
        .normalized();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.intra_query_threads, 1);
        assert_eq!(cfg.plan_cache_capacity, 1);
        assert_eq!(cfg.memory_pages, 1);
        assert_eq!(cfg.trace_ring_capacity, 1);
        assert_eq!(cfg.spill_soft_watermark_pages, Some(1));
        assert_eq!(cfg.spill_max_recursion_depth, 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn spilling_off_is_the_default_and_validates() {
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.spill_soft_watermark_pages, None);
        assert_eq!(
            cfg.spill_max_recursion_depth,
            fj_exec::DEFAULT_SPILL_MAX_DEPTH
        );
        // `None` watermark stays `None` through normalization: spilling
        // never turns itself on.
        assert_eq!(cfg.normalized().spill_soft_watermark_pages, None);
    }

    #[test]
    fn health_reflects_pool_shape_and_idle_queue() {
        let service = QueryService::start(
            fj_algebra::fixtures::paper_catalog(),
            ServiceConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServiceConfig::default()
            },
        );
        let h = service.health();
        assert_eq!(h.workers, 2);
        assert_eq!(h.queue_capacity, 8);
        assert_eq!(h.workers_replaced, 0);
        assert_eq!(h.queued, 0);
        assert!(!h.saturated());
        // After a completed query the pool is idle again.
        service
            .execute(fj_algebra::fixtures::paper_query())
            .unwrap();
        let h = service.health();
        assert_eq!(h.in_flight, 0);
        assert_eq!(h.queued, 0);
        service.shutdown();
    }

    use fj_algebra::FromItem;
    use fj_storage::{DataType, TableBuilder, Value};

    fn labeled_table(name: &str, rows: usize) -> TableRef {
        TableBuilder::new(name)
            .column("id", DataType::Int)
            .column("label", DataType::Str)
            .rows((0..rows).map(|i| vec![Value::Int(i as i64), Value::Str(format!("r{i}"))]))
            .build()
            .unwrap()
            .into_ref()
    }

    fn two_table_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(labeled_table("A", 4));
        cat.add_table(labeled_table("B", 4));
        cat
    }

    fn scan(name: &str) -> JoinQuery {
        JoinQuery::new(vec![FromItem::new(name, name)])
    }

    fn insert_one(table: &str, id: i64) -> Mutation {
        Mutation::Insert {
            table: table.into(),
            rows: vec![vec![Value::Int(id), Value::Str(format!("new-{id}"))]],
        }
    }

    #[test]
    fn mutation_swaps_table_and_keeps_unrelated_plans_warm() {
        let service = QueryService::start(two_table_catalog(), ServiceConfig::default());
        service.execute(scan("A")).unwrap(); // cold: optimize + cache
        assert!(service.execute(scan("A")).unwrap().cache_hit);

        // Mutating B must not evict A's cached plan.
        let stats = service.execute_mutation(insert_one("B", 100)).unwrap();
        assert_eq!((stats.rows_affected, stats.row_count), (1, 5));
        assert_eq!(stats.version, 1);
        assert!(
            service.execute(scan("A")).unwrap().cache_hit,
            "plan over A stays warm across a mutation of B"
        );
        assert_eq!(service.execute(scan("B")).unwrap().rows.len(), 5);

        // Mutating A invalidates exactly A's plan — and the re-optimized
        // query sees the new rows.
        service.execute_mutation(insert_one("A", 200)).unwrap();
        let r = service.execute(scan("A")).unwrap();
        assert!(!r.cache_hit, "mutated relation's plan must go stale");
        assert_eq!(r.rows.len(), 5);

        let h = service.health();
        assert_eq!(h.mutations_applied, 2);
        assert_eq!(service.metrics().mutations_applied, 2);
        service.shutdown();
    }

    #[test]
    fn mutation_on_unknown_table_is_an_error_not_a_panic() {
        let service = QueryService::start(two_table_catalog(), ServiceConfig::default());
        let err = service
            .execute_mutation(insert_one("Ghost", 1))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Storage(_)));
        assert_eq!(service.metrics().workers_replaced, 0);
        service.shutdown();
    }

    #[test]
    fn cancelled_mutation_never_leaves_partial_state() {
        // The cancel races the worker; whichever side wins, the visible
        // state must exactly match the reported outcome — a cancelled
        // mutation leaves no trace, a committed one is fully visible.
        let service = QueryService::start(two_table_catalog(), ServiceConfig::default());
        let mut expected = 4u64;
        for i in 0..20 {
            let ticket = service.submit_mutation(insert_one("A", 1000 + i)).unwrap();
            ticket.cancel();
            match ticket.wait() {
                Ok(stats) => {
                    expected += 1;
                    assert_eq!(stats.row_count, expected);
                }
                Err(RuntimeError::Interrupted(_)) => {}
                Err(other) => panic!("unexpected mutation outcome: {other}"),
            }
            let rows = service.execute(scan("A")).unwrap().rows.len() as u64;
            assert_eq!(rows, expected, "state must match the reported outcome");
        }
        service.shutdown();
    }

    #[test]
    fn disk_mutations_survive_restart() {
        let dir = fj_store::TempDir::new("svc-mut-restart");
        let cfg = || ServiceConfig {
            workers: 2,
            storage: StorageMode::Disk {
                dir: dir.path().to_path_buf(),
                pool_pages: 64,
            },
            ..ServiceConfig::default()
        };
        {
            let service = QueryService::try_start(two_table_catalog(), cfg()).unwrap();
            let stats = service.execute_mutation(insert_one("A", 500)).unwrap();
            assert_eq!(stats.row_count, 5);
            assert!(stats.version >= 2, "store version bumps past the load");
            let m = service.metrics();
            assert_eq!(m.mutations_applied, 1);
            assert!(m.wal_deltas > 0, "the mutation logged page deltas");
            service.shutdown();
        }
        // Restart from the data directory with the *pre-mutation*
        // template: the recovered (mutated) rows are authoritative.
        let service = QueryService::try_start(two_table_catalog(), cfg()).unwrap();
        assert!(service.recovery_report().unwrap().replayed_mutations >= 1);
        assert_eq!(service.execute(scan("A")).unwrap().rows.len(), 5);
        assert_eq!(service.execute(scan("B")).unwrap().rows.len(), 4);
        service.shutdown();
    }

    #[test]
    fn disk_template_schema_change_reloads_instead_of_rejecting() {
        let dir = fj_store::TempDir::new("svc-reshape");
        let cfg = || ServiceConfig {
            storage: StorageMode::Disk {
                dir: dir.path().to_path_buf(),
                pool_pages: 64,
            },
            ..ServiceConfig::default()
        };
        {
            let service = QueryService::try_start(two_table_catalog(), cfg()).unwrap();
            service.shutdown();
        }
        // Same name, different shape: the reshaped template must win as
        // a log-structured replacement, not error out.
        let mut cat = Catalog::new();
        let reshaped = TableBuilder::new("A")
            .column("only", DataType::Int)
            .rows((0..7).map(|i| vec![Value::Int(i)]))
            .build()
            .unwrap()
            .into_ref();
        cat.add_table(reshaped);
        let service = QueryService::try_start(cat, cfg()).unwrap();
        let r = service.execute(scan("A")).unwrap();
        assert_eq!(r.rows.len(), 7);
        assert_eq!(r.schema.arity(), 1);
        service.shutdown();
    }

    #[test]
    fn spilling_service_completes_queries_the_governor_would_kill() {
        let catalog = || {
            let mut cat = Catalog::new();
            cat.add_table(labeled_table("Big", 600));
            cat.add_table(labeled_table("Wide", 600));
            cat
        };
        let join = || {
            JoinQuery::new(vec![FromItem::new("Big", "b"), FromItem::new("Wide", "w")])
                .with_predicate(fj_expr::col("b.id").eq(fj_expr::col("w.id")))
        };
        let tight = ServiceConfig {
            memory_pages: 4,
            memory_budget_pages: Some(5),
            ..ServiceConfig::default()
        };

        // Seed behavior: the materialization governor kills the join.
        let service = QueryService::start(catalog(), tight.clone());
        let err = service.execute(join()).unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Interrupted(InterruptReason::MemoryBudget)
            ),
            "expected a MemoryBudget kill, got: {err}"
        );
        service.shutdown();

        // Same budget with spilling on: the join completes, the spill
        // counters surface through metrics *and* health, and the temp
        // directory drains behind the query.
        let service = QueryService::start(
            catalog(),
            ServiceConfig {
                spill_soft_watermark_pages: Some(8),
                ..tight
            },
        );
        let rows = service.execute(join()).unwrap().rows;
        assert_eq!(rows.len(), 600);
        let m = service.metrics();
        assert!(m.spills > 0, "the join must actually have spilled");
        assert!(m.spill_partitions > 0);
        assert!(m.spill_bytes_written > 0);
        assert!(m.spill_bytes_read > 0);
        assert!(m.peak_temp_bytes > 0);
        let h = service.health();
        assert_eq!(h.spills, m.spills);
        assert_eq!(h.spill_partitions, m.spill_partitions);
        assert_eq!(h.spill_bytes_written, m.spill_bytes_written);
        assert_eq!(h.spill_bytes_read, m.spill_bytes_read);
        assert_eq!(h.peak_temp_bytes, m.peak_temp_bytes);
        assert_eq!(
            service
                .spill_temp_store()
                .unwrap()
                .live_files_on_disk()
                .unwrap(),
            0,
            "spill temp files are RAII-deleted once the query finishes"
        );
        let broker = service.memory_broker().unwrap();
        assert_eq!(broker.in_use_pages(), 0, "all grants released");
        service.shutdown();
    }

    #[test]
    fn normalized_preserves_non_zero_knobs() {
        let cfg = ServiceConfig {
            workers: 7,
            queue_capacity: 9,
            ..ServiceConfig::default()
        }
        .normalized();
        assert_eq!(cfg.workers, 7);
        assert_eq!(cfg.queue_capacity, 9);
    }
}
