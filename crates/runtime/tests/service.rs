//! Integration tests for the concurrent query service: concurrent
//! correctness vs serial execution, plan-cache semantics, catalog
//! invalidation, and ledger reconciliation under intra-query
//! parallelism.

use fj_algebra::fixtures::{paper_catalog, paper_query};
use fj_algebra::{Catalog, FromItem, JoinQuery};
use fj_core::Database;
use fj_expr::{col, lit};
use fj_runtime::{InterruptReason, QueryService, RuntimeError, ServiceConfig};
use fj_storage::{DataType, TableBuilder, Tuple, Value};

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// The paper query with a tweakable age threshold, so distinct
/// constants yield distinct queries (and distinct fingerprints).
fn query_with_age(age: i64) -> JoinQuery {
    JoinQuery::new(vec![
        FromItem::new("Emp", "E"),
        FromItem::new("Dept", "D"),
        FromItem::new("DepAvgSal", "V"),
    ])
    .with_predicate(
        col("E.did")
            .eq(col("D.did"))
            .and(col("E.did").eq(col("V.did")))
            .and(col("E.sal").gt(col("V.avgsal")))
            .and(col("E.age").lt(lit(age))),
    )
}

#[test]
fn sixty_four_concurrent_queries_match_serial() {
    // 8 distinct queries × 8 repetitions = 64 in-flight submissions
    // through a queue of 16 (so submit() also exercises backpressure),
    // drained by 4 workers.
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    let serial = Database::with_catalog(paper_catalog());
    let ages: Vec<i64> = (0..8).map(|i| 24 + i).collect();
    let expected: Vec<Vec<Tuple>> = ages
        .iter()
        .map(|&a| sorted(serial.execute(&query_with_age(a)).unwrap().rows))
        .collect();

    let tickets: Vec<(usize, fj_runtime::Ticket)> = (0..64)
        .map(|i| {
            let which = i % ages.len();
            (which, service.submit(query_with_age(ages[which])).unwrap())
        })
        .collect();
    for (which, ticket) in tickets {
        let result = ticket.wait().unwrap();
        assert_eq!(
            sorted(result.rows),
            expected[which],
            "query variant {which} diverged from serial execution"
        );
    }

    let m = service.metrics();
    assert_eq!(m.completed, 64);
    assert_eq!(m.errors, 0);
    assert!(
        m.cache_hits > 0,
        "64 submissions of 8 distinct queries must hit the plan cache"
    );
    assert_eq!(m.latency.count(), 64);
    assert!(m.throughput_qps > 0.0);
    service.shutdown();
}

#[test]
fn cache_hit_returns_identical_plan_and_cost() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1, // deterministic hit/miss sequence
            ..ServiceConfig::default()
        },
    );
    let first = service.execute(paper_query()).unwrap();
    let second = service.execute(paper_query()).unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    assert_eq!(first.estimated_cost, second.estimated_cost);
    assert_eq!(first.order, second.order);
    assert_eq!(
        format!("{:?}", first.plan),
        format!("{:?}", second.plan),
        "cached plan must be the very plan the first optimization chose"
    );
    assert_eq!(sorted(first.rows), sorted(second.rows));
    assert!(second.latency_micros > 0);

    let m = service.metrics();
    assert_eq!((m.cache_hits, m.cache_misses), (1, 1));
    assert!((m.cache_hit_rate - 0.5).abs() < 1e-12);
    service.shutdown();
}

#[test]
fn catalog_install_invalidates_cached_plans() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let before = service.execute(paper_query()).unwrap();
    assert!(!before.cache_hit);
    assert!(service.execute(paper_query()).unwrap().cache_hit);

    // Install a catalog whose Emp stats/contents differ (a new table
    // registration bumps the epoch): the cached plan must not be
    // served, and results must reflect the new data.
    let mut changed = paper_catalog();
    changed.add_table(
        TableBuilder::new("Emp")
            .column("eid", DataType::Int)
            .column("did", DataType::Int)
            .column("sal", DataType::Double)
            .column("age", DataType::Int)
            .row(vec![1.into(), 10.into(), 9000.0.into(), 25.into()])
            .build()
            .unwrap()
            .into_ref(),
    );
    service.install_catalog(changed.clone());

    let after = service.execute(paper_query()).unwrap();
    assert!(
        !after.cache_hit,
        "catalog install must invalidate the plan cache"
    );
    let serial = Database::with_catalog(changed)
        .execute(&paper_query())
        .unwrap();
    let serial_rows = sorted(serial.rows);
    assert_eq!(sorted(after.rows), serial_rows);
    assert_ne!(sorted(before.rows.clone()), serial_rows);
    service.shutdown();
}

#[test]
fn fingerprint_distinguishes_predicate_constants() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let young = service.execute(query_with_age(25)).unwrap();
    let older = service.execute(query_with_age(65)).unwrap();
    assert!(
        !older.cache_hit,
        "queries differing only in a predicate constant must not share a plan-cache entry"
    );
    assert!(
        young.rows.len() < older.rows.len(),
        "different constants must reach execution (not a stale cached result)"
    );
    service.shutdown();
}

#[test]
fn try_submit_reports_queue_full_or_executes() {
    // Deterministic part of the backpressure contract: try_submit never
    // blocks, and every accepted ticket resolves. (Blocking-push
    // semantics are unit-tested on BoundedQueue directly.)
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut full = 0;
    for _ in 0..50 {
        match service.try_submit(paper_query()) {
            Ok(t) => accepted.push(t),
            Err(RuntimeError::QueueFull) => full += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(!accepted.is_empty());
    for t in accepted {
        assert_eq!(t.wait().unwrap().rows.len(), 2);
    }
    // Not asserting full > 0: with a fast worker the queue may never
    // saturate; the assertion is that QueueFull is the only overflow.
    let _ = full;
    service.shutdown();
}

#[test]
fn shutdown_completes_accepted_queries() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..16)
        .map(|_| service.submit(paper_query()).unwrap())
        .collect();
    service.shutdown();
    for t in tickets {
        assert_eq!(
            t.wait().unwrap().rows.len(),
            2,
            "accepted query must complete"
        );
    }
}

/// A two-table equijoin large enough to cross the parallel-operator
/// row threshold (1024) in both scan and hash-join inputs.
fn big_catalog_and_query(rows: i64) -> (Catalog, JoinQuery) {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("L")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 97).into(), i.into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    cat.add_table(
        TableBuilder::new("R")
            .column("k", DataType::Int)
            .column("w", DataType::Int)
            .rows((0..rows).map(|i| vec![(i % 89).into(), (-i).into()]))
            .build()
            .unwrap()
            .into_ref(),
    );
    let q = JoinQuery::new(vec![FromItem::new("L", "A"), FromItem::new("R", "B")])
        .with_predicate(col("A.k").eq(col("B.k")));
    (cat, q)
}

#[test]
fn parallel_execution_preserves_rows_and_ledger_charges() {
    let (cat, q) = big_catalog_and_query(3000);
    let serial = Database::with_catalog(cat.clone()).execute(&q).unwrap();

    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            intra_query_threads: 4,
            ..ServiceConfig::default()
        },
    );
    let parallel = service.execute(q).unwrap();
    assert_eq!(sorted(parallel.rows.clone()), sorted(serial.rows));
    assert_eq!(
        parallel.charges, serial.charges,
        "intra-query parallelism must not change measured ledger charges"
    );
    assert_eq!(parallel.measured_cost, serial.measured_cost);
    service.shutdown();
}

#[test]
fn wait_timeout_expiry_cancels_the_abandoned_query() {
    // One worker pinned on a big join; a second query queued behind it
    // cannot finish within 1ms, so its bounded wait reports
    // DeadlineExceeded — and, unlike the old leak-prone semantics,
    // expiry trips the query's interrupt: the worker discards it on
    // dequeue instead of burning capacity on an abandoned result.
    let (cat, q) = big_catalog_and_query(3000);
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let first = service.submit(q.clone()).unwrap();
    let second = service.submit(q.clone()).unwrap();
    assert!(matches!(
        second.wait_timeout(std::time::Duration::from_millis(1)),
        Err(RuntimeError::DeadlineExceeded)
    ));
    first.wait().unwrap();
    // The discard is recorded when the worker dequeues the abandoned
    // job; give it a moment to get there.
    let mut m = service.metrics();
    for _ in 0..500 {
        if m.cancelled == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        m = service.metrics();
    }
    assert_eq!(m.completed, 1, "the abandoned query must never execute");
    assert_eq!(m.cancelled, 1, "deadline expiry counts as a cancellation");
    service.shutdown();
}

#[test]
fn cancel_before_dequeue_never_runs_the_query() {
    // Pin the single worker, queue a second query, cancel it while it
    // is still waiting: the worker must discard it on dequeue and the
    // ticket must redeem as Interrupted(Cancelled).
    let (cat, q) = big_catalog_and_query(3000);
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let first = service.submit(q.clone()).unwrap();
    let second = service.submit(q.clone()).unwrap();
    assert!(second.cancel(), "first trip wins");
    assert!(!second.cancel(), "second trip is a no-op");
    assert!(matches!(
        second.wait(),
        Err(RuntimeError::Interrupted(InterruptReason::Cancelled))
    ));
    first.wait().unwrap();
    let m = service.metrics();
    assert_eq!(m.completed, 1, "cancelled query must never execute");
    assert_eq!(m.cancelled, 1);
    service.shutdown();
}

#[test]
fn cancel_mid_execution_stops_query_and_worker_survives() {
    // Cancel queries while the hash join is mid-build/mid-probe. The
    // exact phase the trip lands in varies run to run, so retry until
    // one cancellation is observed mid-flight; then prove the worker
    // survives (a fresh query completes) and that the cancelled run's
    // partial ledger charges did not leak into the next query's
    // accounting.
    let (cat, q) = big_catalog_and_query(3000);
    let serial = Database::with_catalog(cat.clone()).execute(&q).unwrap();
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let mut interrupted = false;
    for _ in 0..64 {
        let ticket = service.submit(q.clone()).unwrap();
        // Let execution get under way before tripping the flag.
        std::thread::sleep(std::time::Duration::from_millis(2));
        ticket.cancel();
        match ticket.wait() {
            Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => {
                interrupted = true;
                break;
            }
            Ok(_) => continue, // query won the race; try again
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(interrupted, "64 attempts should catch one mid-execution");

    // Worker is free and uncorrupted: the same query still completes
    // with charges identical to serial execution (per-query ledgers —
    // a cancelled run's partial charges never leak into the next).
    let after = service.execute(q).unwrap();
    assert_eq!(sorted(after.rows), sorted(serial.rows));
    assert_eq!(after.charges, serial.charges);
    service.shutdown();
}

#[test]
fn cancel_vs_completion_race_yields_result_xor_interrupted() {
    // Cancel immediately after submitting a fast query, many times:
    // every ticket must redeem exactly once, as either the completed
    // result or Interrupted — never a panic, never a lost reply.
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let (mut completed, mut interrupted) = (0u32, 0u32);
    for _ in 0..100 {
        let ticket = service.submit(paper_query()).unwrap();
        ticket.cancel();
        match ticket.wait() {
            Ok(r) => {
                assert_eq!(r.rows.len(), 2, "a completed racer returns full rows");
                completed += 1;
            }
            Err(RuntimeError::Interrupted(InterruptReason::Cancelled)) => interrupted += 1,
            Err(e) => panic!("race must yield result or Interrupted, got: {e}"),
        }
    }
    assert_eq!(completed + interrupted, 100);
    let m = service.metrics();
    assert_eq!(m.completed, u64::from(completed));
    assert_eq!(m.cancelled, u64::from(interrupted));
    service.shutdown();
}

#[test]
fn row_budget_trips_interrupted_and_counts_in_metrics() {
    let (cat, q) = big_catalog_and_query(3000);
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            row_budget: Some(100), // the join emits far more than this
            ..ServiceConfig::default()
        },
    );
    assert!(matches!(
        service.execute(q),
        Err(RuntimeError::Interrupted(InterruptReason::RowLimit))
    ));
    let m = service.metrics();
    assert_eq!(m.interrupted_by_budget, 1);
    assert_eq!(m.cancelled, 0);
    service.shutdown();
}

#[test]
fn worker_panic_heals_pool_and_capacity_is_preserved() {
    use std::sync::Arc;

    // A fault plan that panics on the very first page read: the first
    // query's worker dies mid-execution. The pool must report the
    // failure on that query's ticket, respawn a replacement, and keep
    // serving at full strength.
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 2,
            fault_plan: Some(Arc::new(fj_runtime::FaultPlan::new(7).with_panic_at(0))),
            ..ServiceConfig::default()
        },
    );
    match service.execute(paper_query()) {
        Err(RuntimeError::WorkerPanicked(msg)) => {
            assert!(msg.contains("induced panic"), "payload surfaced: {msg}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The replacement (and the untouched second worker) absorb a full
    // batch — capacity never degraded.
    let tickets: Vec<_> = (0..8)
        .map(|_| service.submit(paper_query()).unwrap())
        .collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().rows.len(), 2);
    }
    let m = service.metrics();
    assert_eq!(m.workers_replaced, 1);
    assert_eq!(m.completed, 8);
    assert_eq!(m.errors, 1);
    service.shutdown();
}

#[test]
fn wait_timeout_returns_result_when_fast_enough() {
    let service = QueryService::start(paper_catalog(), ServiceConfig::default());
    let ticket = service.submit(paper_query()).unwrap();
    let result = ticket
        .wait_timeout(std::time::Duration::from_secs(30))
        .expect("paper query finishes well within 30s");
    assert_eq!(result.rows.len(), 2);
    service.shutdown();
}

#[test]
fn try_submit_with_config_overrides_and_sheds() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    let no_fj = fj_optimizer::OptimizerConfig::without_filter_join();
    let ok = service
        .try_submit_with_config(paper_query(), no_fj)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(ok.rows.len(), 2);
    assert!(ok.sips.is_empty(), "filter join disabled by override");
    service.shutdown();

    // With slow queries, one executing + one queued fills the 1-slot
    // queue, so the next try_submit must shed with QueueFull instead
    // of blocking.
    let (cat, q) = big_catalog_and_query(3000);
    let service = QueryService::start(
        cat,
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    let first = service.submit(q.clone()).unwrap();
    // Keep refilling the queue slot until a try_submit observes it
    // full (the worker may drain between our two submissions).
    let mut queued = vec![service.submit(q.clone()).unwrap()];
    let mut shed = false;
    for _ in 0..32 {
        match service.try_submit(q.clone()) {
            Err(RuntimeError::QueueFull) => {
                shed = true;
                break;
            }
            Ok(t) => queued.push(t),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed, "saturated queue must shed");
    first.wait().unwrap();
    for t in queued {
        t.wait().unwrap();
    }
    service.shutdown();
}

#[test]
fn traced_service_records_trace_and_fills_the_ring() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            collect_trace: true,
            trace_ring_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    for _ in 0..3 {
        let r = service.execute(paper_query()).unwrap();
        let trace = r.trace.expect("collect_trace service attaches a trace");
        assert_eq!(trace.rows_out(), r.rows.len() as u64);
        assert!(trace.node_count() >= 3);
    }
    // Ring keeps only the most recent `trace_ring_capacity` traces,
    // but the lifetime counter sees all of them.
    let recent = service.recent_traces();
    assert_eq!(recent.len(), 2);
    assert!(recent[0].query.contains("Emp AS E"));
    assert_eq!(service.metrics().traces_recorded, 3);
    // The JSON rendering round-trips through the strict trace parser.
    let json = service.recent_traces_json();
    assert!(json.starts_with('['));
    assert!(json.contains("\"total_wall_micros\""));
    service.shutdown();
}

#[test]
fn untraced_service_attaches_no_trace() {
    let service = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let r = service.execute(paper_query()).unwrap();
    assert!(r.trace.is_none(), "tracing off leaves trace empty");
    assert!(service.recent_traces().is_empty());
    assert_eq!(service.metrics().traces_recorded, 0);
    service.shutdown();
}

#[test]
fn per_submission_trace_flag_overrides_service_default() {
    let service = QueryService::start(paper_catalog(), ServiceConfig::default());
    let cfg = fj_optimizer::OptimizerConfig::default();
    let traced = service
        .submit_with_options(paper_query(), cfg, true)
        .unwrap()
        .wait()
        .unwrap();
    assert!(traced.trace.is_some());
    let untraced = service
        .submit_with_options(paper_query(), cfg, false)
        .unwrap()
        .wait()
        .unwrap();
    assert!(untraced.trace.is_none());
    assert_eq!(service.metrics().traces_recorded, 1);
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Disk-backed storage mode
// ---------------------------------------------------------------------------

fn disk_config(dir: &std::path::Path, pool_pages: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        storage: fj_runtime::StorageMode::Disk {
            dir: dir.to_path_buf(),
            pool_pages,
        },
        ..ServiceConfig::default()
    }
}

/// Disk mode returns byte-identical answers to in-memory mode, and a
/// service restarted from the data directory alone (crash recovery)
/// still does — with a cold buffer pool, so the restart's first query
/// physically reads pages (pool misses) where the loading service was
/// served from the load-warmed pool.
#[test]
fn disk_mode_matches_in_memory_and_survives_restart() {
    let dir = fj_store::TempDir::new("runtime-disk");
    let in_memory = QueryService::start(
        paper_catalog(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .execute(paper_query())
    .unwrap();

    {
        let service = QueryService::start(paper_catalog(), disk_config(dir.path(), 64));
        let report = service.recovery_report().expect("disk mode has a report");
        assert_eq!(report.manifest_tables, 0, "fresh directory");
        assert_eq!(report.replayed_tables, 0);
        let result = service.execute(paper_query()).unwrap();
        assert_eq!(sorted(result.rows), sorted(in_memory.rows.clone()));
        assert_eq!(
            result.charges, in_memory.charges,
            "ledger charges identical"
        );
        let stats = service.store_stats();
        assert!(stats.pool_hits > 0, "load warms the pool: {stats:?}");
        assert_eq!(stats.pool_misses, 0, "warm pool, no physical reads");
        assert!(stats.wal_fsyncs >= 1, "loads group-commit through the WAL");
        service.shutdown();
        // No checkpoint: the WAL alone carries both tables (a crash).
    }

    let service = QueryService::start(paper_catalog(), disk_config(dir.path(), 64));
    let report = service.recovery_report().unwrap();
    assert_eq!(
        report.replayed_tables, 2,
        "Emp and Dept replay from the WAL"
    );
    let result = service.execute(paper_query()).unwrap();
    assert_eq!(sorted(result.rows), sorted(in_memory.rows.clone()));
    assert_eq!(result.charges, in_memory.charges);
    let stats = service.store_stats();
    assert!(
        stats.pool_misses > 0,
        "restart starts cold: the first query must physically read pages, got {stats:?}"
    );
    let m = service.metrics();
    assert_eq!(m.pool_misses, stats.pool_misses);
    assert!(m.to_json().contains("\"pool_misses\":"));
    let h = service.health();
    assert_eq!(h.pool_misses, stats.pool_misses);
    assert_eq!(h.wal_fsyncs, stats.wal_fsyncs);
    service.shutdown();
}

/// A restart whose template omits tables the store committed still
/// serves them (recovered from disk), and checkpointing moves them
/// from the WAL to the manifest.
#[test]
fn restart_with_bare_template_serves_recovered_tables() {
    let dir = fj_store::TempDir::new("runtime-disk-bare");
    {
        let service = QueryService::start(paper_catalog(), disk_config(dir.path(), 64));
        service.checkpoint().unwrap();
        service.shutdown();
    }
    let mut bare = Catalog::new();
    fj_algebra::fixtures::add_dep_avg_sal_view(&mut bare);
    let service = QueryService::start(bare, disk_config(dir.path(), 64));
    let report = service.recovery_report().unwrap();
    assert_eq!(
        report.manifest_tables, 2,
        "checkpoint made both tables durable"
    );
    assert_eq!(report.replayed_tables, 0, "WAL was truncated");
    let result = service.execute(paper_query()).unwrap();
    assert_eq!(
        result.rows.len(),
        2,
        "recovered tables answer the paper query"
    );
    service.shutdown();
}

/// A template whose schema contradicts the committed table is a
/// redeploy: the template's copy wins as a log-structured replacement
/// (fresh table_id, bumped version) and persists across the *next*
/// restart too.
#[test]
fn schema_change_on_recovery_reloads_the_template_copy() {
    let dir = fj_store::TempDir::new("runtime-disk-mismatch");
    {
        let service = QueryService::start(paper_catalog(), disk_config(dir.path(), 64));
        service.shutdown();
    }
    let reshaped = || {
        let mut template = Catalog::new();
        template.add_table(
            TableBuilder::new("Emp")
                .column("eid", DataType::Int)
                .column("did", DataType::Str) // was Int on disk
                .row(vec![Value::Int(1), Value::Str("one".into())])
                .build()
                .unwrap()
                .into_ref(),
        );
        template
    };
    {
        let service = QueryService::try_start(reshaped(), disk_config(dir.path(), 64)).unwrap();
        let emp = service.catalog().table("Emp").unwrap();
        assert_eq!(emp.row_count(), 1, "reshaped template replaced the table");
        service.shutdown();
    }
    // The replacement is durable: a bare restart recovers the new shape.
    let service = QueryService::try_start(reshaped(), disk_config(dir.path(), 64)).unwrap();
    let emp = service.catalog().table("Emp").unwrap();
    assert_eq!(emp.row_count(), 1);
    service.shutdown();
}

/// In-memory services report all-zero store counters, and their
/// metrics JSON still carries the pool keys (stable wire shape).
#[test]
fn in_memory_mode_reports_zero_store_counters() {
    let service = QueryService::start(paper_catalog(), ServiceConfig::default());
    service.execute(paper_query()).unwrap();
    let stats = service.store_stats();
    assert_eq!(stats, fj_runtime::StoreStats::default());
    assert!(service.store().is_none());
    assert!(service.recovery_report().is_none());
    service.checkpoint().unwrap(); // no-op, not an error
    let j = service.metrics().to_json();
    assert!(j.contains("\"pool_hits\":0,\"pool_misses\":0"));
    service.shutdown();
}

/// Traced queries in disk mode attribute pool traffic to operators:
/// after a pool clear, the trace's summed pool misses equal the
/// physical reads the query triggered.
#[test]
fn traced_disk_query_attributes_pool_traffic() {
    let dir = fj_store::TempDir::new("runtime-disk-trace");
    let service = QueryService::start(paper_catalog(), disk_config(dir.path(), 64));
    service.store().unwrap().clear_pool();
    let before = service.store_stats();
    let result = service
        .submit_with_options(paper_query(), Default::default(), true)
        .unwrap()
        .wait()
        .unwrap();
    let after = service.store_stats();
    let trace = result.trace.expect("tracing was on");
    let (mut hits, mut misses) = (0u64, 0u64);
    trace.root.walk(&mut |n| {
        hits += n.stats.pool_hits;
        misses += n.stats.pool_misses;
    });
    assert_eq!(misses, after.pool_misses - before.pool_misses);
    assert_eq!(hits, after.pool_hits - before.pool_hits);
    assert!(misses > 0, "cold pool: the scan must miss");
    service.shutdown();
}
