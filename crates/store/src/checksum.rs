//! CRC-64 page and record checksums.
//!
//! CRC-64/XZ (reflected ECMA-182 polynomial), table-driven. A 64-bit
//! CRC makes silent corruption of a 4 KiB frame vanishingly unlikely to
//! verify, which is what the torn-write recovery protocol leans on: a
//! half-written page or WAL record is *detected*, never trusted.

const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// Streaming CRC-64/XZ, so multi-part records (header + payload) hash
/// without concatenation.
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// Begins a fresh checksum.
    pub fn new() -> Crc64 {
        Crc64 { state: !0 }
    }

    /// Feeds `bytes` and returns `self` for chaining.
    pub fn update(mut self, bytes: &[u8]) -> Crc64 {
        for &b in bytes {
            self.state = TABLE[((self.state ^ b as u64) & 0xff) as usize] ^ (self.state >> 8);
        }
        self
    }

    /// Final checksum value.
    pub fn finish(self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// One-shot convenience over [`Crc64`].
pub fn crc64(bytes: &[u8]) -> u64 {
    Crc64::new().update(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The CRC-64/XZ check value from the CRC catalogue.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let parts = Crc64::new().update(b"hello ").update(b"world").finish();
        assert_eq!(parts, crc64(b"hello world"));
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut page = vec![0xABu8; 4096];
        let before = crc64(&page);
        page[2048] ^= 0x01;
        assert_ne!(before, crc64(&page));
    }
}
