//! Error type for the disk-backed store.

use fj_storage::StorageError;
use std::fmt;

/// Errors raised by the page store, WAL, and buffer pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// What the store was doing (e.g. `"open pages.fj"`).
        op: String,
        /// The OS error text.
        detail: String,
    },
    /// On-disk bytes failed validation: bad magic, bad version, or a
    /// checksum mismatch (torn or bit-rotted write).
    Corrupt {
        /// What was corrupt and where.
        detail: String,
    },
    /// A metadata-level inconsistency: duplicate table load, unknown
    /// table, or a meta record that contradicts the page file.
    Meta {
        /// Human-readable description.
        detail: String,
    },
    /// The buffer pool could not evict a frame (every frame pinned).
    PoolExhausted {
        /// Configured pool capacity in pages.
        capacity: usize,
    },
    /// A mutation was cancelled before its commit point. Nothing
    /// reached the WAL or the pool: restart-invisible by construction.
    Cancelled,
}

impl StoreError {
    /// Wraps an [`std::io::Error`] with the operation it interrupted.
    pub fn io(op: impl Into<String>, err: std::io::Error) -> StoreError {
        StoreError::Io {
            op: op.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            StoreError::Corrupt { detail } => write!(f, "corrupt store data: {detail}"),
            StoreError::Meta { detail } => write!(f, "store metadata error: {detail}"),
            StoreError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            StoreError::Cancelled => {
                write!(f, "mutation cancelled before commit; no state changed")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Store failures surface on the query path as the storage layer's
/// [`StorageError::Backing`] — operators need no new error arm.
impl From<StoreError> for StorageError {
    fn from(e: StoreError) -> StorageError {
        StorageError::Backing {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = StoreError::Corrupt {
            detail: "page 3 crc mismatch".into(),
        };
        assert!(e.to_string().contains("crc mismatch"));
        let s: StorageError = e.into();
        assert!(matches!(s, StorageError::Backing { .. }));
        assert!(s.to_string().contains("page 3"));

        let e = StoreError::io("open pages.fj", std::io::Error::other("boom"));
        assert!(e.to_string().contains("open pages.fj"));
        assert!(StoreError::PoolExhausted { capacity: 4 }
            .to_string()
            .contains('4'));
    }
}
