//! The redo-only write-ahead log (`wal.fj`).
//!
//! Every table load appends full-page-image records plus a commit
//! marker, then issues **one** group fsync for the whole batch — the
//! log's durability unit is the load, not the record. Recovery replays
//! committed loads into the page file; a load whose commit marker never
//! reached the log is invisible (its page images are skipped), so the
//! log needs no undo records.
//!
//! Record framing (little-endian):
//!
//! ```text
//! len   u32     body length
//! crc   u64     crc64(body)
//! body  bytes   kind u8 ++ kind-specific payload
//! ```
//!
//! Body kinds: `1` table meta ([`TableMeta::encode`]), `2` page image
//! (`table_id u32, page_no u32, payload`), `3` load commit
//! (`table_id u32`), `4` page delta (`table_id u32, page_no u32,
//! payload` — the full new payload of one page dirtied by a mutation),
//! `5` mutation commit (the post-mutation [`TableMeta`] ++
//! `rows_affected u64` — carrying the meta inside the commit marker is
//! what keeps a crash *between* a mutation's records from ever being
//! mistaken for a half-loaded table). A record whose length overruns
//! the file or whose CRC fails is a torn tail: replay stops there and
//! the file is truncated to the last valid boundary — detected and
//! discarded, never replayed.

use crate::checksum::crc64;
use crate::codec::{get_u32, TableMeta};
use crate::error::StoreError;
use fj_storage::FaultPlan;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table is about to be loaded.
    TableMeta(TableMeta),
    /// Full image of one logical page.
    PageImage {
        /// Owning table.
        table_id: u32,
        /// Logical page number within the table.
        page_no: u32,
        /// Encoded page payload (see [`crate::codec::encode_rows`]).
        payload: Vec<u8>,
    },
    /// The load of `table_id` is complete; replay may apply it.
    LoadCommit {
        /// The committed table.
        table_id: u32,
    },
    /// New payload of one page dirtied by an in-flight mutation.
    /// Redo-only: replay applies it iff a matching
    /// [`WalRecord::MutationCommit`] follows in the log.
    PageDelta {
        /// Owning table.
        table_id: u32,
        /// Logical page number within the table.
        page_no: u32,
        /// Full encoded post-mutation payload of the page.
        payload: Vec<u8>,
    },
    /// The mutation that produced the preceding deltas committed.
    /// Carries the complete post-mutation meta (new row count, bumped
    /// version) so replay needs no other record to apply it.
    MutationCommit {
        /// Post-mutation description of the table.
        meta: TableMeta,
        /// Rows inserted/updated/deleted by this mutation.
        rows_affected: u64,
    },
}

fn encode_body(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        WalRecord::TableMeta(meta) => {
            body.push(1);
            body.extend_from_slice(&meta.encode());
        }
        WalRecord::PageImage {
            table_id,
            page_no,
            payload,
        } => {
            body.push(2);
            body.extend_from_slice(&table_id.to_le_bytes());
            body.extend_from_slice(&page_no.to_le_bytes());
            body.extend_from_slice(payload);
        }
        WalRecord::LoadCommit { table_id } => {
            body.push(3);
            body.extend_from_slice(&table_id.to_le_bytes());
        }
        WalRecord::PageDelta {
            table_id,
            page_no,
            payload,
        } => {
            body.push(4);
            body.extend_from_slice(&table_id.to_le_bytes());
            body.extend_from_slice(&page_no.to_le_bytes());
            body.extend_from_slice(payload);
        }
        WalRecord::MutationCommit {
            meta,
            rows_affected,
        } => {
            body.push(5);
            body.extend_from_slice(&rows_affected.to_le_bytes());
            body.extend_from_slice(&meta.encode());
        }
    }
    body
}

fn decode_body(body: &[u8]) -> Result<WalRecord, StoreError> {
    let kind = *body.first().ok_or_else(|| StoreError::Corrupt {
        detail: "empty WAL record body".into(),
    })?;
    let mut pos = 1usize;
    match kind {
        1 => {
            let meta = TableMeta::decode(body, &mut pos)?;
            Ok(WalRecord::TableMeta(meta))
        }
        2 => {
            let table_id = get_u32(body, &mut pos)?;
            let page_no = get_u32(body, &mut pos)?;
            Ok(WalRecord::PageImage {
                table_id,
                page_no,
                payload: body[pos..].to_vec(),
            })
        }
        3 => {
            let table_id = get_u32(body, &mut pos)?;
            Ok(WalRecord::LoadCommit { table_id })
        }
        4 => {
            let table_id = get_u32(body, &mut pos)?;
            let page_no = get_u32(body, &mut pos)?;
            Ok(WalRecord::PageDelta {
                table_id,
                page_no,
                payload: body[pos..].to_vec(),
            })
        }
        5 => {
            let rows_affected = crate::codec::get_u64(body, &mut pos)?;
            let meta = TableMeta::decode(body, &mut pos)?;
            if pos != body.len() {
                return Err(StoreError::Corrupt {
                    detail: format!("mutation commit has {} trailing bytes", body.len() - pos),
                });
            }
            Ok(WalRecord::MutationCommit {
                meta,
                rows_affected,
            })
        }
        other => Err(StoreError::Corrupt {
            detail: format!("unknown WAL record kind {other}"),
        }),
    }
}

/// Parses framed records from `bytes`, stopping at the first invalid
/// one. Returns the records, the offset of the last valid record
/// boundary, and whether a torn tail was found.
fn scan_bytes(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut valid_end = 0usize;
    let mut torn = false;
    while pos < bytes.len() {
        let parsed = (|| {
            let mut p = pos;
            let len = get_u32(bytes, &mut p)? as usize;
            let want = crate::codec::get_u64(bytes, &mut p)?;
            if p + len > bytes.len() {
                return Err(StoreError::Corrupt {
                    detail: "record overruns file".into(),
                });
            }
            let body = &bytes[p..p + len];
            if crc64(body) != want {
                return Err(StoreError::Corrupt {
                    detail: "record crc mismatch".into(),
                });
            }
            Ok((decode_body(body)?, p + len))
        })();
        match parsed {
            Ok((record, end)) => {
                records.push(record);
                pos = end;
                valid_end = end;
            }
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    (records, valid_end, torn)
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalScan {
    /// All records up to the first invalid one, in log order.
    pub records: Vec<WalRecord>,
    /// True iff a torn tail was detected (and truncated away).
    pub torn_tail_truncated: bool,
}

/// The append-only log file with group fsync.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    pending: Mutex<Vec<u8>>,
    fsyncs: AtomicU64,
}

impl Wal {
    /// Opens (creating if absent) the log, scanning existing records
    /// and truncating any torn tail to the last valid record boundary.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalScan), StoreError> {
        let path = path.as_ref().to_path_buf();
        // Append mode: every commit lands at the current EOF, which
        // keeps reopened logs and post-truncate writes correct without
        // cursor bookkeeping.
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let bytes = std::fs::read(&path)
            .map_err(|e| StoreError::io(format!("scan {}", path.display()), e))?;
        let (records, valid_end, torn) = scan_bytes(&bytes);
        if torn {
            file.set_len(valid_end as u64)
                .map_err(|e| StoreError::io(format!("truncate {}", path.display()), e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(format!("fsync {}", path.display()), e))?;
        }
        Ok((
            Wal {
                path,
                file: Mutex::new(file),
                pending: Mutex::new(Vec::new()),
                fsyncs: AtomicU64::new(0),
            },
            WalScan {
                records,
                torn_tail_truncated: torn,
            },
        ))
    }

    /// Filesystem path of the log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Group fsyncs issued so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Buffers one record; nothing reaches the file until
    /// [`Wal::commit`].
    pub fn append(&self, record: &WalRecord) {
        let body = encode_body(record);
        let mut pending = self.pending.lock().unwrap();
        pending.extend_from_slice(&(body.len() as u32).to_le_bytes());
        pending.extend_from_slice(&crc64(&body).to_le_bytes());
        pending.extend_from_slice(&body);
    }

    /// Writes all buffered records and issues exactly one fsync — the
    /// group-commit point. A seeded `faults` plan may stall the fsync
    /// (slow-device injection); the stall happens before the write is
    /// acknowledged, as on real hardware.
    pub fn commit(&self, faults: Option<&FaultPlan>) -> Result<(), StoreError> {
        let batch = {
            let mut pending = self.pending.lock().unwrap();
            std::mem::take(&mut *pending)
        };
        let mut file = self.file.lock().unwrap();
        file.write_all(&batch)
            .map_err(|e| StoreError::io(format!("append {}", self.path.display()), e))?;
        if let Some(plan) = faults {
            plan.on_fsync();
        }
        file.sync_data()
            .map_err(|e| StoreError::io(format!("fsync {}", self.path.display()), e))?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Empties the log (the checkpoint's final step: everything the log
    /// protected is now durable in the page file and manifest).
    pub fn truncate(&self) -> Result<(), StoreError> {
        let file = self.file.lock().unwrap();
        file.set_len(0)
            .map_err(|e| StoreError::io(format!("truncate {}", self.path.display()), e))?;
        file.sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", self.path.display()), e))?;
        Ok(())
    }

    /// Durable log length in bytes, observed under the file lock so it
    /// is a consistent *cut*: every byte committed after this call
    /// lands at an offset `>= ` the returned value. The fuzzy
    /// checkpoint captures this before flushing and later truncates
    /// exactly `[0, cut)`.
    pub fn durable_len(&self) -> Result<u64, StoreError> {
        let file = self.file.lock().unwrap();
        file.metadata()
            .map(|m| m.len())
            .map_err(|e| StoreError::io(format!("stat {}", self.path.display()), e))
    }

    /// Drops the first `cut` bytes of the log, keeping any records
    /// committed after the cut was captured — the fuzzy checkpoint's
    /// final step. The suffix is written to a temp file and renamed
    /// over the log (atomic on POSIX), then the append handle is
    /// reopened on the new file. Concurrent commits are excluded by
    /// the file lock for the duration.
    pub fn truncate_prefix(&self, cut: u64) -> Result<(), StoreError> {
        let mut file = self.file.lock().unwrap();
        let bytes = std::fs::read(&self.path)
            .map_err(|e| StoreError::io(format!("scan {}", self.path.display()), e))?;
        let cut = (cut as usize).min(bytes.len());
        let tmp = self.path.with_extension("fj.tmp");
        std::fs::write(&tmp, &bytes[cut..])
            .map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        {
            let t = File::open(&tmp).map_err(|e| StoreError::io("open wal tmp", e))?;
            t.sync_all()
                .map_err(|e| StoreError::io("fsync wal tmp", e))?;
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| StoreError::io(format!("rename over {}", self.path.display()), e))?;
        let reopened = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::io(format!("reopen {}", self.path.display()), e))?;
        reopened
            .sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", self.path.display()), e))?;
        *file = reopened;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// Re-reads the records currently durable in the log file (the
    /// checkpoint scrub's source of healing images). Buffered,
    /// uncommitted appends are not included.
    pub fn disk_records(&self) -> Result<Vec<WalRecord>, StoreError> {
        // Hold the file lock so a concurrent commit can't interleave
        // a half-written batch under the read.
        let _file = self.file.lock().unwrap();
        let bytes = std::fs::read(&self.path)
            .map_err(|e| StoreError::io(format!("scan {}", self.path.display()), e))?;
        let (records, _, _) = scan_bytes(&bytes);
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use fj_storage::{DataType, Schema};

    fn sample_records() -> Vec<WalRecord> {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        vec![
            WalRecord::TableMeta(TableMeta::describe(1, "T", &schema, 2, 1)),
            WalRecord::PageImage {
                table_id: 1,
                page_no: 0,
                payload: vec![1, 2, 3, 4],
            },
            WalRecord::LoadCommit { table_id: 1 },
        ]
    }

    fn mutation_records() -> Vec<WalRecord> {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        vec![
            WalRecord::PageDelta {
                table_id: 1,
                page_no: 3,
                payload: vec![9, 8, 7],
            },
            WalRecord::MutationCommit {
                meta: TableMeta::describe(1, "T", &schema, 5, 2),
                rows_affected: 3,
            },
        ]
    }

    #[test]
    fn append_commit_replay_round_trip() {
        let dir = TempDir::new("wal-rt");
        let path = dir.path().join("wal.fj");
        {
            let (wal, scan) = Wal::open(&path).unwrap();
            assert!(scan.records.is_empty());
            for r in sample_records() {
                wal.append(&r);
            }
            wal.commit(None).unwrap();
            assert_eq!(wal.fsyncs(), 1, "group commit: one fsync per batch");
        }
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records, sample_records());
        assert!(!scan.torn_tail_truncated);
    }

    #[test]
    fn uncommitted_appends_never_reach_disk() {
        let dir = TempDir::new("wal-pending");
        let path = dir.path().join("wal.fj");
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::LoadCommit { table_id: 9 });
        // No commit: the file stays empty.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.fj");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r);
            }
            wal.commit(None).unwrap();
        }
        let intact_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half of a valid record's bytes.
        let extra = {
            let body = encode_body(&WalRecord::LoadCommit { table_id: 2 });
            let mut rec = Vec::new();
            rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
            rec.extend_from_slice(&crc64(&body).to_le_bytes());
            rec.extend_from_slice(&body);
            rec
        };
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records, sample_records());
        assert!(scan.torn_tail_truncated);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact_len,
            "torn tail must be cut back to the last valid boundary"
        );
        // A second open sees a clean log.
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(!scan.torn_tail_truncated);
    }

    #[test]
    fn corrupted_record_body_stops_replay() {
        let dir = TempDir::new("wal-bitrot");
        let path = dir.path().join("wal.fj");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r);
            }
            wal.commit(None).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(scan.torn_tail_truncated);
        assert!(scan.records.len() < sample_records().len());
    }

    #[test]
    fn mutation_records_round_trip() {
        let dir = TempDir::new("wal-mut-rt");
        let path = dir.path().join("wal.fj");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for r in sample_records().iter().chain(mutation_records().iter()) {
                wal.append(r);
            }
            wal.commit(None).unwrap();
        }
        let (_, scan) = Wal::open(&path).unwrap();
        let mut want = sample_records();
        want.extend(mutation_records());
        assert_eq!(scan.records, want);
        assert!(!scan.torn_tail_truncated);
    }

    #[test]
    fn mutation_commit_trailing_bytes_rejected() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut body = encode_body(&WalRecord::MutationCommit {
            meta: TableMeta::describe(1, "T", &schema, 5, 2),
            rows_affected: 3,
        });
        body.push(0xAB);
        assert!(matches!(
            decode_body(&body),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncate_prefix_keeps_records_after_the_cut() {
        let dir = TempDir::new("wal-cut");
        let path = dir.path().join("wal.fj");
        let (wal, _) = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.commit(None).unwrap();
        let cut = wal.durable_len().unwrap();
        // Records committed after the cut was captured must survive.
        for r in mutation_records() {
            wal.append(&r);
        }
        wal.commit(None).unwrap();
        wal.truncate_prefix(cut).unwrap();
        assert_eq!(wal.disk_records().unwrap(), mutation_records());
        // The reopened append handle keeps working.
        wal.append(&WalRecord::LoadCommit { table_id: 4 });
        wal.commit(None).unwrap();
        let mut want = mutation_records();
        want.push(WalRecord::LoadCommit { table_id: 4 });
        assert_eq!(wal.disk_records().unwrap(), want);
        // And a fresh open agrees byte-for-byte.
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records, want);
    }

    #[test]
    fn truncate_prefix_of_whole_log_empties_it() {
        let dir = TempDir::new("wal-cut-all");
        let path = dir.path().join("wal.fj");
        let (wal, _) = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.commit(None).unwrap();
        let cut = wal.durable_len().unwrap();
        wal.truncate_prefix(cut).unwrap();
        assert_eq!(wal.size_bytes(), 0);
        // Cuts past EOF clamp rather than error.
        wal.truncate_prefix(u64::MAX).unwrap();
        assert_eq!(wal.size_bytes(), 0);
    }

    #[test]
    fn truncate_empties_log() {
        let dir = TempDir::new("wal-trunc");
        let path = dir.path().join("wal.fj");
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::LoadCommit { table_id: 1 });
        wal.commit(None).unwrap();
        assert!(wal.size_bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.size_bytes(), 0);
    }
}
