//! A tiny RAII temporary directory (no external `tempfile` crate).
//!
//! Public because every layer above the store — runtime tests, the
//! differential suite, the recovery-chaos experiment — needs throwaway
//! data directories with the same cleanup discipline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/fj-<label>-<pid>-<n>`, unique per process and
    /// per call.
    pub fn new(label: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("fj-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_cleanup() {
        let kept;
        {
            let dir = TempDir::new("selftest");
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("f"), b"x").unwrap();
        }
        assert!(!kept.exists(), "dropped TempDir must remove its tree");
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("x");
        let b = TempDir::new("x");
        assert_ne!(a.path(), b.path());
    }
}
