//! The store: page file + buffer pool + WAL + manifest, with recovery.
//!
//! ## Protocol
//!
//! **Load**: append the table's meta and every page image to the WAL,
//! write each page to the page file (through the fault plan: this is
//! where torn writes land) and warm it into the pool, append a commit
//! marker, then group-fsync the WAL once. The page file is *not*
//! synced on load. Reloading an existing name is allowed: the new
//! incarnation gets a fresh `table_id` and `version + 1` — the
//! log-structured versioning that lets disk-mode catalog installs
//! replace tables instead of rejecting reuse.
//!
//! **Mutate** ([`Store::mutate`]): read the committed rows through the
//! pool (dirty frames are the freshest committed bytes), apply the
//! [`Mutation`] purely, diff old/new page payloads, then append one
//! [`WalRecord::PageDelta`] per changed page plus a
//! [`WalRecord::MutationCommit`] carrying the bumped meta, and
//! group-fsync — the atomic commit point. Only *after* that fsync do
//! the new payloads enter the pool as dirty frames
//! (steal-committed-only: nothing uncommitted can ever be written
//! back), and only then does the committed map advance. A cancellation
//! observed at any poll before the fsync returns
//! [`StoreError::Cancelled`] with zero WAL/pool/meta effects.
//!
//! **Recovery** ([`Store::open`] ≡ [`Store::recover`]): read the
//! manifest (tables durable as of the last checkpoint), scan the page
//! file (checksum-verifying every record), then replay the WAL —
//! committed loads and mutations only, in log order — writing page
//! images and deltas back into the page file *in place*. Replay is
//! idempotent: same images, same offsets, so replaying twice is
//! byte-identical. A torn WAL tail is truncated at scan time, never
//! replayed; a torn page-file record is healed by its WAL image;
//! deltas without their commit marker are dropped.
//!
//! **Fuzzy checkpoint** ([`Store::checkpoint`]): capture the WAL cut
//! (its durable length), flush dirty pool pages (verified writes:
//! a torn write-back is detected and retried fault-free before the
//! checkpoint may proceed), scrub every record the WAL still protects
//! (healing torn records from the *last* logged payload per page),
//! fsync the page file, atomically publish the manifest (tmp, rename,
//! dir fsync — under a brief metadata lock, the only lock the
//! checkpoint ever takes), then truncate exactly the WAL prefix
//! `[0, cut)`. Loads, mutations, and queries proceed concurrently:
//! anything committed after the cut stays in the kept suffix and
//! replays idempotently on recovery.

use crate::checksum::crc64;
use crate::codec::{decode_rows, encode_rows, get_u32, TableMeta};
use crate::error::StoreError;
use crate::page_file::PageFile;
use crate::pool::{BufferPool, PageKey, PoolStats};
use crate::wal::{Wal, WalRecord};
use fj_storage::{
    FaultPlan, Mutation, PageBacking, PageLayout, PageWriteFault, Schema, StorageError, Table,
    Tuple,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MANIFEST: &str = "manifest.fj";
const PAGES: &str = "pages.fj";
const WAL: &str = "wal.fj";

/// Counter snapshot across the pool, WAL, and page file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Buffer-pool lookups served from memory.
    pub pool_hits: u64,
    /// Buffer-pool lookups that went to disk.
    pub pool_misses: u64,
    /// Pages displaced from the pool.
    pub pool_evictions: u64,
    /// WAL group fsyncs issued.
    pub wal_fsyncs: u64,
    /// Physical page-file record reads.
    pub physical_reads: u64,
    /// Physical page-file record writes.
    pub physical_writes: u64,
    /// Mutations committed since open.
    pub mutations_applied: u64,
    /// WAL page-delta records appended since open.
    pub wal_deltas: u64,
    /// Dirty pages currently resident in the pool (gauge).
    pub dirty_pages: u64,
    /// Dirty victims persisted by eviction write-back.
    pub dirty_writebacks: u64,
    /// Fuzzy checkpoints completed since open.
    pub checkpoints: u64,
}

/// What a committed [`Store::mutate`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationResult {
    /// Rows inserted, updated, or deleted.
    pub rows_affected: u64,
    /// The table's post-mutation row count.
    pub row_count: u64,
    /// The table's post-mutation version.
    pub version: u64,
}

/// How far [`Store::checkpoint_until`] runs before returning — the
/// chaos harness's deterministic mid-checkpoint crash points. A real
/// checkpoint is `Done`; stopping earlier models a crash between
/// checkpoint steps (the caller then drops the store, exactly as a
/// kill would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPhase {
    /// Stop after flushing dirty pool pages (WAL intact).
    Flush,
    /// Stop after the scrub pass (WAL intact, page file healed).
    Scrub,
    /// Stop after the page-file fsync.
    Sync,
    /// Stop after publishing the manifest (WAL not yet truncated).
    Manifest,
    /// Run the whole checkpoint, ending with the WAL prefix truncate.
    Done,
}

#[derive(Debug)]
struct StoreInner {
    committed: BTreeMap<String, TableMeta>,
    next_table_id: u32,
}

/// A disk-backed page store rooted at one data directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    page_file: Arc<PageFile>,
    wal: Wal,
    pool: Arc<BufferPool>,
    faults: Option<Arc<FaultPlan>>,
    inner: Mutex<StoreInner>,
    /// Serializes mutations against each other (not against loads,
    /// queries, or checkpoints).
    mutation_lock: Mutex<()>,
    mutations_applied: AtomicU64,
    wal_deltas: AtomicU64,
    checkpoints: AtomicU64,
}

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables durable via the manifest (last checkpoint).
    pub manifest_tables: usize,
    /// Committed loads replayed from the WAL.
    pub replayed_tables: usize,
    /// Committed mutations replayed from the WAL.
    pub replayed_mutations: usize,
    /// Page images and deltas written back during replay.
    pub replayed_pages: usize,
    /// True iff a torn WAL tail was detected and truncated.
    pub torn_wal_tail: bool,
}

impl Store {
    /// Opens (and always recovers) the store at `dir`, creating it on
    /// first use. `pool_pages` sizes the buffer pool; `faults` is the
    /// seeded chaos plan threaded through writes and fsyncs.
    pub fn open(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}", dir.display()), e))?;
        let page_file = Arc::new(PageFile::open(dir.join(PAGES))?);
        let mut committed = read_manifest(&dir.join(MANIFEST))?;
        let manifest_tables = committed.len();
        let (wal, scan) = Wal::open(dir.join(WAL))?;

        // Replay committed loads and mutations, in log order, page
        // images and deltas in place. Per table: the logged metadata
        // (if seen) plus (page_no, payload) images; mutations
        // accumulate deltas keyed by table_id until their commit.
        type PendingLoad = (Option<TableMeta>, Vec<(u32, Vec<u8>)>);
        let mut pending: BTreeMap<u32, PendingLoad> = BTreeMap::new();
        let mut pending_deltas: BTreeMap<u32, Vec<(u32, Vec<u8>)>> = BTreeMap::new();
        let mut replayed_tables = 0usize;
        let mut replayed_mutations = 0usize;
        let mut replayed_pages = 0usize;
        for record in &scan.records {
            match record {
                WalRecord::TableMeta(meta) => {
                    pending.entry(meta.table_id).or_default().0 = Some(meta.clone());
                }
                WalRecord::PageImage {
                    table_id,
                    page_no,
                    payload,
                } => {
                    pending
                        .entry(*table_id)
                        .or_default()
                        .1
                        .push((*page_no, payload.clone()));
                }
                WalRecord::LoadCommit { table_id } => {
                    let Some((Some(meta), images)) = pending.remove(table_id) else {
                        return Err(StoreError::Corrupt {
                            detail: format!("WAL commit for table {table_id} without a meta"),
                        });
                    };
                    for (page_no, payload) in &images {
                        // Replay never draws faults: recovery is the
                        // healing path, not the chaotic one.
                        page_file.write_page(meta.table_id, *page_no, payload, None)?;
                        replayed_pages += 1;
                    }
                    committed.insert(meta.name.clone(), meta);
                    replayed_tables += 1;
                }
                WalRecord::PageDelta {
                    table_id,
                    page_no,
                    payload,
                } => {
                    pending_deltas
                        .entry(*table_id)
                        .or_default()
                        .push((*page_no, payload.clone()));
                }
                WalRecord::MutationCommit { meta, .. } => {
                    for (page_no, payload) in
                        pending_deltas.remove(&meta.table_id).unwrap_or_default()
                    {
                        page_file.write_page(meta.table_id, page_no, &payload, None)?;
                        replayed_pages += 1;
                    }
                    committed.insert(meta.name.clone(), meta.clone());
                    replayed_mutations += 1;
                }
            }
        }
        // Deltas whose MutationCommit never reached the log are the
        // uncommitted suffix of an in-flight mutation: dropped, never
        // applied.
        if replayed_pages > 0 {
            page_file.sync()?;
        }

        let next_table_id = committed
            .values()
            .map(|m| m.table_id)
            .max()
            .map_or(0, |m| m + 1);
        let report = RecoveryReport {
            manifest_tables,
            replayed_tables,
            replayed_mutations,
            replayed_pages,
            torn_wal_tail: scan.torn_tail_truncated,
        };
        let pool = Arc::new(BufferPool::new(pool_pages));
        // Eviction write-back: a dirty victim is persisted (verified,
        // with a delta-class fault draw) before its frame is reused.
        {
            let page_file = Arc::clone(&page_file);
            let faults = faults.clone();
            pool.set_writeback(Arc::new(move |key: PageKey, payload: &[u8]| {
                write_page_verified(
                    &page_file,
                    key.0,
                    key.1,
                    payload,
                    faults
                        .as_deref()
                        .map(|f| f.on_delta_write())
                        .unwrap_or(PageWriteFault::None),
                )
            }));
        }
        Ok((
            Store {
                dir,
                page_file,
                wal,
                pool,
                faults,
                inner: Mutex::new(StoreInner {
                    committed,
                    next_table_id,
                }),
                mutation_lock: Mutex::new(()),
                mutations_applied: AtomicU64::new(0),
                wal_deltas: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// Alias of [`Store::open`]: opening *is* recovering.
    pub fn recover(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        Store::open(dir, pool_pages, faults)
    }

    /// The store's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Names of committed (recoverable) tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .committed
            .keys()
            .cloned()
            .collect()
    }

    /// True iff `name` is committed in this store.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.lock().unwrap().committed.contains_key(name)
    }

    /// The committed meta for `name`, if any.
    pub fn meta(&self, name: &str) -> Option<TableMeta> {
        self.inner.lock().unwrap().committed.get(name).cloned()
    }

    /// Loads an in-memory table into the store: WAL images + commit
    /// (one group fsync), page-file writes (fault-injected), pool
    /// warm-up. Reloading an existing name is a log-structured
    /// replacement: the new incarnation gets a fresh `table_id` and
    /// the name's `version + 1`, and replay order makes it
    /// authoritative.
    pub fn load_table(&self, table: &Table) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let version = inner
            .committed
            .get(table.name())
            .map_or(1, |old| old.version + 1);
        let table_id = inner.next_table_id;
        inner.next_table_id += 1;
        let meta = TableMeta::describe(
            table_id,
            table.name(),
            table.schema(),
            table.row_count(),
            version,
        );
        self.wal.append(&WalRecord::TableMeta(meta.clone()));
        let per_page = table.layout().tuples_per_page as usize;
        let faults = self.faults.as_deref();
        for (page_no, chunk) in table.rows().chunks(per_page.max(1)).enumerate() {
            let payload = encode_rows(chunk);
            self.wal.append(&WalRecord::PageImage {
                table_id,
                page_no: page_no as u32,
                payload: payload.clone(),
            });
            self.page_file
                .write_page(table_id, page_no as u32, &payload, faults)?;
            self.pool.put((table_id, page_no as u32), payload)?;
        }
        self.wal.append(&WalRecord::LoadCommit { table_id });
        self.wal.commit(faults)?;
        inner.committed.insert(meta.name.clone(), meta);
        Ok(version)
    }

    /// One committed page's freshest bytes: a resident pool frame if
    /// any (dirty frames hold post-mutation payloads the page file may
    /// not have yet), else the page file.
    fn committed_page(&self, table_id: u32, page_no: u32) -> Result<Vec<u8>, StoreError> {
        if let Some(payload) = self.pool.peek((table_id, page_no)) {
            return Ok(payload);
        }
        self.page_file.read_page(table_id, page_no)
    }

    /// Reads a committed table back: schema from the meta, rows decoded
    /// page by page — dirty pool frames first (the freshest committed
    /// bytes on a live store), the page file otherwise. On a fresh open
    /// the pool is empty, so this is the restart path that proves the
    /// data really lives on disk.
    pub fn recovered_rows(&self, name: &str) -> Result<(Schema, Vec<Tuple>), StoreError> {
        let meta = self.meta(name).ok_or_else(|| StoreError::Meta {
            detail: format!("no committed table '{name}'"),
        })?;
        let schema = meta.schema()?;
        let layout = PageLayout::for_schema(&schema);
        let page_count = layout.pages(meta.row_count);
        let mut rows = Vec::with_capacity(meta.row_count as usize);
        for page_no in 0..page_count {
            let payload = self.committed_page(meta.table_id, page_no as u32)?;
            rows.extend(decode_rows(&payload, schema.arity())?);
        }
        if rows.len() as u64 != meta.row_count {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "table '{name}': meta promises {} rows, pages held {}",
                    meta.row_count,
                    rows.len()
                ),
            });
        }
        Ok((schema, rows))
    }

    /// A [`PageBacking`] for a committed table, to attach to the
    /// in-memory [`Table`] serving queries.
    pub fn backing_for(&self, name: &str) -> Option<Arc<dyn PageBacking>> {
        let meta = self.meta(name)?;
        Some(Arc::new(TableBacking {
            table_name: meta.name,
            table_id: meta.table_id,
            pool: Arc::clone(&self.pool),
            page_file: Arc::clone(&self.page_file),
        }))
    }

    /// Applies a [`Mutation`] to a committed table, crash-safely.
    /// `cancelled` is polled at every stage boundary before the commit
    /// fsync; once it returns `true` the mutation aborts with
    /// [`StoreError::Cancelled`] and *nothing* — WAL, pool, committed
    /// map — has changed. After the fsync the mutation always
    /// completes. Mutations serialize against each other but run
    /// concurrently with loads, queries, and checkpoints.
    pub fn mutate(
        &self,
        mutation: &Mutation,
        cancelled: &dyn Fn() -> bool,
    ) -> Result<MutationResult, StoreError> {
        let _serialize = self.mutation_lock.lock().unwrap();
        if cancelled() {
            return Err(StoreError::Cancelled);
        }
        let name = mutation.table();
        let meta = self.meta(name).ok_or_else(|| StoreError::Meta {
            detail: format!("no committed table '{name}' to mutate"),
        })?;
        let schema = meta.schema()?;
        let layout = PageLayout::for_schema(&schema);
        let per_page = (layout.tuples_per_page as usize).max(1);

        // Old state, page by page through the pool (dirty frames are
        // fresher than the page file), keeping the payloads for the
        // diff below.
        let old_page_count = layout.pages(meta.row_count);
        let mut old_payloads = Vec::with_capacity(old_page_count as usize);
        let mut old_rows = Vec::with_capacity(meta.row_count as usize);
        for page_no in 0..old_page_count {
            if cancelled() {
                return Err(StoreError::Cancelled);
            }
            let payload = self.committed_page(meta.table_id, page_no as u32)?;
            old_rows.extend(decode_rows(&payload, schema.arity())?);
            old_payloads.push(payload);
        }

        let (new_rows, rows_affected) =
            mutation
                .apply(&schema, &old_rows)
                .map_err(|e| StoreError::Meta {
                    detail: format!("{} on '{name}': {e}", mutation.verb()),
                })?;

        // Diff old vs new page payloads: only changed pages become
        // deltas. A shrink leaves stale trailing records in the page
        // file; readers never touch them (reads are bounded by the
        // committed row count).
        let mut dirty: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut chunks = new_rows.chunks(per_page);
        let new_page_count = layout.pages(new_rows.len() as u64);
        for page_no in 0..new_page_count {
            let payload = encode_rows(chunks.next().unwrap_or(&[]));
            let unchanged = old_payloads
                .get(page_no as usize)
                .is_some_and(|old| *old == payload);
            if !unchanged {
                dirty.push((page_no as u32, payload));
            }
        }

        let new_meta = TableMeta::describe(
            meta.table_id,
            name,
            &schema,
            new_rows.len() as u64,
            meta.version + 1,
        );

        // Last cancellation point: past here the records are appended
        // and will be fsynced. (The WAL's pending buffer is shared, so
        // an abort after appending could leak records into a concurrent
        // load's commit — hence poll *before* touching the log.)
        if cancelled() {
            return Err(StoreError::Cancelled);
        }
        for (page_no, payload) in &dirty {
            self.wal.append(&WalRecord::PageDelta {
                table_id: meta.table_id,
                page_no: *page_no,
                payload: payload.clone(),
            });
        }
        self.wal.append(&WalRecord::MutationCommit {
            meta: new_meta.clone(),
            rows_affected,
        });
        self.wal.commit(self.faults.as_deref())?; // ← the commit point
        self.wal_deltas
            .fetch_add(dirty.len() as u64, Ordering::Relaxed);

        // Steal-committed-only: dirty payloads enter the pool only
        // after the commit fsync, so eviction write-back and checkpoint
        // flush can never persist uncommitted bytes.
        for (page_no, payload) in dirty {
            self.pool.put_dirty((meta.table_id, page_no), payload)?;
        }
        self.inner
            .lock()
            .unwrap()
            .committed
            .insert(name.to_string(), new_meta.clone());
        self.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(MutationResult {
            rows_affected,
            row_count: new_meta.row_count,
            version: new_meta.version,
        })
    }

    /// Fuzzy checkpoint: flush dirty pages, scrub, fsync, publish the
    /// manifest, truncate the WAL prefix captured at entry. Runs
    /// concurrently with loads, mutations, and queries — the only lock
    /// it takes is a brief metadata snapshot for the manifest.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        self.checkpoint_until(CheckpointPhase::Done)
    }

    /// [`Store::checkpoint`] that stops after `phase` — the chaos
    /// harness's deterministic mid-checkpoint crash injection. Every
    /// prefix of the checkpoint must leave a recoverable store: the WAL
    /// is only truncated in the final step, after everything it
    /// protected is durable elsewhere.
    pub fn checkpoint_until(&self, phase: CheckpointPhase) -> Result<(), StoreError> {
        // 1. Capture the cut. Anything committed after this lands at
        //    offsets >= cut and survives the truncate.
        let cut = self.wal.durable_len()?;

        // 2. Flush dirty pool pages, verified: a torn write-back
        //    (delta fault class) is detected by checksum and retried
        //    fault-free — the WAL must never be dropped while a flushed
        //    page is secretly torn.
        for ((table_id, page_no), payload) in self.pool.take_dirty() {
            let fault = self
                .faults
                .as_deref()
                .map(|f| f.on_delta_write())
                .unwrap_or(PageWriteFault::None);
            write_page_verified(&self.page_file, table_id, page_no, &payload, fault)?;
        }
        if phase == CheckpointPhase::Flush {
            return Ok(());
        }

        // 3. Scrub from the log: the *last* logged payload per page
        //    (images and deltas; log order = commit order) must verify
        //    on disk before the log may be dropped. Scrub rewrites draw
        //    from their own fault class and are verified the same way.
        let mut protected: BTreeMap<(u32, u32), Vec<u8>> = BTreeMap::new();
        for record in self.wal.disk_records()? {
            match record {
                WalRecord::PageImage {
                    table_id,
                    page_no,
                    payload,
                }
                | WalRecord::PageDelta {
                    table_id,
                    page_no,
                    payload,
                } => {
                    protected.insert((table_id, page_no), payload);
                }
                _ => {}
            }
        }
        for ((table_id, page_no), payload) in protected {
            if !self.page_file.record_is_valid(table_id, page_no) {
                let fault = self
                    .faults
                    .as_deref()
                    .map(|f| f.on_scrub_write())
                    .unwrap_or(PageWriteFault::None);
                write_page_verified(&self.page_file, table_id, page_no, &payload, fault)?;
            }
        }
        if phase == CheckpointPhase::Scrub {
            return Ok(());
        }

        // 4. Make the page file durable.
        if let Some(plan) = &self.faults {
            plan.on_fsync();
        }
        self.page_file.sync()?;
        if phase == CheckpointPhase::Sync {
            return Ok(());
        }

        // 5. Publish the manifest. The snapshot is taken *after* the
        //    cut, so every commit the truncate will drop is in it;
        //    commits newer than the cut may also be in it, which is
        //    fine — their WAL records replay idempotently.
        let snapshot = self.inner.lock().unwrap().committed.clone();
        write_manifest(&self.dir, &snapshot)?;
        if phase == CheckpointPhase::Manifest {
            return Ok(());
        }

        // 6. Drop exactly what was protected at entry.
        self.wal.truncate_prefix(cut)?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drops unpinned pool pages (cold-start lever for parity tests).
    pub fn clear_pool(&self) -> usize {
        self.pool.clear()
    }

    /// Counter snapshot across pool, WAL, and page file.
    pub fn stats(&self) -> StoreStats {
        let PoolStats {
            hits,
            misses,
            evictions,
            dirty_writebacks,
        } = self.pool.stats();
        StoreStats {
            pool_hits: hits,
            pool_misses: misses,
            pool_evictions: evictions,
            wal_fsyncs: self.wal.fsyncs(),
            physical_reads: self.page_file.physical_reads(),
            physical_writes: self.page_file.physical_writes(),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            wal_deltas: self.wal_deltas.load(Ordering::Relaxed),
            dirty_pages: self.pool.dirty_pages() as u64,
            dirty_writebacks,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Current WAL size in bytes (zero right after a checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.size_bytes()
    }
}

/// The per-table [`PageBacking`] handed to in-memory tables: a pool
/// lookup per logical page, a physical page-file read per miss.
#[derive(Debug)]
struct TableBacking {
    table_name: String,
    table_id: u32,
    pool: Arc<BufferPool>,
    page_file: Arc<PageFile>,
}

impl PageBacking for TableBacking {
    fn read_page(&self, page_no: u64) -> Result<(), StorageError> {
        let key = (self.table_id, page_no as u32);
        self.pool
            .get(key, || self.page_file.read_page(key.0, key.1))
            .map(|_guard| ())
            .map_err(|e| StorageError::Backing {
                detail: format!("table '{}' page {page_no}: {e}", self.table_name),
            })
    }
}

/// A page-file write that must not silently tear: perform the write
/// with the drawn `fault`, verify the record's checksum, and if the
/// fault took the write down retry once fault-free. Used by eviction
/// write-back and both checkpoint write paths — the WAL is the only
/// place allowed to hold a page's sole intact copy, and only until the
/// checkpoint that drops it has proven the disk copy valid.
fn write_page_verified(
    page_file: &PageFile,
    table_id: u32,
    page_no: u32,
    payload: &[u8],
    fault: PageWriteFault,
) -> Result<(), StoreError> {
    page_file.write_page_with(table_id, page_no, payload, fault)?;
    if !page_file.record_is_valid(table_id, page_no) {
        page_file.write_page_with(table_id, page_no, payload, PageWriteFault::None)?;
    }
    Ok(())
}

fn read_manifest(path: &Path) -> Result<BTreeMap<String, TableMeta>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(StoreError::io(format!("read {}", path.display()), e)),
    };
    let mut pos = 0usize;
    let len = get_u32(&bytes, &mut pos)? as usize;
    let want = crate::codec::get_u64(&bytes, &mut pos)?;
    if pos + len != bytes.len() {
        return Err(StoreError::Corrupt {
            detail: "manifest length field disagrees with file size".into(),
        });
    }
    let body = &bytes[pos..];
    if crc64(body) != want {
        return Err(StoreError::Corrupt {
            detail: "manifest crc mismatch".into(),
        });
    }
    let mut p = 0usize;
    let count = get_u32(body, &mut p)? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..count {
        let meta = TableMeta::decode(body, &mut p)?;
        tables.insert(meta.name.clone(), meta);
    }
    Ok(tables)
}

fn write_manifest(dir: &Path, tables: &BTreeMap<String, TableMeta>) -> Result<(), StoreError> {
    let mut body = Vec::new();
    body.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for meta in tables.values() {
        body.extend_from_slice(&meta.encode());
    }
    let mut framed = Vec::with_capacity(body.len() + 12);
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc64(&body).to_le_bytes());
    framed.extend_from_slice(&body);

    let tmp = dir.join("manifest.tmp");
    let target = dir.join(MANIFEST);
    {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| StoreError::io(format!("create {}", tmp.display()), e))?;
        use std::io::Write;
        f.write_all(&framed)
            .map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        f.sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", tmp.display()), e))?;
    }
    std::fs::rename(&tmp, &target)
        .map_err(|e| StoreError::io(format!("rename to {}", target.display()), e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all(); // directory fsync: best-effort on non-POSIX
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use fj_storage::{CostLedger, DataType, TableBuilder, Value};

    fn sample_table(name: &str, rows: usize) -> Table {
        TableBuilder::new(name)
            .column("k", DataType::Int)
            .column("label", DataType::Str)
            .rows((0..rows).map(|i| vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))]))
            .build()
            .unwrap()
    }

    #[test]
    fn load_then_recover_round_trips_rows() {
        let dir = TempDir::new("store-rt");
        let table = sample_table("T", 500);
        {
            let (store, report) = Store::open(dir.path(), 64, None).unwrap();
            assert_eq!(report, RecoveryReport::default());
            store.load_table(&table).unwrap();
            assert!(store.has_table("T"));
            assert_eq!(store.stats().wal_fsyncs, 1);
            // No checkpoint: recovery must come from the WAL.
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.replayed_tables, 1);
        assert!(report.replayed_pages > 0);
        let (schema, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(&schema, table.schema().as_ref());
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn checkpoint_truncates_wal_and_manifest_carries_tables() {
        let dir = TempDir::new("store-ckpt");
        let table = sample_table("T", 200);
        {
            let (store, _) = Store::open(dir.path(), 64, None).unwrap();
            store.load_table(&table).unwrap();
            assert!(store.wal_bytes() > 0);
            store.checkpoint().unwrap();
            assert_eq!(store.wal_bytes(), 0);
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.manifest_tables, 1);
        assert_eq!(report.replayed_tables, 0, "nothing left in the WAL");
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn reloading_a_name_bumps_its_version_and_replaces_rows() {
        let dir = TempDir::new("store-dup");
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            assert_eq!(store.load_table(&sample_table("T", 10)).unwrap(), 1);
            assert_eq!(store.load_table(&sample_table("T", 25)).unwrap(), 2);
            let meta = store.meta("T").unwrap();
            assert_eq!((meta.version, meta.row_count), (2, 25));
        }
        // Replay in log order makes the later incarnation authoritative.
        let (store, report) = Store::open(dir.path(), 16, None).unwrap();
        assert_eq!(report.replayed_tables, 2);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, sample_table("T", 25).rows());
    }

    #[test]
    fn backing_counts_hits_and_misses() {
        let dir = TempDir::new("store-backing");
        let (store, _) = Store::open(dir.path(), 64, None).unwrap();
        let table = sample_table("T", 300);
        store.load_table(&table).unwrap();
        let backing = store.backing_for("T").unwrap();
        table.attach_backing(backing);

        // Load warmed the pool: a scan is all hits, zero physical reads.
        let before = store.stats();
        let ledger = CostLedger::new();
        table.scan_checked(&ledger, None).unwrap();
        let after = store.stats();
        assert_eq!(after.pool_hits - before.pool_hits, table.page_count());
        assert_eq!(after.pool_misses, before.pool_misses);
        assert_eq!(after.physical_reads, before.physical_reads);

        // Cold pool: every page is a miss and a physical read, and the
        // ledger's simulated charges equal the physical count exactly.
        store.clear_pool();
        let before = store.stats();
        let ledger = CostLedger::new();
        table.scan_checked(&ledger, None).unwrap();
        let after = store.stats();
        assert_eq!(after.pool_misses - before.pool_misses, table.page_count());
        assert_eq!(
            after.physical_reads - before.physical_reads,
            ledger.snapshot().page_reads
        );
    }

    #[test]
    fn empty_table_commits_with_zero_pages() {
        let dir = TempDir::new("store-empty");
        let table = sample_table("E", 0);
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&table).unwrap();
        }
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        let (_, rows) = store.recovered_rows("E").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn torn_load_heals_on_recovery() {
        let dir = TempDir::new("store-torn");
        let table = sample_table("T", 400);
        {
            // Every page write torn: the page file is garbage, the WAL
            // is intact (its records are written + fsynced whole).
            let faults = Arc::new(FaultPlan::new(3).with_torn_page_writes(1));
            let (store, _) = Store::open(dir.path(), 64, Some(faults)).unwrap();
            store.load_table(&table).unwrap();
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert!(report.replayed_pages > 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows(), "WAL replay must heal torn pages");
    }

    #[test]
    fn checkpoint_scrub_heals_torn_pages_before_dropping_wal() {
        let dir = TempDir::new("store-scrub");
        let table = sample_table("T", 400);
        {
            let faults = Arc::new(FaultPlan::new(3).with_torn_page_writes(1));
            let (store, _) = Store::open(dir.path(), 64, Some(faults)).unwrap();
            store.load_table(&table).unwrap();
            // Checkpoint with torn pages on disk: scrub must heal them
            // from the WAL before truncating it.
            store.checkpoint().unwrap();
            assert_eq!(store.wal_bytes(), 0);
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.replayed_tables, 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn uncommitted_load_invisible_after_crash() {
        let dir = TempDir::new("store-uncommitted");
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&sample_table("A", 50)).unwrap();
            // Simulate a crash mid-load of B: append meta + images to
            // the WAL but no commit, and never fsync.
            let b = sample_table("B", 50);
            let meta = TableMeta::describe(99, "B", b.schema(), b.row_count(), 1);
            store.wal.append(&WalRecord::TableMeta(meta));
            store.wal.append(&WalRecord::PageImage {
                table_id: 99,
                page_no: 0,
                payload: encode_rows(&b.rows()[..10]),
            });
            store.wal.commit(None).unwrap(); // batch reached disk, commit record did not
        }
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        assert!(store.has_table("A"));
        assert!(!store.has_table("B"), "no LoadCommit → not recovered");
    }

    const NEVER: fn() -> bool = || false;

    fn delete_even(table: &str) -> Mutation {
        Mutation::Delete {
            table: table.into(),
            where_col: "label".into(),
            where_value: Value::Str("row-2".into()),
        }
    }

    #[test]
    fn mutations_round_trip_live_and_after_restart() {
        let dir = TempDir::new("store-mut");
        let table = sample_table("T", 300);
        let oracle_schema = table.schema().as_ref().clone();
        let mut oracle_rows = table.rows().to_vec();
        let muts = [
            Mutation::Insert {
                table: "T".into(),
                rows: vec![vec![Value::Int(900), Value::Str("extra".into())]],
            },
            Mutation::Update {
                table: "T".into(),
                set: vec![("label".into(), Value::Str("patched".into()))],
                where_col: "k".into(),
                where_value: Value::Int(7),
            },
            delete_even("T"),
        ];
        {
            let (store, _) = Store::open(dir.path(), 64, None).unwrap();
            store.load_table(&table).unwrap();
            for (i, m) in muts.iter().enumerate() {
                let result = store.mutate(m, &NEVER).unwrap();
                assert_eq!(result.version, 2 + i as u64, "each mutation bumps version");
                let (rows, affected) = m.apply(&oracle_schema, &oracle_rows).unwrap();
                assert_eq!(result.rows_affected, affected);
                assert_eq!(result.row_count, rows.len() as u64);
                oracle_rows = rows;
            }
            // Live reads see the mutated state through dirty frames.
            let (_, rows) = store.recovered_rows("T").unwrap();
            assert_eq!(rows, oracle_rows);
            let stats = store.stats();
            assert_eq!(stats.mutations_applied, 3);
            assert!(stats.wal_deltas > 0);
            assert!(
                stats.dirty_pages > 0,
                "no checkpoint yet: frames stay dirty"
            );
        }
        // Restart (no checkpoint ran): the WAL alone must rebuild the
        // mutated state, byte-identically, twice over.
        for _ in 0..2 {
            let (store, report) = Store::open(dir.path(), 64, None).unwrap();
            assert_eq!(report.replayed_mutations, 3);
            let (_, rows) = store.recovered_rows("T").unwrap();
            assert_eq!(rows, oracle_rows);
        }
    }

    #[test]
    fn cancelled_mutation_leaves_no_state() {
        let dir = TempDir::new("store-cancel");
        let table = sample_table("T", 60);
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        store.load_table(&table).unwrap();
        let before_wal = store.wal_bytes();
        let err = store.mutate(&delete_even("T"), &|| true).unwrap_err();
        assert_eq!(err, StoreError::Cancelled);
        assert_eq!(store.wal_bytes(), before_wal, "nothing reached the WAL");
        assert_eq!(store.meta("T").unwrap().version, 1);
        assert_eq!(store.stats().mutations_applied, 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn uncommitted_deltas_dropped_on_recovery() {
        let dir = TempDir::new("store-orphan-delta");
        let table = sample_table("T", 40);
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&table).unwrap();
            // A mutation that crashed after its delta but before its
            // commit marker: the delta must never be applied.
            let meta = store.meta("T").unwrap();
            store.wal.append(&WalRecord::PageDelta {
                table_id: meta.table_id,
                page_no: 0,
                payload: encode_rows(&table.rows()[..1]),
            });
            store.wal.commit(None).unwrap(); // durable, but no MutationCommit
        }
        let (store, report) = Store::open(dir.path(), 16, None).unwrap();
        assert_eq!(report.replayed_mutations, 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows(), "orphan delta must not surface");
    }

    #[test]
    fn mutating_a_missing_table_is_a_meta_error() {
        let dir = TempDir::new("store-mut-missing");
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        let err = store.mutate(&delete_even("Ghost"), &NEVER).unwrap_err();
        assert!(matches!(err, StoreError::Meta { .. }));
    }

    #[test]
    fn fuzzy_checkpoint_flushes_dirty_pages_and_truncates_wal() {
        let dir = TempDir::new("store-fuzzy");
        let table = sample_table("T", 200);
        let oracle = {
            let (rows, _) = delete_even("T")
                .apply(table.schema(), table.rows())
                .unwrap();
            rows
        };
        {
            let (store, _) = Store::open(dir.path(), 64, None).unwrap();
            store.load_table(&table).unwrap();
            store.mutate(&delete_even("T"), &NEVER).unwrap();
            assert!(store.stats().dirty_pages > 0);
            store.checkpoint().unwrap();
            let stats = store.stats();
            assert_eq!(stats.dirty_pages, 0, "checkpoint flushed every frame");
            assert_eq!(stats.checkpoints, 1);
            assert_eq!(store.wal_bytes(), 0);
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.replayed_mutations, 0, "WAL fully truncated");
        assert_eq!(report.manifest_tables, 1);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, oracle);
    }

    #[test]
    fn commits_after_the_cut_survive_checkpoint_truncation() {
        let dir = TempDir::new("store-cut");
        let table = sample_table("T", 120);
        let (store, _) = Store::open(dir.path(), 64, None).unwrap();
        store.load_table(&table).unwrap();
        // Run the checkpoint up to (but not including) the truncate,
        // then commit a mutation — it lands after the captured cut and
        // must survive the truncate that a resumed checkpoint performs.
        store.checkpoint_until(CheckpointPhase::Manifest).unwrap();
        store.mutate(&delete_even("T"), &NEVER).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let (store, _) = Store::open(dir.path(), 64, None).unwrap();
        let (_, rows) = store.recovered_rows("T").unwrap();
        let (oracle, _) = delete_even("T")
            .apply(table.schema(), table.rows())
            .unwrap();
        assert_eq!(rows, oracle);
    }

    #[test]
    fn every_checkpoint_phase_recovers_the_committed_prefix() {
        use CheckpointPhase::*;
        let table = sample_table("T", 250);
        let (oracle, _) = delete_even("T")
            .apply(table.schema(), table.rows())
            .unwrap();
        for (i, phase) in [Flush, Scrub, Sync, Manifest, Done].into_iter().enumerate() {
            let dir = TempDir::new(&format!("store-phase-{i}"));
            {
                // Torn delta + scrub writes armed: the checkpoint's own
                // writes tear and must self-verify.
                let faults = Arc::new(
                    FaultPlan::new(0xD15C)
                        .with_torn_delta_writes(2)
                        .with_torn_scrub_writes(2),
                );
                let (store, _) = Store::open(dir.path(), 64, Some(faults)).unwrap();
                store.load_table(&table).unwrap();
                store.mutate(&delete_even("T"), &NEVER).unwrap();
                store.checkpoint_until(phase).unwrap();
                // Hard stop here: the store is dropped mid-checkpoint.
            }
            for round in 0..2 {
                let (store, _) = Store::open(dir.path(), 64, None).unwrap();
                let (_, rows) = store.recovered_rows("T").unwrap();
                assert_eq!(
                    rows, oracle,
                    "phase {phase:?}, re-open {round}: committed prefix must recover"
                );
            }
        }
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let dir = TempDir::new("store-evict-wb");
        // Pool of 4 frames, table of many pages: mutation dirties
        // frames, reloading another table evicts them through the
        // write-back path.
        let (store, _) = Store::open(dir.path(), 4, None).unwrap();
        let table = sample_table("T", 400);
        store.load_table(&table).unwrap();
        store
            .mutate(
                &Mutation::Update {
                    table: "T".into(),
                    set: vec![("label".into(), Value::Str("x".into()))],
                    where_col: "k".into(),
                    where_value: Value::Int(1),
                },
                &NEVER,
            )
            .unwrap();
        store.load_table(&sample_table("U", 400)).unwrap();
        assert!(store.stats().dirty_writebacks > 0, "eviction wrote back");
        drop(store);
        let (store, _) = Store::open(dir.path(), 64, None).unwrap();
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows.len(), 400);
        assert_eq!(rows[1].value(1), &Value::Str("x".into()));
    }
}
