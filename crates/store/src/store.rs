//! The store: page file + buffer pool + WAL + manifest, with recovery.
//!
//! ## Protocol
//!
//! **Load** (the only write path — tables are immutable once loaded):
//! append the table's meta and every page image to the WAL, write each
//! page to the page file (through the fault plan: this is where torn
//! writes land) and warm it into the pool, append a commit marker, then
//! group-fsync the WAL once. The page file is *not* synced on load.
//!
//! **Recovery** ([`Store::open`] ≡ [`Store::recover`]): read the
//! manifest (tables durable as of the last checkpoint), scan the page
//! file (checksum-verifying every record), then replay the WAL —
//! committed loads only — writing page images back into the page file
//! *in place*. Replay is idempotent: same images, same offsets, so
//! replaying twice is byte-identical. A torn WAL tail is truncated at
//! scan time, never replayed; a torn page-file record is healed by its
//! WAL image.
//!
//! **Checkpoint** ([`Store::checkpoint`]): scrub (re-verify every page
//! the WAL still protects, rewriting any torn record from its logged
//! image), fsync the page file, atomically publish the manifest
//! (tmp + rename + dir fsync), then truncate the WAL. After a
//! checkpoint the page file alone is authoritative.

use crate::checksum::crc64;
use crate::codec::{decode_rows, encode_rows, get_u32, TableMeta};
use crate::error::StoreError;
use crate::page_file::PageFile;
use crate::pool::{BufferPool, PoolStats};
use crate::wal::{Wal, WalRecord};
use fj_storage::{FaultPlan, PageBacking, PageLayout, Schema, StorageError, Table, Tuple};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const MANIFEST: &str = "manifest.fj";
const PAGES: &str = "pages.fj";
const WAL: &str = "wal.fj";

/// Counter snapshot across the pool, WAL, and page file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Buffer-pool lookups served from memory.
    pub pool_hits: u64,
    /// Buffer-pool lookups that went to disk.
    pub pool_misses: u64,
    /// Pages displaced from the pool.
    pub pool_evictions: u64,
    /// WAL group fsyncs issued.
    pub wal_fsyncs: u64,
    /// Physical page-file record reads.
    pub physical_reads: u64,
    /// Physical page-file record writes.
    pub physical_writes: u64,
}

#[derive(Debug)]
struct StoreInner {
    committed: BTreeMap<String, TableMeta>,
    next_table_id: u32,
}

/// A disk-backed page store rooted at one data directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    page_file: Arc<PageFile>,
    wal: Wal,
    pool: Arc<BufferPool>,
    faults: Option<Arc<FaultPlan>>,
    inner: Mutex<StoreInner>,
}

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables durable via the manifest (last checkpoint).
    pub manifest_tables: usize,
    /// Committed loads replayed from the WAL.
    pub replayed_tables: usize,
    /// Page images written back during replay.
    pub replayed_pages: usize,
    /// True iff a torn WAL tail was detected and truncated.
    pub torn_wal_tail: bool,
}

impl Store {
    /// Opens (and always recovers) the store at `dir`, creating it on
    /// first use. `pool_pages` sizes the buffer pool; `faults` is the
    /// seeded chaos plan threaded through writes and fsyncs.
    pub fn open(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}", dir.display()), e))?;
        let page_file = Arc::new(PageFile::open(dir.join(PAGES))?);
        let mut committed = read_manifest(&dir.join(MANIFEST))?;
        let manifest_tables = committed.len();
        let (wal, scan) = Wal::open(dir.join(WAL))?;

        // Replay committed loads, in log order, page images in place.
        // Per table: the logged metadata (if seen) plus (page_no, payload) images.
        type PendingLoad = (Option<TableMeta>, Vec<(u32, Vec<u8>)>);
        let mut pending: BTreeMap<u32, PendingLoad> = BTreeMap::new();
        let mut replayed_tables = 0usize;
        let mut replayed_pages = 0usize;
        for record in &scan.records {
            match record {
                WalRecord::TableMeta(meta) => {
                    pending.entry(meta.table_id).or_default().0 = Some(meta.clone());
                }
                WalRecord::PageImage {
                    table_id,
                    page_no,
                    payload,
                } => {
                    pending
                        .entry(*table_id)
                        .or_default()
                        .1
                        .push((*page_no, payload.clone()));
                }
                WalRecord::LoadCommit { table_id } => {
                    let Some((Some(meta), images)) = pending.remove(table_id) else {
                        return Err(StoreError::Corrupt {
                            detail: format!("WAL commit for table {table_id} without a meta"),
                        });
                    };
                    for (page_no, payload) in &images {
                        // Replay never draws faults: recovery is the
                        // healing path, not the chaotic one.
                        page_file.write_page(meta.table_id, *page_no, payload, None)?;
                        replayed_pages += 1;
                    }
                    committed.insert(meta.name.clone(), meta);
                    replayed_tables += 1;
                }
            }
        }
        if replayed_pages > 0 {
            page_file.sync()?;
        }

        let next_table_id = committed
            .values()
            .map(|m| m.table_id)
            .max()
            .map_or(0, |m| m + 1);
        let report = RecoveryReport {
            manifest_tables,
            replayed_tables,
            replayed_pages,
            torn_wal_tail: scan.torn_tail_truncated,
        };
        Ok((
            Store {
                dir,
                page_file,
                wal,
                pool: Arc::new(BufferPool::new(pool_pages)),
                faults,
                inner: Mutex::new(StoreInner {
                    committed,
                    next_table_id,
                }),
            },
            report,
        ))
    }

    /// Alias of [`Store::open`]: opening *is* recovering.
    pub fn recover(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        Store::open(dir, pool_pages, faults)
    }

    /// The store's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Names of committed (recoverable) tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .committed
            .keys()
            .cloned()
            .collect()
    }

    /// True iff `name` is committed in this store.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.lock().unwrap().committed.contains_key(name)
    }

    /// The committed meta for `name`, if any.
    pub fn meta(&self, name: &str) -> Option<TableMeta> {
        self.inner.lock().unwrap().committed.get(name).cloned()
    }

    /// Loads an in-memory table into the store: WAL images + commit
    /// (one group fsync), page-file writes (fault-injected), pool
    /// warm-up. Errors on a duplicate name — the store's tables are
    /// immutable once committed.
    pub fn load_table(&self, table: &Table) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.committed.contains_key(table.name()) {
            return Err(StoreError::Meta {
                detail: format!("table '{}' is already loaded", table.name()),
            });
        }
        let table_id = inner.next_table_id;
        inner.next_table_id += 1;
        let meta = TableMeta::describe(table_id, table.name(), table.schema(), table.row_count());
        self.wal.append(&WalRecord::TableMeta(meta.clone()));
        let per_page = table.layout().tuples_per_page as usize;
        let faults = self.faults.as_deref();
        for (page_no, chunk) in table.rows().chunks(per_page.max(1)).enumerate() {
            let payload = encode_rows(chunk);
            self.wal.append(&WalRecord::PageImage {
                table_id,
                page_no: page_no as u32,
                payload: payload.clone(),
            });
            self.page_file
                .write_page(table_id, page_no as u32, &payload, faults)?;
            self.pool.put((table_id, page_no as u32), payload)?;
        }
        self.wal.append(&WalRecord::LoadCommit { table_id });
        self.wal.commit(faults)?;
        inner.committed.insert(meta.name.clone(), meta);
        Ok(())
    }

    /// Reads a committed table back from the page file: schema from the
    /// meta, rows decoded page by page. This is the restart path that
    /// proves the data really lives on disk.
    pub fn recovered_rows(&self, name: &str) -> Result<(Schema, Vec<Tuple>), StoreError> {
        let meta = self.meta(name).ok_or_else(|| StoreError::Meta {
            detail: format!("no committed table '{name}'"),
        })?;
        let schema = meta.schema()?;
        let layout = PageLayout::for_schema(&schema);
        let page_count = layout.pages(meta.row_count);
        let mut rows = Vec::with_capacity(meta.row_count as usize);
        for page_no in 0..page_count {
            let payload = self.page_file.read_page(meta.table_id, page_no as u32)?;
            rows.extend(decode_rows(&payload, schema.arity())?);
        }
        if rows.len() as u64 != meta.row_count {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "table '{name}': meta promises {} rows, pages held {}",
                    meta.row_count,
                    rows.len()
                ),
            });
        }
        Ok((schema, rows))
    }

    /// A [`PageBacking`] for a committed table, to attach to the
    /// in-memory [`Table`] serving queries.
    pub fn backing_for(&self, name: &str) -> Option<Arc<dyn PageBacking>> {
        let meta = self.meta(name)?;
        Some(Arc::new(TableBacking {
            table_name: meta.name,
            table_id: meta.table_id,
            pool: Arc::clone(&self.pool),
            page_file: Arc::clone(&self.page_file),
        }))
    }

    /// Checkpoints: scrub WAL-protected pages (healing torn records
    /// from their logged images), fsync the page file, atomically
    /// publish the manifest, truncate the WAL.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let inner = self.inner.lock().unwrap();
        // Scrub from the log: every image the WAL still protects must
        // verify on disk before the log may be dropped. Scrub rewrites
        // bypass fault injection — they model the verified retry a real
        // checkpointer performs, not a fresh chance to tear.
        for record in self.wal.disk_records()? {
            if let WalRecord::PageImage {
                table_id,
                page_no,
                payload,
            } = record
            {
                if !self.page_file.record_is_valid(table_id, page_no) {
                    self.page_file
                        .write_page(table_id, page_no, &payload, None)?;
                }
            }
        }
        if let Some(plan) = &self.faults {
            plan.on_fsync();
        }
        self.page_file.sync()?;
        write_manifest(&self.dir, &inner.committed)?;
        self.wal.truncate()?;
        Ok(())
    }

    /// Drops unpinned pool pages (cold-start lever for parity tests).
    pub fn clear_pool(&self) -> usize {
        self.pool.clear()
    }

    /// Counter snapshot across pool, WAL, and page file.
    pub fn stats(&self) -> StoreStats {
        let PoolStats {
            hits,
            misses,
            evictions,
        } = self.pool.stats();
        StoreStats {
            pool_hits: hits,
            pool_misses: misses,
            pool_evictions: evictions,
            wal_fsyncs: self.wal.fsyncs(),
            physical_reads: self.page_file.physical_reads(),
            physical_writes: self.page_file.physical_writes(),
        }
    }

    /// Current WAL size in bytes (zero right after a checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.size_bytes()
    }
}

/// The per-table [`PageBacking`] handed to in-memory tables: a pool
/// lookup per logical page, a physical page-file read per miss.
#[derive(Debug)]
struct TableBacking {
    table_name: String,
    table_id: u32,
    pool: Arc<BufferPool>,
    page_file: Arc<PageFile>,
}

impl PageBacking for TableBacking {
    fn read_page(&self, page_no: u64) -> Result<(), StorageError> {
        let key = (self.table_id, page_no as u32);
        self.pool
            .get(key, || self.page_file.read_page(key.0, key.1))
            .map(|_guard| ())
            .map_err(|e| StorageError::Backing {
                detail: format!("table '{}' page {page_no}: {e}", self.table_name),
            })
    }
}

fn read_manifest(path: &Path) -> Result<BTreeMap<String, TableMeta>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(StoreError::io(format!("read {}", path.display()), e)),
    };
    let mut pos = 0usize;
    let len = get_u32(&bytes, &mut pos)? as usize;
    let want = crate::codec::get_u64(&bytes, &mut pos)?;
    if pos + len != bytes.len() {
        return Err(StoreError::Corrupt {
            detail: "manifest length field disagrees with file size".into(),
        });
    }
    let body = &bytes[pos..];
    if crc64(body) != want {
        return Err(StoreError::Corrupt {
            detail: "manifest crc mismatch".into(),
        });
    }
    let mut p = 0usize;
    let count = get_u32(body, &mut p)? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..count {
        let meta = TableMeta::decode(body, &mut p)?;
        tables.insert(meta.name.clone(), meta);
    }
    Ok(tables)
}

fn write_manifest(dir: &Path, tables: &BTreeMap<String, TableMeta>) -> Result<(), StoreError> {
    let mut body = Vec::new();
    body.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for meta in tables.values() {
        body.extend_from_slice(&meta.encode());
    }
    let mut framed = Vec::with_capacity(body.len() + 12);
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc64(&body).to_le_bytes());
    framed.extend_from_slice(&body);

    let tmp = dir.join("manifest.tmp");
    let target = dir.join(MANIFEST);
    {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| StoreError::io(format!("create {}", tmp.display()), e))?;
        use std::io::Write;
        f.write_all(&framed)
            .map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        f.sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", tmp.display()), e))?;
    }
    std::fs::rename(&tmp, &target)
        .map_err(|e| StoreError::io(format!("rename to {}", target.display()), e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all(); // directory fsync: best-effort on non-POSIX
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use fj_storage::{CostLedger, DataType, TableBuilder, Value};

    fn sample_table(name: &str, rows: usize) -> Table {
        TableBuilder::new(name)
            .column("k", DataType::Int)
            .column("label", DataType::Str)
            .rows((0..rows).map(|i| vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))]))
            .build()
            .unwrap()
    }

    #[test]
    fn load_then_recover_round_trips_rows() {
        let dir = TempDir::new("store-rt");
        let table = sample_table("T", 500);
        {
            let (store, report) = Store::open(dir.path(), 64, None).unwrap();
            assert_eq!(report, RecoveryReport::default());
            store.load_table(&table).unwrap();
            assert!(store.has_table("T"));
            assert_eq!(store.stats().wal_fsyncs, 1);
            // No checkpoint: recovery must come from the WAL.
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.replayed_tables, 1);
        assert!(report.replayed_pages > 0);
        let (schema, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(&schema, table.schema().as_ref());
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn checkpoint_truncates_wal_and_manifest_carries_tables() {
        let dir = TempDir::new("store-ckpt");
        let table = sample_table("T", 200);
        {
            let (store, _) = Store::open(dir.path(), 64, None).unwrap();
            store.load_table(&table).unwrap();
            assert!(store.wal_bytes() > 0);
            store.checkpoint().unwrap();
            assert_eq!(store.wal_bytes(), 0);
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.manifest_tables, 1);
        assert_eq!(report.replayed_tables, 0, "nothing left in the WAL");
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn duplicate_load_rejected() {
        let dir = TempDir::new("store-dup");
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        store.load_table(&sample_table("T", 10)).unwrap();
        let err = store.load_table(&sample_table("T", 10)).unwrap_err();
        assert!(matches!(err, StoreError::Meta { .. }));
    }

    #[test]
    fn backing_counts_hits_and_misses() {
        let dir = TempDir::new("store-backing");
        let (store, _) = Store::open(dir.path(), 64, None).unwrap();
        let table = sample_table("T", 300);
        store.load_table(&table).unwrap();
        let backing = store.backing_for("T").unwrap();
        table.attach_backing(backing);

        // Load warmed the pool: a scan is all hits, zero physical reads.
        let before = store.stats();
        let ledger = CostLedger::new();
        table.scan_checked(&ledger, None).unwrap();
        let after = store.stats();
        assert_eq!(after.pool_hits - before.pool_hits, table.page_count());
        assert_eq!(after.pool_misses, before.pool_misses);
        assert_eq!(after.physical_reads, before.physical_reads);

        // Cold pool: every page is a miss and a physical read, and the
        // ledger's simulated charges equal the physical count exactly.
        store.clear_pool();
        let before = store.stats();
        let ledger = CostLedger::new();
        table.scan_checked(&ledger, None).unwrap();
        let after = store.stats();
        assert_eq!(after.pool_misses - before.pool_misses, table.page_count());
        assert_eq!(
            after.physical_reads - before.physical_reads,
            ledger.snapshot().page_reads
        );
    }

    #[test]
    fn empty_table_commits_with_zero_pages() {
        let dir = TempDir::new("store-empty");
        let table = sample_table("E", 0);
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&table).unwrap();
        }
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        let (_, rows) = store.recovered_rows("E").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn torn_load_heals_on_recovery() {
        let dir = TempDir::new("store-torn");
        let table = sample_table("T", 400);
        {
            // Every page write torn: the page file is garbage, the WAL
            // is intact (its records are written + fsynced whole).
            let faults = Arc::new(FaultPlan::new(3).with_torn_page_writes(1));
            let (store, _) = Store::open(dir.path(), 64, Some(faults)).unwrap();
            store.load_table(&table).unwrap();
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert!(report.replayed_pages > 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows(), "WAL replay must heal torn pages");
    }

    #[test]
    fn checkpoint_scrub_heals_torn_pages_before_dropping_wal() {
        let dir = TempDir::new("store-scrub");
        let table = sample_table("T", 400);
        {
            let faults = Arc::new(FaultPlan::new(3).with_torn_page_writes(1));
            let (store, _) = Store::open(dir.path(), 64, Some(faults)).unwrap();
            store.load_table(&table).unwrap();
            // Checkpoint with torn pages on disk: scrub must heal them
            // from the WAL before truncating it.
            store.checkpoint().unwrap();
            assert_eq!(store.wal_bytes(), 0);
        }
        let (store, report) = Store::open(dir.path(), 64, None).unwrap();
        assert_eq!(report.replayed_tables, 0);
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, table.rows());
    }

    #[test]
    fn uncommitted_load_invisible_after_crash() {
        let dir = TempDir::new("store-uncommitted");
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            store.load_table(&sample_table("A", 50)).unwrap();
            // Simulate a crash mid-load of B: append meta + images to
            // the WAL but no commit, and never fsync.
            let b = sample_table("B", 50);
            let meta = TableMeta::describe(99, "B", b.schema(), b.row_count());
            store.wal.append(&WalRecord::TableMeta(meta));
            store.wal.append(&WalRecord::PageImage {
                table_id: 99,
                page_no: 0,
                payload: encode_rows(&b.rows()[..10]),
            });
            store.wal.commit(None).unwrap(); // batch reached disk, commit record did not
        }
        let (store, _) = Store::open(dir.path(), 16, None).unwrap();
        assert!(store.has_table("A"));
        assert!(!store.has_table("B"), "no LoadCommit → not recovered");
    }
}
