//! The buffer pool: fixed frames, clock eviction, pin counts.
//!
//! The pool is the boundary between *simulated* page charges (every
//! logical page an operator touches is charged to the
//! [`fj_storage::CostLedger`], hit or miss) and *physical* reads (only
//! a miss fetches from the page file). Diffing the two is the point of
//! the whole disk layer: the ledger models a bufferless System-R
//! device, the pool shows what a real memory hierarchy absorbs.
//!
//! Eviction is the classic clock (second-chance) policy: frames carry a
//! referenced bit set on every hit; the hand sweeps, clearing bits,
//! and evicts the first unreferenced, unpinned frame it meets. Pinned
//! frames are never evicted — a [`PoolGuard`] holds the pin until
//! dropped.

use crate::error::StoreError;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one cached page: `(table_id, page_no)`.
pub type PageKey = (u32, u32);

/// Callback evictions use to persist a dirty victim before the frame is
/// reused. Installed by the store (it closes over the page file); the
/// pool itself stays I/O-free.
pub type WritebackFn = Arc<dyn Fn(PageKey, &[u8]) -> Result<(), StoreError> + Send + Sync>;

#[derive(Debug)]
struct Frame {
    key: Option<PageKey>,
    payload: Vec<u8>,
    pins: u32,
    referenced: bool,
    dirty: bool,
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<PageKey, usize>,
    hand: usize,
}

/// A fixed-capacity page cache with clock eviction and dirty-page
/// tracking (no-force: mutations dirty frames in memory; a background
/// checkpoint or eviction pressure writes them back).
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    writeback: Mutex<Option<WritebackFn>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    dirty_writebacks: AtomicU64,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Counter snapshot for metrics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from a resident frame.
    pub hits: u64,
    /// Lookups that had to fetch from the page file.
    pub misses: u64,
    /// Resident pages displaced to make room.
    pub evictions: u64,
    /// Dirty victims persisted by eviction write-back.
    pub dirty_writebacks: u64,
}

impl BufferPool {
    /// A pool of `capacity` frames (clamped to at least 1).
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
            }),
            writeback: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dirty_writebacks: AtomicU64::new(0),
        }
    }

    /// Configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Dirty pages currently resident (awaiting checkpoint flush or
    /// eviction write-back).
    pub fn dirty_pages(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .frames
            .iter()
            .filter(|f| f.key.is_some() && f.dirty)
            .count()
    }

    /// Installs the eviction write-back callback. Without one, evicting
    /// a dirty frame is an error (the read-only regime of PR 6 never
    /// dirties frames, so it never trips this).
    pub fn set_writeback(&self, f: WritebackFn) {
        *self.writeback.lock().unwrap() = Some(f);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
        }
    }

    /// Looks up `key`, calling `fetch` on a miss to produce the page
    /// bytes (one physical read). Returns a pinned guard; the frame
    /// cannot be evicted until the guard drops.
    pub fn get<'a>(
        &'a self,
        key: PageKey,
        fetch: impl FnOnce() -> Result<Vec<u8>, StoreError>,
    ) -> Result<PoolGuard<'a>, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&slot) = inner.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let frame = &mut inner.frames[slot];
            frame.referenced = true;
            frame.pins += 1;
            return Ok(PoolGuard { pool: self, slot });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Fetch while holding the pool lock: I/O serializes, which
        // keeps miss accounting deterministic (no double-fetch races)
        // at this engine's scale.
        let payload = fetch()?;
        let slot = self.free_slot(&mut inner)?;
        self.evict_slot(&mut inner, slot)?;
        inner.frames[slot] = Frame {
            key: Some(key),
            payload,
            pins: 1,
            referenced: true,
            dirty: false,
        };
        inner.map.insert(key, slot);
        Ok(PoolGuard { pool: self, slot })
    }

    /// Inserts `key` without counting a hit or miss — the load path's
    /// write-through, so freshly loaded pages are warm exactly like a
    /// real engine's dirty pages.
    pub fn put(&self, key: PageKey, payload: Vec<u8>) -> Result<(), StoreError> {
        self.put_inner(key, payload, false)
    }

    /// Inserts `key` and marks the frame dirty: the new payload exists
    /// in the WAL (already committed) and in this frame, but not yet in
    /// the page file. A checkpoint flush or eviction write-back makes
    /// it physical. Only call *after* the WAL commit fsync — the
    /// steal-committed-only rule that keeps every page the pool ever
    /// writes back durable-committed data.
    pub fn put_dirty(&self, key: PageKey, payload: Vec<u8>) -> Result<(), StoreError> {
        self.put_inner(key, payload, true)
    }

    fn put_inner(&self, key: PageKey, payload: Vec<u8>, dirty: bool) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&slot) = inner.map.get(&key) {
            inner.frames[slot].payload = payload;
            inner.frames[slot].referenced = true;
            inner.frames[slot].dirty = dirty || inner.frames[slot].dirty;
            return Ok(());
        }
        let slot = self.free_slot(&mut inner)?;
        self.evict_slot(&mut inner, slot)?;
        inner.frames[slot] = Frame {
            key: Some(key),
            payload,
            pins: 0,
            referenced: true,
            dirty,
        };
        inner.map.insert(key, slot);
        Ok(())
    }

    /// Returns a copy of `key`'s payload if resident, without pinning
    /// or touching hit/miss counters or the referenced bit. The store's
    /// committed-read path uses this so a dirty (not-yet-flushed) page
    /// is served from memory instead of the stale page file.
    pub fn peek(&self, key: PageKey) -> Option<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .get(&key)
            .map(|&slot| inner.frames[slot].payload.clone())
    }

    /// Snapshots and clears every dirty frame: returns `(key, payload)`
    /// pairs and marks the frames clean. The checkpoint's flush source.
    /// Fuzzy by construction — a mutation that re-dirties a page after
    /// the snapshot is protected by the WAL suffix the checkpoint
    /// keeps.
    pub fn take_dirty(&self) -> Vec<(PageKey, Vec<u8>)> {
        let mut inner = self.inner.lock().unwrap();
        let mut out = Vec::new();
        for frame in &mut inner.frames {
            if frame.dirty {
                if let Some(key) = frame.key {
                    out.push((key, frame.payload.clone()));
                    frame.dirty = false;
                }
            }
        }
        out
    }

    /// Evacuates whatever currently occupies `slot`, writing a dirty
    /// victim back through the installed callback first.
    fn evict_slot(&self, inner: &mut PoolInner, slot: usize) -> Result<(), StoreError> {
        let Some(old) = inner.frames[slot].key.take() else {
            return Ok(());
        };
        if inner.frames[slot].dirty {
            let writeback = self.writeback.lock().unwrap().clone();
            let Some(writeback) = writeback else {
                // Losing a dirty frame silently would make the page
                // file stale forever (its WAL protection is dropped at
                // the next checkpoint). Refuse instead.
                inner.frames[slot].key = Some(old);
                return Err(StoreError::Meta {
                    detail: format!("evicting dirty page {old:?} with no write-back installed"),
                });
            };
            writeback(old, &inner.frames[slot].payload)?;
            inner.frames[slot].dirty = false;
            self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.remove(&old);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drops every unpinned, *clean* resident page (a cold-start lever
    /// for cost-parity experiments). Dirty frames are kept: their
    /// payloads may not be in the page file yet. Returns how many pages
    /// were dropped.
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let mut dropped = 0;
        for slot in 0..inner.frames.len() {
            if inner.frames[slot].pins == 0 && !inner.frames[slot].dirty {
                if let Some(key) = inner.frames[slot].key.take() {
                    inner.map.remove(&key);
                    inner.frames[slot].payload = Vec::new();
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Finds a slot to (re)use: an unallocated frame while below
    /// capacity, else the clock's victim.
    fn free_slot(&self, inner: &mut PoolInner) -> Result<usize, StoreError> {
        if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                key: None,
                payload: Vec::new(),
                pins: 0,
                referenced: false,
                dirty: false,
            });
            return Ok(inner.frames.len() - 1);
        }
        // Reuse an emptied frame first (clear() leaves those behind).
        if let Some(slot) = inner.frames.iter().position(|f| f.key.is_none()) {
            return Ok(slot);
        }
        // Clock sweep: two full passes guarantee every unpinned frame
        // has had its referenced bit cleared once.
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[slot];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(slot);
        }
        Err(StoreError::PoolExhausted {
            capacity: self.capacity,
        })
    }
}

/// Pin on one resident frame; dropping it unpins.
#[derive(Debug)]
pub struct PoolGuard<'a> {
    pool: &'a BufferPool,
    slot: usize,
}

impl PoolGuard<'_> {
    /// The pinned page's bytes.
    pub fn with_payload<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let inner = self.pool.inner.lock().unwrap();
        f(&inner.frames[self.slot].payload)
    }
}

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().unwrap();
        let frame = &mut inner.frames[self.slot];
        debug_assert!(frame.pins > 0, "unbalanced unpin");
        frame.pins = frame.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(byte: u8) -> impl FnOnce() -> Result<Vec<u8>, StoreError> {
        move || Ok(vec![byte; 8])
    }

    fn fail() -> Result<Vec<u8>, StoreError> {
        Err(StoreError::Corrupt {
            detail: "should not fetch".into(),
        })
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(4);
        drop(pool.get((1, 0), fetch(7)).unwrap());
        let g = pool.get((1, 0), fail).unwrap();
        g.with_payload(|p| assert_eq!(p, vec![7u8; 8]));
        drop(g);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                dirty_writebacks: 0,
            }
        );
    }

    #[test]
    fn eviction_at_capacity() {
        let pool = BufferPool::new(2);
        drop(pool.get((1, 0), fetch(0)).unwrap());
        drop(pool.get((1, 1), fetch(1)).unwrap());
        drop(pool.get((1, 2), fetch(2)).unwrap());
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 1);
        // The evicted page misses again.
        let before = pool.stats().misses;
        drop(pool.get((1, 0), fetch(0)).unwrap());
        assert_eq!(pool.stats().misses, before + 1);
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let pool = BufferPool::new(2);
        let pinned = pool.get((1, 0), fetch(0)).unwrap();
        drop(pool.get((1, 1), fetch(1)).unwrap());
        drop(pool.get((1, 2), fetch(2)).unwrap());
        drop(pool.get((1, 3), fetch(3)).unwrap());
        // (1,0) was pinned throughout: still a hit.
        let g = pool.get((1, 0), fail).unwrap();
        drop(g);
        drop(pinned);
    }

    #[test]
    fn all_pinned_pool_is_exhausted() {
        let pool = BufferPool::new(2);
        let _a = pool.get((1, 0), fetch(0)).unwrap();
        let _b = pool.get((1, 1), fetch(1)).unwrap();
        let err = pool.get((1, 2), fetch(2)).unwrap_err();
        assert!(matches!(err, StoreError::PoolExhausted { capacity: 2 }));
    }

    #[test]
    fn fetch_error_propagates_and_pool_stays_clean() {
        let pool = BufferPool::new(2);
        assert!(pool.get((1, 0), fail).is_err());
        assert_eq!(pool.resident(), 0);
        drop(pool.get((1, 0), fetch(5)).unwrap());
        assert_eq!(pool.resident(), 1);
    }

    #[test]
    fn put_makes_pages_warm() {
        let pool = BufferPool::new(4);
        pool.put((1, 0), vec![9; 4]).unwrap();
        let g = pool.get((1, 0), fail).unwrap();
        drop(g);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn clear_makes_pages_cold_again() {
        let pool = BufferPool::new(4);
        pool.put((1, 0), vec![1; 4]).unwrap();
        pool.put((1, 1), vec![2; 4]).unwrap();
        assert_eq!(pool.clear(), 2);
        assert_eq!(pool.resident(), 0);
        drop(pool.get((1, 0), fetch(1)).unwrap());
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn put_dirty_tracks_and_take_dirty_cleans() {
        let pool = BufferPool::new(4);
        pool.put((1, 0), vec![1; 4]).unwrap();
        pool.put_dirty((1, 1), vec![2; 4]).unwrap();
        pool.put_dirty((1, 2), vec![3; 4]).unwrap();
        assert_eq!(pool.dirty_pages(), 2);
        let mut taken = pool.take_dirty();
        taken.sort();
        assert_eq!(taken, vec![((1, 1), vec![2; 4]), ((1, 2), vec![3; 4])]);
        assert_eq!(pool.dirty_pages(), 0);
        assert!(pool.take_dirty().is_empty());
        // Pages stay resident (warm) after the flush snapshot.
        assert_eq!(pool.resident(), 3);
    }

    #[test]
    fn overwriting_a_dirty_page_with_put_keeps_it_dirty() {
        let pool = BufferPool::new(4);
        pool.put_dirty((1, 0), vec![1; 4]).unwrap();
        pool.put((1, 0), vec![2; 4]).unwrap();
        assert_eq!(pool.dirty_pages(), 1, "clean put must not launder dirt");
    }

    #[test]
    fn evicting_dirty_frame_writes_back() {
        let pool = BufferPool::new(2);
        type WriteLog = Arc<Mutex<Vec<(PageKey, Vec<u8>)>>>;
        let written: WriteLog = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&written);
        pool.set_writeback(Arc::new(move |key, payload| {
            sink.lock().unwrap().push((key, payload.to_vec()));
            Ok(())
        }));
        pool.put_dirty((1, 0), vec![7; 4]).unwrap();
        drop(pool.get((1, 1), fetch(1)).unwrap());
        // Third page forces the clock to evict; the dirty (1,0) must be
        // written back before its frame is reused.
        drop(pool.get((1, 2), fetch(2)).unwrap());
        assert_eq!(written.lock().unwrap().as_slice(), &[((1, 0), vec![7; 4])]);
        assert_eq!(pool.stats().dirty_writebacks, 1);
        assert_eq!(pool.dirty_pages(), 0);
    }

    #[test]
    fn evicting_dirty_frame_without_writeback_is_refused() {
        let pool = BufferPool::new(1);
        pool.put_dirty((1, 0), vec![7; 4]).unwrap();
        let err = pool.get((1, 1), fetch(1)).unwrap_err();
        assert!(matches!(err, StoreError::Meta { .. }), "got {err:?}");
        // The dirty page is still intact and resident.
        assert_eq!(pool.dirty_pages(), 1);
        let g = pool.get((1, 0), fail).unwrap();
        g.with_payload(|p| assert_eq!(p, vec![7u8; 4]));
        drop(g);
    }

    #[test]
    fn clear_keeps_dirty_pages() {
        let pool = BufferPool::new(4);
        pool.put((1, 0), vec![1; 4]).unwrap();
        pool.put_dirty((1, 1), vec![2; 4]).unwrap();
        assert_eq!(pool.clear(), 1);
        assert_eq!(pool.resident(), 1);
        assert_eq!(pool.dirty_pages(), 1);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let pool = BufferPool::new(3);
        drop(pool.get((1, 0), fetch(0)).unwrap());
        drop(pool.get((1, 1), fetch(1)).unwrap());
        drop(pool.get((1, 2), fetch(2)).unwrap());
        // First overflow: the sweep clears every referenced bit, wraps,
        // and evicts the first frame — (1,0). Resident: {3, 1, 2}, with
        // (1,1) and (1,2) unreferenced.
        drop(pool.get((1, 3), fetch(3)).unwrap());
        // Second-chance: touching (1,2) re-references it, so the next
        // overflow must pick (1,1), not (1,2).
        drop(pool.get((1, 2), fail).unwrap());
        drop(pool.get((1, 4), fetch(4)).unwrap());
        // (1,2) and (1,3) survived; (1,1) is the victim.
        drop(pool.get((1, 2), fail).unwrap());
        drop(pool.get((1, 3), fail).unwrap());
        let before = pool.stats().misses;
        drop(pool.get((1, 1), fetch(1)).unwrap());
        assert_eq!(pool.stats().misses, before + 1, "(1,1) was the victim");
    }
}
