//! # fj-store
//!
//! The disk-backed storage layer of the `filterjoin` reproduction: a
//! checksummed page file, a clock-eviction buffer pool, a redo-only
//! write-ahead log with group fsync, checkpoints, and crash recovery.
//!
//! The rest of the engine keeps executing against in-memory heap
//! tables whose access paths charge *simulated* page I/O to the
//! [`fj_storage::CostLedger`] — that is what keeps results and fault
//! schedules byte-identical to the pure in-memory mode. What this crate
//! adds is the *physical* shadow of those charges: every logical page a
//! query touches is also fetched through a buffer pool backed by a real
//! page file (via [`fj_storage::PageBacking`]), so simulated and
//! physical page counts can be diffed, cold starts genuinely read the
//! disk, and a crashed replica can rebuild its catalog from its data
//! directory ([`Store::recover`]) and rejoin a cluster with
//! byte-identical answers.
//!
//! The write path mirrors the read path's discipline: mutations
//! ([`Store::mutate`]) commit through redo-only WAL page deltas (one
//! group fsync per mutation, the atomic commit point), dirty pages live
//! in the pool until an eviction write-back or a fuzzy checkpoint
//! ([`Store::checkpoint`]) flushes them, and recovery replays exactly
//! the committed mutation prefix — uncommitted deltas are dropped,
//! torn page writes heal from the log.
//!
//! See DESIGN.md §"Persistence & recovery" and §"Mutation & crash
//! recovery" for the page format, WAL record layout,
//! checkpoint/recovery protocol, and eviction policy.

pub mod checksum;
pub mod codec;
pub mod error;
pub mod page_file;
pub mod pool;
pub mod store;
pub mod testutil;
pub mod wal;

pub use checksum::{crc64, Crc64};
pub use codec::TableMeta;
pub use error::StoreError;
pub use page_file::{PageFile, FRAME_SIZE, RECORD_HEADER};
pub use pool::{BufferPool, PageKey, PoolStats, WritebackFn};
pub use store::{CheckpointPhase, MutationResult, RecoveryReport, Store, StoreStats};
pub use testutil::TempDir;
pub use wal::{Wal, WalRecord, WalScan};
