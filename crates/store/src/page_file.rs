//! The frame-aligned, checksummed page file (`pages.fj`).
//!
//! One *logical* table page (the unit the [`fj_storage::CostLedger`]
//! charges) is stored as one *record*. A record starts on a 4 KiB frame
//! boundary and spans as many whole frames as its encoded payload
//! needs — encoded bytes carry tags and string lengths, so a logical
//! page's payload is not bounded by the model's 4096-byte row arithmetic.
//! The invariant the cost-parity check relies on is *one logical page =
//! one record = one physical read*, not byte-for-byte equality of model
//! and physical widths (see DESIGN.md for the documented divergence).
//!
//! Record layout (header is 32 bytes, CRC-64 covers header prefix +
//! payload, remainder of the last frame is zero padding):
//!
//! ```text
//! 0..4    magic  "FJPG"
//! 4..6    version            u16
//! 6..8    frame_count        u16
//! 8..12   table_id           u32
//! 12..16  page_no            u32
//! 16..20  payload_len        u32
//! 20..24  reserved (zero)    u32
//! 24..32  crc64(header[0..24] ++ payload)
//! 32..    payload
//! ```
//!
//! Opening a file rebuilds the record directory by scanning frame
//! boundaries: a frame whose header fails magic/version/CRC validation
//! is skipped (one frame at a time), so torn or half-written records
//! are invisible — the WAL, not the page file, is the recovery source
//! for anything that did not verify.

use crate::checksum::Crc64;
use crate::error::StoreError;
use fj_storage::{FaultPlan, PageWriteFault};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Physical frame size: records are aligned to this.
pub const FRAME_SIZE: usize = 4096;
/// Bytes of record header before the payload.
pub const RECORD_HEADER: usize = 32;

const MAGIC: [u8; 4] = *b"FJPG";
const VERSION: u16 = 1;

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    offset_frame: u64,
    frame_count: u16,
}

#[derive(Debug)]
struct Directory {
    entries: HashMap<(u32, u32), DirEntry>,
    end_frame: u64,
}

/// A checksummed, frame-aligned record file keyed by
/// `(table_id, page_no)`.
#[derive(Debug)]
pub struct PageFile {
    path: PathBuf,
    file: File,
    dir: Mutex<Directory>,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
}

fn frames_for(payload_len: usize) -> u16 {
    ((RECORD_HEADER + payload_len).div_ceil(FRAME_SIZE)) as u16
}

fn encode_record(table_id: u32, page_no: u32, payload: &[u8]) -> Vec<u8> {
    let frame_count = frames_for(payload.len());
    let mut header = [0u8; RECORD_HEADER];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&frame_count.to_le_bytes());
    header[8..12].copy_from_slice(&table_id.to_le_bytes());
    header[12..16].copy_from_slice(&page_no.to_le_bytes());
    header[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = Crc64::new().update(&header[0..24]).update(payload).finish();
    header[24..32].copy_from_slice(&crc.to_le_bytes());
    let mut record = vec![0u8; frame_count as usize * FRAME_SIZE];
    record[0..RECORD_HEADER].copy_from_slice(&header);
    record[RECORD_HEADER..RECORD_HEADER + payload.len()].copy_from_slice(payload);
    record
}

/// Parses and verifies one record at `bytes` (which must start at the
/// header). Returns `(table_id, page_no, payload)` or `None` if the
/// bytes are not a valid record.
fn parse_record(bytes: &[u8]) -> Option<(u32, u32, Vec<u8>)> {
    if bytes.len() < RECORD_HEADER || bytes[0..4] != MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    let frame_count = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if version != VERSION || frame_count == 0 {
        return None;
    }
    let table_id = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let page_no = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    if RECORD_HEADER + payload_len > frame_count as usize * FRAME_SIZE
        || frame_count as usize * FRAME_SIZE > bytes.len()
    {
        return None;
    }
    let payload = &bytes[RECORD_HEADER..RECORD_HEADER + payload_len];
    let want = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let got = Crc64::new().update(&bytes[0..24]).update(payload).finish();
    if want != got {
        return None;
    }
    Some((table_id, page_no, payload.to_vec()))
}

impl PageFile {
    /// Opens (creating if absent) the page file and rebuilds the record
    /// directory by scanning frames. Invalid frames are skipped, not
    /// errors: they are torn writes awaiting WAL healing.
    pub fn open(path: impl AsRef<Path>) -> Result<PageFile, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let bytes = std::fs::read(&path)
            .map_err(|e| StoreError::io(format!("scan {}", path.display()), e))?;
        let total_frames = (bytes.len() / FRAME_SIZE) as u64;
        let mut entries = HashMap::new();
        let mut frame = 0u64;
        while frame < total_frames {
            let at = (frame as usize) * FRAME_SIZE;
            match parse_record(&bytes[at..]) {
                Some((table_id, page_no, payload)) => {
                    let frame_count = frames_for(payload.len());
                    entries.insert(
                        (table_id, page_no),
                        DirEntry {
                            offset_frame: frame,
                            frame_count,
                        },
                    );
                    frame += frame_count as u64;
                }
                None => frame += 1,
            }
        }
        Ok(PageFile {
            path,
            file,
            dir: Mutex::new(Directory {
                entries,
                end_frame: total_frames,
            }),
            physical_reads: AtomicU64::new(0),
            physical_writes: AtomicU64::new(0),
        })
    }

    /// Filesystem path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the directory.
    pub fn record_count(&self) -> usize {
        self.dir.lock().unwrap().entries.len()
    }

    /// Physical record reads served so far.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Physical record writes performed so far.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes.load(Ordering::Relaxed)
    }

    /// True iff a record for `(table_id, page_no)` is in the directory.
    pub fn contains(&self, table_id: u32, page_no: u32) -> bool {
        self.dir
            .lock()
            .unwrap()
            .entries
            .contains_key(&(table_id, page_no))
    }

    /// Writes one logical page's record, in place when a record of the
    /// same size already exists (the idempotence path WAL replay uses),
    /// appended otherwise.
    ///
    /// `faults` injects torn writes: a torn record persists only its
    /// first half, while the caller still sees success — the on-disk
    /// CRC is what catches it later.
    pub fn write_page(
        &self,
        table_id: u32,
        page_no: u32,
        payload: &[u8],
        faults: Option<&FaultPlan>,
    ) -> Result<(), StoreError> {
        let fault = faults
            .map(|f| f.on_page_write())
            .unwrap_or(PageWriteFault::None);
        self.write_page_with(table_id, page_no, payload, fault)
    }

    /// [`PageFile::write_page`] with the fault decision drawn by the
    /// caller — the dirty-page write-back and checkpoint-scrub paths
    /// draw from their own fault classes
    /// ([`FaultPlan::on_delta_write`] / [`FaultPlan::on_scrub_write`])
    /// so arming them never shifts the load-write schedule.
    pub fn write_page_with(
        &self,
        table_id: u32,
        page_no: u32,
        payload: &[u8],
        fault: PageWriteFault,
    ) -> Result<(), StoreError> {
        let record = encode_record(table_id, page_no, payload);
        let frame_count = frames_for(payload.len());
        let mut dir = self.dir.lock().unwrap();
        let offset_frame = match dir.entries.get(&(table_id, page_no)) {
            Some(e) if e.frame_count == frame_count => e.offset_frame,
            _ => {
                let f = dir.end_frame;
                dir.end_frame += frame_count as u64;
                f
            }
        };
        let torn = fault == PageWriteFault::Torn;
        // A torn write persists only the first disk sector; the file is
        // still extended over the record's whole frame span (the
        // allocation lands, the data doesn't — the classic power-cut
        // shape). Stale or zero bytes in the tail are exactly what the
        // record CRC exists to catch.
        let persisted = if torn {
            &record[..record.len().min(512)]
        } else {
            &record[..]
        };
        let base = offset_frame * FRAME_SIZE as u64;
        self.file
            .write_all_at(persisted, base)
            .map_err(|e| StoreError::io(format!("write page {table_id}/{page_no}"), e))?;
        let span_end = base + record.len() as u64;
        let cur_len = self.file.metadata().map(|m| m.len()).unwrap_or(0);
        if cur_len < span_end {
            self.file
                .set_len(span_end)
                .map_err(|e| StoreError::io(format!("extend for page {table_id}/{page_no}"), e))?;
        }
        dir.entries.insert(
            (table_id, page_no),
            DirEntry {
                offset_frame,
                frame_count,
            },
        );
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads and verifies one record, returning its payload. One call
    /// is one physical page read — the quantity the cost-parity check
    /// diffs against the ledger.
    pub fn read_page(&self, table_id: u32, page_no: u32) -> Result<Vec<u8>, StoreError> {
        let entry = {
            let dir = self.dir.lock().unwrap();
            dir.entries
                .get(&(table_id, page_no))
                .copied()
                .ok_or_else(|| StoreError::Meta {
                    detail: format!("no record for table {table_id} page {page_no}"),
                })?
        };
        let bytes = self
            .read_frames(entry)
            .map_err(|e| StoreError::io(format!("read page {table_id}/{page_no}"), e))?;
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        match parse_record(&bytes) {
            Some((tid, pno, payload)) if tid == table_id && pno == page_no => Ok(payload),
            _ => Err(StoreError::Corrupt {
                detail: format!(
                    "record for table {table_id} page {page_no} failed verification (torn write?)"
                ),
            }),
        }
    }

    /// Whether the stored record for `(table_id, page_no)` currently
    /// verifies. Missing counts as invalid. Does not charge a physical
    /// read (this is the checkpoint scrub's probe, not a query read).
    pub fn record_is_valid(&self, table_id: u32, page_no: u32) -> bool {
        let entry = {
            let dir = self.dir.lock().unwrap();
            match dir.entries.get(&(table_id, page_no)) {
                Some(e) => *e,
                None => return false,
            }
        };
        let bytes = match self.read_frames(entry) {
            Ok(b) => b,
            Err(_) => return false,
        };
        matches!(parse_record(&bytes), Some((tid, pno, _)) if tid == table_id && pno == page_no)
    }

    /// Reads a record's frame span, zero-padding past EOF (a torn
    /// append can leave the file shorter than the record it reserved).
    fn read_frames(&self, entry: DirEntry) -> std::io::Result<Vec<u8>> {
        let mut bytes = vec![0u8; entry.frame_count as usize * FRAME_SIZE];
        let mut filled = 0usize;
        let base = entry.offset_frame * FRAME_SIZE as u64;
        while filled < bytes.len() {
            match self
                .file
                .read_at(&mut bytes[filled..], base + filled as u64)
            {
                Ok(0) => break, // EOF: rest stays zero
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(bytes)
    }

    /// Flushes the file to stable storage.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", self.path.display()), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn write_read_round_trip() {
        let dir = TempDir::new("pagefile-rt");
        let pf = PageFile::open(dir.path().join("pages.fj")).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        pf.write_page(1, 0, &payload, None).unwrap();
        pf.write_page(1, 1, b"small", None).unwrap();
        assert_eq!(pf.read_page(1, 0).unwrap(), payload);
        assert_eq!(pf.read_page(1, 1).unwrap(), b"small");
        assert_eq!(pf.physical_reads(), 2);
        assert_eq!(pf.physical_writes(), 2);
    }

    #[test]
    fn directory_survives_reopen() {
        let dir = TempDir::new("pagefile-reopen");
        let path = dir.path().join("pages.fj");
        {
            let pf = PageFile::open(&path).unwrap();
            pf.write_page(7, 3, b"persisted", None).unwrap();
            pf.sync().unwrap();
        }
        let pf = PageFile::open(&path).unwrap();
        assert!(pf.contains(7, 3));
        assert_eq!(pf.read_page(7, 3).unwrap(), b"persisted");
    }

    #[test]
    fn in_place_rewrite_keeps_file_size() {
        let dir = TempDir::new("pagefile-inplace");
        let path = dir.path().join("pages.fj");
        let pf = PageFile::open(&path).unwrap();
        pf.write_page(1, 0, &[1u8; 100], None).unwrap();
        pf.write_page(1, 1, &[2u8; 100], None).unwrap();
        let size = std::fs::metadata(&path).unwrap().len();
        pf.write_page(1, 0, &[9u8; 100], None).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), size);
        assert_eq!(pf.read_page(1, 0).unwrap(), vec![9u8; 100]);
    }

    #[test]
    fn torn_write_detected_on_read() {
        let dir = TempDir::new("pagefile-torn");
        let pf = PageFile::open(dir.path().join("pages.fj")).unwrap();
        // one_in = 1 → every write torn.
        let faults = FaultPlan::new(1).with_torn_page_writes(1);
        pf.write_page(1, 0, &[5u8; 2000], Some(&faults)).unwrap();
        let err = pf.read_page(1, 0).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(!pf.record_is_valid(1, 0));
        // Healing: rewrite intact, then the read verifies again.
        pf.write_page(1, 0, &[5u8; 2000], None).unwrap();
        assert_eq!(pf.read_page(1, 0).unwrap(), vec![5u8; 2000]);
    }

    #[test]
    fn torn_record_skipped_by_reopen_scan() {
        let dir = TempDir::new("pagefile-scan");
        let path = dir.path().join("pages.fj");
        {
            let pf = PageFile::open(&path).unwrap();
            pf.write_page(1, 0, &[1u8; 100], None).unwrap();
            let faults = FaultPlan::new(1).with_torn_page_writes(1);
            pf.write_page(1, 1, &[2u8; 6000], Some(&faults)).unwrap();
            pf.write_page(1, 2, &[3u8; 100], None).unwrap();
        }
        let pf = PageFile::open(&path).unwrap();
        assert!(pf.contains(1, 0));
        assert!(!pf.contains(1, 1), "torn record must not verify");
        assert!(pf.contains(1, 2));
    }

    #[test]
    fn missing_page_is_meta_error() {
        let dir = TempDir::new("pagefile-missing");
        let pf = PageFile::open(dir.path().join("pages.fj")).unwrap();
        assert!(matches!(
            pf.read_page(9, 9).unwrap_err(),
            StoreError::Meta { .. }
        ));
    }
}
