//! On-disk encodings: values, row pages, and table metadata.
//!
//! All integers are little-endian. Values are tag-prefixed so a page
//! payload is self-describing (decode never needs to guess widths) and
//! a corrupted tag fails loudly instead of misparsing.

use crate::error::StoreError;
use fj_storage::{Column, DataType, Schema, Tuple, Value};

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], StoreError> {
    let end = pos.checked_add(n).filter(|&e| e <= buf.len());
    match end {
        Some(end) => {
            let slice = &buf[*pos..end];
            *pos = end;
            Ok(slice)
        }
        None => Err(StoreError::Corrupt {
            detail: format!("truncated record: wanted {n} bytes at offset {pos}"),
        }),
    }
}

pub(crate) fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16, StoreError> {
    Ok(u16::from_le_bytes(take(buf, pos, 2)?.try_into().unwrap()))
}

pub(crate) fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, StoreError> {
    Ok(u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()))
}

pub(crate) fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    Ok(u64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap()))
}

pub(crate) fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = get_u32(buf, pos)? as usize;
    let bytes = take(buf, pos, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
        detail: format!("non-UTF-8 string at offset {pos}"),
    })
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Double(d) => {
            out.push(2);
            put_u64(out, d.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, StoreError> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(get_u64(buf, pos)? as i64),
        2 => Value::Double(f64::from_bits(get_u64(buf, pos)?)),
        3 => Value::Str(get_str(buf, pos)?),
        4 => Value::Bool(take(buf, pos, 1)?[0] != 0),
        other => {
            return Err(StoreError::Corrupt {
                detail: format!("unknown value tag {other} at offset {pos}"),
            })
        }
    })
}

/// Encodes one logical page's rows as a page payload.
pub fn encode_rows(rows: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, rows.len() as u32);
    for row in rows {
        for v in row.values() {
            encode_value(&mut out, v);
        }
    }
    out
}

/// Decodes a page payload of `arity`-wide rows. The whole payload must
/// be consumed: trailing bytes mean the payload and the schema disagree.
pub fn decode_rows(buf: &[u8], arity: usize) -> Result<Vec<Tuple>, StoreError> {
    let mut pos = 0;
    let n = get_u32(buf, &mut pos)? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(decode_value(buf, &mut pos)?);
        }
        rows.push(Tuple::new(values));
    }
    if pos != buf.len() {
        return Err(StoreError::Corrupt {
            detail: format!("page payload has {} trailing bytes", buf.len() - pos),
        });
    }
    Ok(rows)
}

fn datatype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 1,
        DataType::Double => 2,
        DataType::Str => 3,
        DataType::Bool => 4,
    }
}

fn datatype_from_tag(tag: u8, pos: usize) -> Result<DataType, StoreError> {
    Ok(match tag {
        1 => DataType::Int,
        2 => DataType::Double,
        3 => DataType::Str,
        4 => DataType::Bool,
        other => {
            return Err(StoreError::Corrupt {
                detail: format!("unknown datatype tag {other} at offset {pos}"),
            })
        }
    })
}

/// Durable description of one stored table: everything recovery needs
/// to rebuild the in-memory heap from page payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Store-assigned id, the page-file namespace for this table.
    pub table_id: u32,
    /// Catalog name.
    pub name: String,
    /// Column names, types, and nullability, in schema order.
    pub columns: Vec<(String, DataType, bool)>,
    /// Total rows across all pages.
    pub row_count: u64,
    /// Log-structured version of this table *name*: each reload of the
    /// same name and each committed mutation bumps it. Replay in log
    /// order makes the highest committed version authoritative.
    pub version: u64,
}

impl TableMeta {
    /// Captures a table's identity for the WAL/manifest.
    pub fn describe(
        table_id: u32,
        name: &str,
        schema: &Schema,
        row_count: u64,
        version: u64,
    ) -> TableMeta {
        TableMeta {
            table_id,
            name: name.to_string(),
            columns: schema
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.data_type, c.nullable))
                .collect(),
            row_count,
            version,
        }
    }

    /// Rebuilds the schema this meta describes.
    pub fn schema(&self) -> Result<Schema, StoreError> {
        let columns = self
            .columns
            .iter()
            .map(|(name, ty, nullable)| {
                if *nullable {
                    Column::nullable(name.clone(), *ty)
                } else {
                    Column::new(name.clone(), *ty)
                }
            })
            .collect();
        Schema::new(columns).map_err(|e| StoreError::Meta {
            detail: format!("meta for '{}' has an invalid schema: {e}", self.name),
        })
    }

    /// Serializes the meta.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.table_id);
        put_str(&mut out, &self.name);
        put_u64(&mut out, self.row_count);
        put_u64(&mut out, self.version);
        put_u16(&mut out, self.columns.len() as u16);
        for (name, ty, nullable) in &self.columns {
            put_str(&mut out, name);
            out.push(datatype_tag(*ty));
            out.push(*nullable as u8);
        }
        out
    }

    /// Deserializes a meta from `buf` starting at `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<TableMeta, StoreError> {
        let table_id = get_u32(buf, pos)?;
        let name = get_str(buf, pos)?;
        let row_count = get_u64(buf, pos)?;
        let version = get_u64(buf, pos)?;
        let n_cols = get_u16(buf, pos)? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col_name = get_str(buf, pos)?;
            let tag = take(buf, pos, 1)?[0];
            let ty = datatype_from_tag(tag, *pos)?;
            let nullable = take(buf, pos, 1)?[0] != 0;
            columns.push((col_name, ty, nullable));
        }
        Ok(TableMeta {
            table_id,
            name,
            columns,
            row_count,
            version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Int(-7),
                Value::Double(3.25),
                Value::Str("héllo".into()),
                Value::Bool(true),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(i64::MAX),
                Value::Double(f64::NAN),
                Value::Str(String::new()),
                Value::Bool(false),
                Value::Int(0),
            ]),
        ]
    }

    #[test]
    fn rows_round_trip() {
        let rows = sample_rows();
        let buf = encode_rows(&rows);
        let back = decode_rows(&buf, 5).unwrap();
        assert_eq!(back.len(), 2);
        // NaN != NaN under PartialEq; compare via total order instead.
        assert_eq!(back[0], rows[0]);
        assert_eq!(back[1].cmp(&rows[1]), std::cmp::Ordering::Equal);
    }

    #[test]
    fn empty_page_round_trips() {
        let buf = encode_rows(&[]);
        assert!(decode_rows(&buf, 3).unwrap().is_empty());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_rows(&sample_rows());
        buf.push(0xFF);
        let err = decode_rows(&buf, 5).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }

    #[test]
    fn truncation_rejected() {
        let buf = encode_rows(&sample_rows());
        let err = decode_rows(&buf[..buf.len() - 3], 5).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = encode_rows(&sample_rows());
        buf[4] = 9; // first value's tag
        assert!(matches!(
            decode_rows(&buf, 5),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn meta_round_trips() {
        let schema = Schema::from_pairs(&[
            ("eid", DataType::Int),
            ("sal", DataType::Double),
            ("name", DataType::Str),
            ("active", DataType::Bool),
        ]);
        let meta = TableMeta::describe(3, "Emp", &schema, 1234, 7);
        let bytes = meta.encode();
        let mut pos = 0;
        let back = TableMeta::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, meta);
        assert_eq!(back.schema().unwrap(), schema);
    }
}
