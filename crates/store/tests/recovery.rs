//! Recovery idempotence and torn-tail handling, end to end.
//!
//! The store's recovery contract is stronger than "the rows come back":
//! WAL replay writes page images *in place*, so recovering any number
//! of times from the same crash state yields a byte-identical page
//! file. These tests diff the actual on-disk bytes, not just decoded
//! rows.

use fj_storage::{DataType, Table, TableBuilder, Value};
use fj_store::{crc64, Store, TableMeta, TempDir, Wal, WalRecord};
use proptest::prelude::*;
use std::path::Path;

fn table(name: &str, rows: usize, salt: i64) -> Table {
    TableBuilder::new(name)
        .column("k", DataType::Int)
        .column("w", DataType::Double)
        .column("tag", DataType::Str)
        .rows((0..rows).map(|i| {
            vec![
                Value::Int(i as i64 ^ salt),
                Value::Double(i as f64 * 1.5),
                Value::Str(format!("{name}-{i}")),
            ]
        }))
        .build()
        .unwrap()
}

fn pages_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("pages.fj")).unwrap_or_default()
}

fn wal_bytes_on_disk(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("wal.fj")).unwrap_or_default()
}

/// Replaying the same WAL twice (two recoveries with no intervening
/// writes) leaves the page file byte-identical.
#[test]
fn double_replay_is_byte_identical() {
    let dir = TempDir::new("recovery-double");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("T", 700, 0)).unwrap();
        store.load_table(&table("U", 80, 7)).unwrap();
        // Crash: no checkpoint, WAL holds everything.
    }
    let (_, report1) = {
        let (store, r) = Store::open(dir.path(), 32, None).unwrap();
        drop(store);
        ((), r)
    };
    assert_eq!(report1.replayed_tables, 2);
    let after_first = pages_bytes(dir.path());
    let wal_after_first = wal_bytes_on_disk(dir.path());

    let (store, report2) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(report2.replayed_tables, 2, "WAL is not consumed by replay");
    assert_eq!(
        pages_bytes(dir.path()),
        after_first,
        "second replay must write the same bytes at the same offsets"
    );
    assert_eq!(wal_bytes_on_disk(dir.path()), wal_after_first);
    let (_, rows) = store.recovered_rows("T").unwrap();
    assert_eq!(rows, table("T", 700, 0).rows());
}

/// Recovery from a checkpoint plus a WAL tail (tables loaded after the
/// checkpoint) is idempotent too, and sees both generations of tables.
#[test]
fn checkpoint_plus_partial_tail_recovers_idempotently() {
    let dir = TempDir::new("recovery-ckpt-tail");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("Old", 300, 1)).unwrap();
        store.checkpoint().unwrap();
        store.load_table(&table("New", 300, 2)).unwrap();
        // Crash: Old is manifest-durable, New lives only in the WAL.
    }
    let first = {
        let (store, report) = Store::open(dir.path(), 32, None).unwrap();
        assert_eq!(report.manifest_tables, 1);
        assert_eq!(report.replayed_tables, 1);
        let (_, old_rows) = store.recovered_rows("Old").unwrap();
        let (_, new_rows) = store.recovered_rows("New").unwrap();
        assert_eq!(old_rows, table("Old", 300, 1).rows());
        assert_eq!(new_rows, table("New", 300, 2).rows());
        pages_bytes(dir.path())
    };
    let (_store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(pages_bytes(dir.path()), first);
}

/// A torn final WAL record (half a record's bytes, as a crash mid-write
/// leaves) is detected by checksum and truncated — the tables committed
/// before it recover, the torn suffix is never replayed, and the
/// truncation converges (a third open sees a clean log).
#[test]
fn torn_final_wal_record_truncated_not_replayed() {
    let dir = TempDir::new("recovery-torn-tail");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("T", 200, 0)).unwrap();
    }
    // Append garbage that *starts* like a record (plausible length
    // field) but whose body bytes never made it.
    let wal_path = dir.path().join("wal.fj");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let intact_len = bytes.len() as u64;
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    bytes.extend_from_slice(&[0x55; 60]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(report.torn_wal_tail);
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        intact_len,
        "torn tail must be truncated to the last valid boundary"
    );
    let (_, rows) = store.recovered_rows("T").unwrap();
    assert_eq!(rows, table("T", 200, 0).rows());
    drop(store);

    let (_, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(!report.torn_wal_tail, "truncation converges");
}

/// Torn page-file writes during load plus a crash: recovery heals every
/// page from the WAL, and doing so twice is byte-identical.
#[test]
fn torn_page_writes_heal_idempotently() {
    use std::sync::Arc;
    let dir = TempDir::new("recovery-torn-pages");
    let t = table("T", 900, 3);
    {
        let faults = Arc::new(fj_storage::FaultPlan::new(42).with_torn_page_writes(3));
        let (store, _) = Store::open(dir.path(), 32, Some(faults)).unwrap();
        store.load_table(&t).unwrap();
    }
    let first = {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, t.rows());
        pages_bytes(dir.path())
    };
    let (_store, _) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(pages_bytes(dir.path()), first);
}

/// The WAL's commit marker is the visibility boundary: records after
/// the last commit are parseable but belong to no committed load, so
/// recovery ignores them without truncating them away.
#[test]
fn valid_but_uncommitted_suffix_is_ignored() {
    let dir = TempDir::new("recovery-uncommitted");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("A", 100, 0)).unwrap();
    }
    // Hand-append a valid PageImage with no meta and no commit.
    {
        let (wal, _) = fj_store::Wal::open(dir.path().join("wal.fj")).unwrap();
        wal.append(&WalRecord::PageImage {
            table_id: 77,
            page_no: 0,
            payload: vec![1, 2, 3],
        });
        wal.commit(None).unwrap();
    }
    let (store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(!report.torn_wal_tail, "valid records are not a torn tail");
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(store.table_names(), vec!["A".to_string()]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized loads and crash points: whatever committed before the
    /// crash recovers byte-identically, twice.
    #[test]
    fn recovery_idempotent_on_random_tables(
        sizes in prop::collection::vec(0usize..120, 1..4),
        salt in 0i64..1000,
        with_checkpoint in 0u64..2,
    ) {
        let dir = TempDir::new("recovery-prop");
        let tables: Vec<Table> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| table(&format!("T{i}"), n, salt))
            .collect();
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            for (i, t) in tables.iter().enumerate() {
                store.load_table(t).unwrap();
                if with_checkpoint == 1 && i == 0 {
                    store.checkpoint().unwrap();
                }
            }
        }
        let first = {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            for t in &tables {
                let (_, rows) = store.recovered_rows(t.name()).unwrap();
                prop_assert_eq!(&rows, &t.rows().to_vec());
            }
            pages_bytes(dir.path())
        };
        let (_store, _) = Store::open(dir.path(), 16, None).unwrap();
        prop_assert_eq!(pages_bytes(dir.path()), first);
    }
}

// ---------------------------------------------------------------------
// WAL record fuzzing: round-trips, torn tails at every byte, and
// adversarial bytes. These drive the record codec through the public
// `Wal` API — the same path recovery takes — so every property here is
// a property of real replay, not of a test-only decoder. Records are
// built deterministically from drawn words, mixing load-path kinds
// (TableMeta, PageImage, LoadCommit) with mutation-path kinds
// (PageDelta, MutationCommit) in one sequence.
// ---------------------------------------------------------------------

fn meta_from(seed: u64) -> TableMeta {
    let n_cols = (seed % 4) as usize;
    TableMeta {
        table_id: (seed >> 8) as u32,
        name: format!("t{}", seed % 97),
        columns: (0..n_cols)
            .map(|i| {
                let w = seed.rotate_left(7 * (i as u32 + 1));
                let ty = [DataType::Int, DataType::Double, DataType::Str][(w % 3) as usize];
                (format!("c{i}"), ty, w.is_multiple_of(2))
            })
            .collect(),
        row_count: seed.wrapping_mul(0x9E37),
        version: seed % 1000,
    }
}

/// One record of any of the five kinds, chosen by `kind_word % 5` and
/// filled deterministically from `seed`.
fn record_from(kind_word: u64, seed: u64) -> WalRecord {
    let payload: Vec<u8> = (0..(seed % 48))
        .map(|i| (seed.rotate_left(i as u32) ^ i) as u8)
        .collect();
    match kind_word % 5 {
        0 => WalRecord::TableMeta(meta_from(seed)),
        1 => WalRecord::PageImage {
            table_id: seed as u32,
            page_no: (seed >> 32) as u32,
            payload,
        },
        2 => WalRecord::LoadCommit {
            table_id: seed as u32,
        },
        3 => WalRecord::PageDelta {
            table_id: seed as u32,
            page_no: (seed >> 32) as u32,
            payload,
        },
        _ => WalRecord::MutationCommit {
            meta: meta_from(seed),
            rows_affected: seed >> 16,
        },
    }
}

fn records_from(specs: &[(u64, u64)]) -> Vec<WalRecord> {
    specs.iter().map(|&(k, s)| record_from(k, s)).collect()
}

/// Frames `body` exactly as the WAL does: `[len u32][crc64 u64][body]`.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(12 + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc64(body).to_le_bytes());
    rec.extend_from_slice(body);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every record kind, in any mix and order, survives a commit and a
    /// reopen bit-for-bit.
    #[test]
    fn wal_record_sequences_round_trip(
        specs in prop::collection::vec((0u64..5, 0u64..u64::MAX), 1..10),
    ) {
        let records = records_from(&specs);
        let dir = TempDir::new("wal-prop-rt");
        let path = dir.path().join("wal.fj");
        {
            let (wal, scan) = Wal::open(&path).unwrap();
            prop_assert!(scan.records.is_empty());
            for r in &records {
                wal.append(r);
            }
            wal.commit(None).unwrap();
        }
        let (_, scan) = Wal::open(&path).unwrap();
        prop_assert_eq!(scan.records, records);
        prop_assert!(!scan.torn_tail_truncated);
    }

    /// Cutting a committed log at *any* byte offset — mid-header,
    /// mid-crc, mid-body, or at a boundary — recovers a prefix of the
    /// original sequence, and a second open converges (idempotent).
    #[test]
    fn wal_torn_at_any_byte_recovers_a_committed_prefix(
        specs in prop::collection::vec((0u64..5, 0u64..u64::MAX), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let records = records_from(&specs);
        let dir = TempDir::new("wal-prop-torn");
        let path = dir.path().join("wal.fj");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r);
            }
            wal.commit(None).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (_, scan) = Wal::open(&path).unwrap();
        let n = scan.records.len();
        prop_assert!(n <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..n], "replay is a prefix");
        // The truncated file is exactly the framed bytes of that prefix.
        let boundary = std::fs::metadata(&path).unwrap().len() as usize;
        prop_assert_eq!(&std::fs::read(&path).unwrap()[..], &bytes[..boundary]);
        // Second open: clean log, same prefix, nothing more to cut.
        let (_, again) = Wal::open(&path).unwrap();
        prop_assert!(!again.torn_tail_truncated);
        prop_assert_eq!(again.records, scan.records);
    }

    /// A log file of arbitrary bytes never panics the scanner: it
    /// decodes whatever valid prefix exists and truncates the rest.
    #[test]
    fn wal_arbitrary_bytes_never_panic(
        junk in prop::collection::vec(0u64..256, 0..256),
    ) {
        let junk: Vec<u8> = junk.into_iter().map(|b| b as u8).collect();
        let dir = TempDir::new("wal-prop-junk");
        let path = dir.path().join("wal.fj");
        std::fs::write(&path, &junk).unwrap();
        let (_, scan) = Wal::open(&path).unwrap();
        let (_, again) = Wal::open(&path).unwrap();
        prop_assert!(!again.torn_tail_truncated, "open is idempotent");
        prop_assert_eq!(again.records, scan.records);
    }

    /// A correctly framed record whose *body* is garbage (CRC passes,
    /// decode fails) is a torn tail, not a panic — and records before
    /// it still replay. This reaches the per-kind decoders directly.
    #[test]
    fn wal_valid_frame_with_garbage_body_is_typed(
        body in prop::collection::vec(0u64..256, 0..48),
        kind_word in 0u64..5,
        seed in 0u64..u64::MAX,
    ) {
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        let good = record_from(kind_word, seed);
        let dir = TempDir::new("wal-prop-body");
        let path = dir.path().join("wal.fj");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&good);
            wal.commit(None).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&frame(&body));
        std::fs::write(&path, &bytes).unwrap();

        let (_, scan) = Wal::open(&path).unwrap();
        // The garbage body either happens to decode as a real record
        // (possible: e.g. a PageImage body is any bytes after kind 2)
        // or is cut; the good record always survives either way.
        prop_assert!(!scan.records.is_empty());
        prop_assert_eq!(&scan.records[0], &good);
        if scan.records.len() == 1 {
            prop_assert!(scan.torn_tail_truncated);
            prop_assert_eq!(
                std::fs::metadata(&path).unwrap().len() as usize,
                good_len,
                "cut back to the last valid record"
            );
        }
    }
}

/// An unknown record kind (6) behind a valid CRC is detected by the
/// body decoder, not the checksum — the log stops replay there.
#[test]
fn wal_unknown_record_kind_is_a_torn_tail() {
    let dir = TempDir::new("wal-unknown-kind");
    let path = dir.path().join("wal.fj");
    std::fs::write(&path, frame(&[6u8, 1, 2, 3])).unwrap();
    let (_, scan) = Wal::open(&path).unwrap();
    assert!(scan.records.is_empty());
    assert!(scan.torn_tail_truncated);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
}
