//! Recovery idempotence and torn-tail handling, end to end.
//!
//! The store's recovery contract is stronger than "the rows come back":
//! WAL replay writes page images *in place*, so recovering any number
//! of times from the same crash state yields a byte-identical page
//! file. These tests diff the actual on-disk bytes, not just decoded
//! rows.

use fj_storage::{DataType, Table, TableBuilder, Value};
use fj_store::{Store, TempDir, WalRecord};
use proptest::prelude::*;
use std::path::Path;

fn table(name: &str, rows: usize, salt: i64) -> Table {
    TableBuilder::new(name)
        .column("k", DataType::Int)
        .column("w", DataType::Double)
        .column("tag", DataType::Str)
        .rows((0..rows).map(|i| {
            vec![
                Value::Int(i as i64 ^ salt),
                Value::Double(i as f64 * 1.5),
                Value::Str(format!("{name}-{i}")),
            ]
        }))
        .build()
        .unwrap()
}

fn pages_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("pages.fj")).unwrap_or_default()
}

fn wal_bytes_on_disk(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("wal.fj")).unwrap_or_default()
}

/// Replaying the same WAL twice (two recoveries with no intervening
/// writes) leaves the page file byte-identical.
#[test]
fn double_replay_is_byte_identical() {
    let dir = TempDir::new("recovery-double");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("T", 700, 0)).unwrap();
        store.load_table(&table("U", 80, 7)).unwrap();
        // Crash: no checkpoint, WAL holds everything.
    }
    let (_, report1) = {
        let (store, r) = Store::open(dir.path(), 32, None).unwrap();
        drop(store);
        ((), r)
    };
    assert_eq!(report1.replayed_tables, 2);
    let after_first = pages_bytes(dir.path());
    let wal_after_first = wal_bytes_on_disk(dir.path());

    let (store, report2) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(report2.replayed_tables, 2, "WAL is not consumed by replay");
    assert_eq!(
        pages_bytes(dir.path()),
        after_first,
        "second replay must write the same bytes at the same offsets"
    );
    assert_eq!(wal_bytes_on_disk(dir.path()), wal_after_first);
    let (_, rows) = store.recovered_rows("T").unwrap();
    assert_eq!(rows, table("T", 700, 0).rows());
}

/// Recovery from a checkpoint plus a WAL tail (tables loaded after the
/// checkpoint) is idempotent too, and sees both generations of tables.
#[test]
fn checkpoint_plus_partial_tail_recovers_idempotently() {
    let dir = TempDir::new("recovery-ckpt-tail");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("Old", 300, 1)).unwrap();
        store.checkpoint().unwrap();
        store.load_table(&table("New", 300, 2)).unwrap();
        // Crash: Old is manifest-durable, New lives only in the WAL.
    }
    let first = {
        let (store, report) = Store::open(dir.path(), 32, None).unwrap();
        assert_eq!(report.manifest_tables, 1);
        assert_eq!(report.replayed_tables, 1);
        let (_, old_rows) = store.recovered_rows("Old").unwrap();
        let (_, new_rows) = store.recovered_rows("New").unwrap();
        assert_eq!(old_rows, table("Old", 300, 1).rows());
        assert_eq!(new_rows, table("New", 300, 2).rows());
        pages_bytes(dir.path())
    };
    let (_store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(pages_bytes(dir.path()), first);
}

/// A torn final WAL record (half a record's bytes, as a crash mid-write
/// leaves) is detected by checksum and truncated — the tables committed
/// before it recover, the torn suffix is never replayed, and the
/// truncation converges (a third open sees a clean log).
#[test]
fn torn_final_wal_record_truncated_not_replayed() {
    let dir = TempDir::new("recovery-torn-tail");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("T", 200, 0)).unwrap();
    }
    // Append garbage that *starts* like a record (plausible length
    // field) but whose body bytes never made it.
    let wal_path = dir.path().join("wal.fj");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let intact_len = bytes.len() as u64;
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    bytes.extend_from_slice(&[0x55; 60]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(report.torn_wal_tail);
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        intact_len,
        "torn tail must be truncated to the last valid boundary"
    );
    let (_, rows) = store.recovered_rows("T").unwrap();
    assert_eq!(rows, table("T", 200, 0).rows());
    drop(store);

    let (_, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(!report.torn_wal_tail, "truncation converges");
}

/// Torn page-file writes during load plus a crash: recovery heals every
/// page from the WAL, and doing so twice is byte-identical.
#[test]
fn torn_page_writes_heal_idempotently() {
    use std::sync::Arc;
    let dir = TempDir::new("recovery-torn-pages");
    let t = table("T", 900, 3);
    {
        let faults = Arc::new(fj_storage::FaultPlan::new(42).with_torn_page_writes(3));
        let (store, _) = Store::open(dir.path(), 32, Some(faults)).unwrap();
        store.load_table(&t).unwrap();
    }
    let first = {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        let (_, rows) = store.recovered_rows("T").unwrap();
        assert_eq!(rows, t.rows());
        pages_bytes(dir.path())
    };
    let (_store, _) = Store::open(dir.path(), 32, None).unwrap();
    assert_eq!(pages_bytes(dir.path()), first);
}

/// The WAL's commit marker is the visibility boundary: records after
/// the last commit are parseable but belong to no committed load, so
/// recovery ignores them without truncating them away.
#[test]
fn valid_but_uncommitted_suffix_is_ignored() {
    let dir = TempDir::new("recovery-uncommitted");
    {
        let (store, _) = Store::open(dir.path(), 32, None).unwrap();
        store.load_table(&table("A", 100, 0)).unwrap();
    }
    // Hand-append a valid PageImage with no meta and no commit.
    {
        let (wal, _) = fj_store::Wal::open(dir.path().join("wal.fj")).unwrap();
        wal.append(&WalRecord::PageImage {
            table_id: 77,
            page_no: 0,
            payload: vec![1, 2, 3],
        });
        wal.commit(None).unwrap();
    }
    let (store, report) = Store::open(dir.path(), 32, None).unwrap();
    assert!(!report.torn_wal_tail, "valid records are not a torn tail");
    assert_eq!(report.replayed_tables, 1);
    assert_eq!(store.table_names(), vec!["A".to_string()]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized loads and crash points: whatever committed before the
    /// crash recovers byte-identically, twice.
    #[test]
    fn recovery_idempotent_on_random_tables(
        sizes in prop::collection::vec(0usize..120, 1..4),
        salt in 0i64..1000,
        with_checkpoint in 0u64..2,
    ) {
        let dir = TempDir::new("recovery-prop");
        let tables: Vec<Table> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| table(&format!("T{i}"), n, salt))
            .collect();
        {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            for (i, t) in tables.iter().enumerate() {
                store.load_table(t).unwrap();
                if with_checkpoint == 1 && i == 0 {
                    store.checkpoint().unwrap();
                }
            }
        }
        let first = {
            let (store, _) = Store::open(dir.path(), 16, None).unwrap();
            for t in &tables {
                let (_, rows) = store.recovered_rows(t.name()).unwrap();
                prop_assert_eq!(&rows, &t.rows().to_vec());
            }
            pages_bytes(dir.path())
        };
        let (_store, _) = Store::open(dir.path(), 16, None).unwrap();
        prop_assert_eq!(pages_bytes(dir.path()), first);
    }
}
