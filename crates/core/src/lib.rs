//! # fj-core
//!
//! The public facade of the `filterjoin` engine: a [`Database`] that
//! owns a catalog, optimizes [`fj_algebra::JoinQuery`]s with the
//! cost-based Filter Join optimizer, executes the chosen plans, and
//! reports both estimated and *measured* costs.
//!
//! ```
//! use fj_core::Database;
//! use fj_algebra::fixtures;
//!
//! // The paper's Figure 1 database and query.
//! let db = Database::with_catalog(fixtures::paper_catalog());
//! let result = db.execute(&fixtures::paper_query()).unwrap();
//! assert_eq!(result.rows.len(), 2);
//! // The EXPLAIN output shows whether the optimizer chose a Filter
//! // Join (i.e. whether magic-sets rewriting pays off here).
//! println!("{}", db.explain(&fixtures::paper_query()).unwrap());
//! ```

pub mod database;
pub mod explain;

pub use database::{Database, QueryResult, DEFAULT_MISESTIMATE_RATIO};

// Re-export the full stack so downstream users need only one
// dependency.
pub use fj_algebra as algebra;
pub use fj_algebra::{
    fixtures, Catalog, FromItem, JoinQuery, LogicalPlan, NetworkModel, Sips, SiteId, UdfRelation,
    ViewDef,
};
pub use fj_distsim as distsim;
pub use fj_exec as exec;
pub use fj_exec::{ExecCtx, PhysPlan};
pub use fj_expr as expr;
pub use fj_expr::{col, lit, AggCall, AggFunc, Expr};
pub use fj_optimizer as optimizer;
pub use fj_optimizer::{
    CostParams, FilterJoinCost, OptimizedPlan, Optimizer, OptimizerConfig, PlanShape,
};
pub use fj_storage as storage;
pub use fj_storage::{
    BloomFilter, CostLedger, DataType, LedgerSnapshot, Schema, Table, TableBuilder, Tuple, Value,
};
pub use fj_trace as trace;
pub use fj_trace::{
    OpStats, QueryTrace, SubtreeIo, TraceCollector, TraceNode, TraceRing, TracedQuery,
};
pub use fj_udf as udf;
pub use fj_udf::{CountingUdf, MemoUdf, TableFunction};
