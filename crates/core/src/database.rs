//! The `Database` facade.

use fj_algebra::{Catalog, JoinQuery, LogicalPlan, NetworkModel, Sips, UdfRelation, ViewDef};
use fj_exec::{lower, ExecCtx, PhysPlan};
use fj_optimizer::{FilterJoinCost, OptError, Optimizer, OptimizerConfig};
use fj_storage::{LedgerSnapshot, SchemaRef, Table, Tuple};
use fj_trace::{QueryTrace, TraceCollector};
use std::sync::Arc;

/// Default misestimate ratio for [`Database::explain_analyze`]: a node
/// is flagged when estimated and actual cardinality differ by more than
/// this factor in either direction.
pub const DEFAULT_MISESTIMATE_RATIO: f64 = 4.0;

/// A fully evaluated query with its plan and measured charges.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result schema.
    pub schema: SchemaRef,
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// Measured ledger charges of the execution.
    pub charges: LedgerSnapshot,
    /// Measured scalar cost in page units (ledger charges weighted with
    /// the database's cost parameters).
    pub measured_cost: f64,
    /// Optimizer's estimated cost (page units); `None` when the query
    /// was run through the heuristic lowering instead of the optimizer.
    pub estimated_cost: Option<f64>,
    /// The executed physical plan.
    pub plan: PhysPlan,
    /// Chosen join order (aliases), when optimized.
    pub order: Vec<String>,
    /// SIPS of the Filter Joins in the plan (empty = no magic).
    pub sips: Vec<Sips>,
    /// Table 1 breakdowns for each Filter Join used.
    pub filter_join_costs: Vec<FilterJoinCost>,
    /// Whether the plan came from a plan cache rather than a fresh
    /// optimization. Always `false` for direct `Database` calls; set by
    /// `fj-runtime`'s query service.
    pub cache_hit: bool,
    /// Wall-clock latency of optimize+execute in microseconds, when
    /// measured (the query service fills this in; direct `Database`
    /// calls leave it 0).
    pub latency_micros: u64,
    /// Per-operator execution trace, present only when the query ran
    /// through a traced entry point (`execute_traced*`) or a service
    /// configured to collect traces. `None` means tracing was off and
    /// execution took the zero-overhead path.
    pub trace: Option<QueryTrace>,
}

/// The engine facade: catalog + optimizer + executor.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    config: OptimizerConfig,
    memory_pages: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// An empty database with default configuration.
    pub fn new() -> Database {
        Database {
            catalog: Catalog::new(),
            config: OptimizerConfig::default(),
            memory_pages: fj_exec::context::DEFAULT_MEMORY_PAGES,
        }
    }

    /// A database over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Database {
        Database {
            catalog,
            ..Database::new()
        }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (register tables, views, UDFs,
    /// sites, network model).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Registers a local table.
    pub fn create_table(&mut self, table: Table) -> &mut Self {
        self.catalog.add_table(table.into_ref());
        self
    }

    /// Registers a view.
    pub fn create_view(&mut self, view: ViewDef) -> &mut Self {
        self.catalog.add_view(view);
        self
    }

    /// Registers a user-defined relation.
    pub fn create_udf(&mut self, name: impl Into<String>, udf: Arc<dyn UdfRelation>) -> &mut Self {
        self.catalog.add_udf(name, udf);
        self
    }

    /// Sets the network model (also propagated into the cost model).
    pub fn set_network(&mut self, network: NetworkModel) -> &mut Self {
        self.catalog.set_network(network);
        self.config.params.network = network;
        self
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Mutable optimizer configuration (enable/disable filter joins,
    /// Bloom filters, equivalence-class count, cost weights).
    pub fn config_mut(&mut self) -> &mut OptimizerConfig {
        &mut self.config
    }

    /// Sets the executor's buffer memory (pages), kept consistent with
    /// the cost model's `M`.
    pub fn set_memory_pages(&mut self, pages: u64) -> &mut Self {
        self.memory_pages = pages.max(3);
        self.config.params.memory_pages = self.memory_pages;
        self
    }

    fn exec_ctx(&self) -> ExecCtx {
        ExecCtx::new(Arc::new(self.catalog.clone())).with_memory_pages(self.memory_pages)
    }

    fn weighted(&self, charges: &LedgerSnapshot) -> f64 {
        charges.weighted(
            self.config.params.cpu_weight,
            self.config.params.network.per_byte,
            self.config.params.network.per_message,
        )
    }

    /// Optimizes and executes a join query.
    pub fn execute(&self, query: &JoinQuery) -> Result<QueryResult, OptError> {
        self.execute_with_config(query, self.config)
    }

    /// Optimizes and executes under an overridden configuration (used
    /// by the benchmarks to compare never-magic / always-magic /
    /// cost-based policies).
    pub fn execute_with_config(
        &self,
        query: &JoinQuery,
        config: OptimizerConfig,
    ) -> Result<QueryResult, OptError> {
        self.execute_inner(query, config, false)
    }

    /// Like [`Database::execute`], but records a per-operator
    /// [`QueryTrace`] into the result's `trace` field.
    pub fn execute_traced(&self, query: &JoinQuery) -> Result<QueryResult, OptError> {
        self.execute_inner(query, self.config, true)
    }

    /// Like [`Database::execute_with_config`], but records a
    /// per-operator [`QueryTrace`] into the result's `trace` field.
    pub fn execute_traced_with_config(
        &self,
        query: &JoinQuery,
        config: OptimizerConfig,
    ) -> Result<QueryResult, OptError> {
        self.execute_inner(query, config, true)
    }

    fn execute_inner(
        &self,
        query: &JoinQuery,
        config: OptimizerConfig,
        traced: bool,
    ) -> Result<QueryResult, OptError> {
        let optimizer = Optimizer::new(Arc::new(self.catalog.clone()), config);
        let plan = optimizer.optimize(query)?;
        let mut ctx = self.exec_ctx();
        let collector = traced.then(|| Arc::new(TraceCollector::new()));
        if let Some(c) = &collector {
            ctx = ctx.with_tracer(Arc::clone(c));
        }
        let before = ctx.ledger.snapshot();
        let rel = plan.phys.execute(&ctx)?;
        let charges = ctx.ledger.snapshot().delta(&before);
        Ok(QueryResult {
            schema: rel.schema,
            rows: rel.rows,
            measured_cost: self.weighted(&charges),
            charges,
            estimated_cost: Some(plan.cost),
            plan: plan.phys,
            order: plan.order,
            sips: plan.sips,
            filter_join_costs: plan.filter_join_costs,
            cache_hit: false,
            latency_micros: 0,
            trace: collector.and_then(|c| c.finish()),
        })
    }

    /// Optimizes without executing.
    pub fn optimize(&self, query: &JoinQuery) -> Result<fj_optimizer::OptimizedPlan, OptError> {
        Optimizer::new(Arc::new(self.catalog.clone()), self.config).optimize(query)
    }

    /// Executes a logical plan through the heuristic (rule-based)
    /// lowering, bypassing the cost-based optimizer — e.g. to run a
    /// magic-rewritten plan verbatim.
    pub fn run_logical(&self, plan: &LogicalPlan) -> Result<QueryResult, OptError> {
        let phys = lower::lower(plan, &self.catalog)?;
        let ctx = self.exec_ctx();
        let before = ctx.ledger.snapshot();
        let rel = phys.execute(&ctx)?;
        let charges = ctx.ledger.snapshot().delta(&before);
        Ok(QueryResult {
            schema: rel.schema,
            rows: rel.rows,
            measured_cost: self.weighted(&charges),
            charges,
            estimated_cost: None,
            plan: phys,
            order: Vec::new(),
            sips: Vec::new(),
            filter_join_costs: Vec::new(),
            cache_hit: false,
            latency_micros: 0,
            trace: None,
        })
    }

    /// Applies the magic-sets rewriting under `sips` and executes the
    /// rewritten query (the "query transformation" road, for comparison
    /// with the optimizer's integrated Filter Join road).
    pub fn run_magic(&self, query: &JoinQuery, sips: &Sips) -> Result<QueryResult, OptError> {
        let rewritten = fj_algebra::magic::rewrite(&self.catalog, query, sips)?;
        self.run_logical(&rewritten)
    }

    /// Renders the Figure 2 SQL text of the magic rewriting `sips`
    /// induces on `query` (CREATE VIEW PartialResult / Filter /
    /// `Restricted<View>` + the final query).
    pub fn render_magic_sql(&self, query: &JoinQuery, sips: &Sips) -> Result<String, OptError> {
        Ok(fj_algebra::sql::render_figure2(&self.catalog, query, sips)?)
    }

    /// EXPLAIN: the chosen physical plan with costs, order and SIPS.
    pub fn explain(&self, query: &JoinQuery) -> Result<String, OptError> {
        let plan = self.optimize(query)?;
        Ok(crate::explain::render(&plan))
    }

    /// EXPLAIN ANALYZE: optimizes, executes with tracing on, and
    /// renders the plan with *estimated vs actual* cardinality and cost
    /// per operator. Nodes whose estimate and actual differ by more
    /// than [`DEFAULT_MISESTIMATE_RATIO`]× are flagged.
    pub fn explain_analyze(&self, query: &JoinQuery) -> Result<String, OptError> {
        self.explain_analyze_with_ratio(query, DEFAULT_MISESTIMATE_RATIO)
    }

    /// [`Database::explain_analyze`] with a caller-chosen misestimate
    /// ratio. `ratio` is clamped to at least 1.0 (a ratio of 1 flags
    /// every node whose estimate is not exactly the actual).
    pub fn explain_analyze_with_ratio(
        &self,
        query: &JoinQuery,
        ratio: f64,
    ) -> Result<String, OptError> {
        let plan = self.optimize(query)?;
        let est = fj_optimizer::estimate_phys_plan(&self.catalog, self.config.params, &plan.phys);
        let collector = Arc::new(TraceCollector::new());
        let ctx = self.exec_ctx().with_tracer(Arc::clone(&collector));
        plan.phys.execute(&ctx)?;
        let trace = collector
            .finish()
            .ok_or_else(|| OptError::NoPlan("trace collection did not complete".into()))?;
        Ok(crate::explain::render_analyze(&plan, &est, &trace, ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_algebra::Sips;
    use fj_storage::tuple;

    fn db() -> Database {
        Database::with_catalog(paper_catalog())
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    #[test]
    fn execute_paper_query() {
        let r = db().execute(&paper_query()).unwrap();
        assert_eq!(
            sorted(r.rows),
            vec![tuple![10, 9000.0, 5000.0], tuple![30, 4000.0, 3000.0]]
        );
        assert!(r.measured_cost > 0.0);
        assert!(r.estimated_cost.unwrap() > 0.0);
        assert_eq!(r.order.len(), 3);
    }

    #[test]
    fn three_roads_agree() {
        let d = db();
        let q = paper_query();
        let optimized = d.execute(&q).unwrap();
        let naive = d.run_logical(&q.to_plan()).unwrap();
        let sips = Sips::derive(d.catalog(), &q, &["E".to_string(), "D".to_string()], "V").unwrap();
        let magic = d.run_magic(&q, &sips).unwrap();
        assert_eq!(sorted(optimized.rows), sorted(naive.rows.clone()));
        assert_eq!(sorted(magic.rows), sorted(naive.rows));
    }

    #[test]
    fn magic_sql_renders_figure2() {
        let d = db();
        let q = paper_query();
        let sips = Sips::derive(d.catalog(), &q, &["E".to_string(), "D".to_string()], "V").unwrap();
        let sql = d.render_magic_sql(&q, &sips).unwrap();
        assert!(sql.contains("CREATE VIEW PartialResult AS"));
        assert!(sql.contains("RestrictedDepAvgSal"));
    }

    #[test]
    fn explain_mentions_plan_and_cost() {
        let s = db().explain(&paper_query()).unwrap();
        assert!(s.contains("estimated cost"));
        assert!(s.contains("join order"));
    }

    #[test]
    fn untraced_execution_carries_no_trace() {
        let r = db().execute(&paper_query()).unwrap();
        assert!(r.trace.is_none());
    }

    #[test]
    fn traced_execution_mirrors_result() {
        let d = db();
        let plain = d.execute(&paper_query()).unwrap();
        let traced = d.execute_traced(&paper_query()).unwrap();
        assert_eq!(sorted(plain.rows), sorted(traced.rows.clone()));
        let trace = traced.trace.expect("traced run records a trace");
        assert_eq!(trace.rows_out(), traced.rows.len() as u64);
        assert!(trace.node_count() >= 3, "plan has at least scan+join nodes");
        assert!(
            trace.root.stats.interrupt_polls > 0,
            "root accounts for at least one interrupt poll"
        );
    }

    #[test]
    fn traced_execution_matches_the_naive_oracle() {
        let d = db();
        let q = paper_query();
        let oracle = d.run_logical(&q.to_plan()).unwrap();
        let traced = d.execute_traced(&q).unwrap();
        assert_eq!(
            traced.trace.unwrap().rows_out(),
            oracle.rows.len() as u64,
            "trace root row count agrees with the logical oracle"
        );
    }

    #[test]
    fn explain_analyze_prints_estimated_vs_actual() {
        let d = db();
        let s = d.explain_analyze(&paper_query()).unwrap();
        let actual = d.run_logical(&paper_query().to_plan()).unwrap().rows.len();
        assert!(s.contains("operators (estimated vs actual)"));
        assert!(s.contains("est "), "per-node estimates rendered");
        assert!(
            s.contains(&format!("actual rows:    {actual}")),
            "top-line actual equals the oracle count:\n{s}"
        );
    }

    #[test]
    fn explain_analyze_ratio_one_flags_any_mismatch() {
        // With ratio clamped to 1.0, any node whose estimate is not
        // byte-exact gets flagged; the paper plan always has at least
        // one fractional estimate against an integral actual.
        let s = db()
            .explain_analyze_with_ratio(&paper_query(), 0.0)
            .unwrap();
        assert!(s.contains("operators (estimated vs actual)"));
    }

    #[test]
    fn config_override_disables_filter_join() {
        let d = db();
        let r = d
            .execute_with_config(&paper_query(), OptimizerConfig::without_filter_join())
            .unwrap();
        assert!(r.sips.is_empty());
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn memory_setting_propagates() {
        let mut d = db();
        d.set_memory_pages(0);
        assert_eq!(d.config().params.memory_pages, 3);
    }

    #[test]
    fn network_setting_propagates() {
        let mut d = db();
        d.set_network(NetworkModel::wan());
        assert!(d.config().params.network.per_byte > 0.0);
        assert!(d.catalog().network().per_message > 0.0);
    }

    #[test]
    fn builder_methods() {
        let mut d = Database::new();
        d.create_table(
            fj_storage::TableBuilder::new("t")
                .column("a", fj_storage::DataType::Int)
                .row(vec![1.into()])
                .build()
                .unwrap(),
        );
        let q = JoinQuery::new(vec![fj_algebra::FromItem::new("t", "T")]);
        assert_eq!(d.execute(&q).unwrap().rows.len(), 1);
    }
}
