//! EXPLAIN rendering: physical plan, cost estimate, join order, SIPS
//! and Table 1 breakdowns.

use fj_optimizer::OptimizedPlan;
use std::fmt::Write as _;

/// Renders an optimized plan as a human-readable EXPLAIN block.
pub fn render(plan: &OptimizedPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "estimated cost: {:.2} page-units", plan.cost);
    let _ = writeln!(out, "estimated rows: {:.1}", plan.est_rows);
    let _ = writeln!(out, "join order:     {}", plan.order.join(" -> "));
    let _ = writeln!(
        out,
        "plans costed:   {} (nested estimator invocations: {})",
        plan.plans_considered, plan.nested_invocations
    );
    if plan.sips.is_empty() {
        let _ = writeln!(out, "filter joins:   none (magic rewriting not chosen)");
    } else {
        for (i, s) in plan.sips.iter().enumerate() {
            let keys = s
                .filter_keys
                .iter()
                .map(|k| format!("{} = {}", k.left, k.right))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "filter join #{i}: production [{}] -> inner {} on ({keys})",
                s.production.join(", "),
                s.inner
            );
            if let Some(c) = plan.filter_join_costs.get(i) {
                for (name, v) in c.components() {
                    let _ = writeln!(out, "    {name:>18}: {v:>12.2}");
                }
            }
        }
    }
    let _ = writeln!(out, "physical plan:");
    for line in plan.phys.display().lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_optimizer::{Optimizer, OptimizerConfig};
    use std::sync::Arc;

    #[test]
    fn render_contains_sections() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(cat, OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let s = super::render(&plan);
        assert!(s.contains("estimated cost"));
        assert!(s.contains("join order"));
        assert!(s.contains("physical plan"));
    }

    #[test]
    fn render_without_filter_join_says_none() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(cat, OptimizerConfig::without_filter_join())
            .optimize(&paper_query())
            .unwrap();
        let s = super::render(&plan);
        assert!(s.contains("none"));
    }
}
