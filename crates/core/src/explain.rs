//! EXPLAIN rendering: physical plan, cost estimate, join order, SIPS
//! and Table 1 breakdowns — plus the EXPLAIN ANALYZE variant that
//! annotates each operator with estimated vs actual cardinality from a
//! recorded [`fj_trace::QueryTrace`].

use fj_exec::PhysPlan;
use fj_optimizer::{EstNode, OptimizedPlan};
use fj_trace::{QueryTrace, TraceNode};
use std::fmt::Write as _;

/// Renders an optimized plan as a human-readable EXPLAIN block.
pub fn render(plan: &OptimizedPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "estimated cost: {:.2} page-units", plan.cost);
    let _ = writeln!(out, "estimated rows: {:.1}", plan.est_rows);
    let _ = writeln!(out, "join order:     {}", plan.order.join(" -> "));
    let _ = writeln!(
        out,
        "plans costed:   {} (nested estimator invocations: {})",
        plan.plans_considered, plan.nested_invocations
    );
    if plan.sips.is_empty() {
        let _ = writeln!(out, "filter joins:   none (magic rewriting not chosen)");
    } else {
        for (i, s) in plan.sips.iter().enumerate() {
            let keys = s
                .filter_keys
                .iter()
                .map(|k| format!("{} = {}", k.left, k.right))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "filter join #{i}: production [{}] -> inner {} on ({keys})",
                s.production.join(", "),
                s.inner
            );
            if let Some(c) = plan.filter_join_costs.get(i) {
                for (name, v) in c.components() {
                    let _ = writeln!(out, "    {name:>18}: {v:>12.2}");
                }
            }
        }
    }
    let _ = writeln!(out, "physical plan:");
    for line in plan.phys.display().lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

/// Renders an EXPLAIN ANALYZE block: the optimized plan's operator
/// tree with each node annotated `[est R rows / P pages | actual R
/// rows / P pages, T us]`, flagging nodes whose estimated and actual
/// row counts differ by more than `ratio`× in either direction.
///
/// `est` and `trace` must mirror the shape of `plan.phys` (as produced
/// by [`fj_optimizer::estimate_phys_plan`] and a traced execution of
/// the same plan); nodes past a shape mismatch are rendered without
/// annotations rather than dropped.
pub fn render_analyze(
    plan: &OptimizedPlan,
    est: &EstNode,
    trace: &QueryTrace,
    ratio: f64,
) -> String {
    let ratio = ratio.max(1.0);
    let mut out = String::new();
    let _ = writeln!(out, "estimated cost: {:.2} page-units", plan.cost);
    let _ = writeln!(out, "estimated rows: {:.1}", plan.est_rows);
    let _ = writeln!(out, "actual rows:    {}", trace.rows_out());
    let _ = writeln!(out, "wall time:      {} us", plan_wall(trace));
    let _ = writeln!(out, "join order:     {}", plan.order.join(" -> "));
    let _ = writeln!(out, "operators (estimated vs actual):");
    analyze_node(&plan.phys, Some(est), Some(&trace.root), ratio, 1, &mut out);
    out
}

fn plan_wall(trace: &QueryTrace) -> u64 {
    trace.total_wall_micros.max(trace.root.stats.wall_micros)
}

fn analyze_node(
    plan: &PhysPlan,
    est: Option<&EstNode>,
    trace: Option<&TraceNode>,
    ratio: f64,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let label = plan.node_label();
    let _ = write!(out, "{indent}{label}");
    match (est, trace) {
        (Some(e), Some(t)) => {
            let _ = write!(
                out,
                "  [est {:.1} rows / {:.1} pages | actual {} rows / {} pages, {} us]",
                e.est_rows, e.est_pages, t.stats.rows_out, t.stats.pages_read, t.stats.wall_micros
            );
            let factor = misestimate_factor(e.est_rows, t.stats.rows_out);
            if factor > ratio {
                let _ = write!(out, "  <-- misestimate x{factor:.1}");
            }
            if t.stats.spills > 0 {
                let _ = write!(
                    out,
                    "  <-- spilled x{} ({} temp pages)",
                    t.stats.spills, t.stats.spill_pages
                );
            }
        }
        (Some(e), None) => {
            let _ = write!(
                out,
                "  [est {:.1} rows / {:.1} pages]",
                e.est_rows, e.est_pages
            );
        }
        (None, Some(t)) => {
            let _ = write!(
                out,
                "  [actual {} rows / {} pages, {} us]",
                t.stats.rows_out, t.stats.pages_read, t.stats.wall_micros
            );
            if t.stats.spills > 0 {
                let _ = write!(
                    out,
                    "  <-- spilled x{} ({} temp pages)",
                    t.stats.spills, t.stats.spill_pages
                );
            }
        }
        (None, None) => {}
    }
    let _ = writeln!(out);
    let children = plan.children();
    for (i, child) in children.iter().enumerate() {
        analyze_node(
            child,
            est.and_then(|e| e.children.get(i)),
            trace.and_then(|t| t.children.get(i)),
            ratio,
            depth + 1,
            out,
        );
    }
}

/// The symmetric over/under-estimation factor, with both sides clamped
/// to 1 row so empty results do not divide by zero.
fn misestimate_factor(est_rows: f64, actual_rows: u64) -> f64 {
    let e = est_rows.max(1.0);
    let a = (actual_rows as f64).max(1.0);
    (e / a).max(a / e)
}

#[cfg(test)]
mod tests {
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_optimizer::{Optimizer, OptimizerConfig};
    use std::sync::Arc;

    #[test]
    fn render_contains_sections() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(cat, OptimizerConfig::default())
            .optimize(&paper_query())
            .unwrap();
        let s = super::render(&plan);
        assert!(s.contains("estimated cost"));
        assert!(s.contains("join order"));
        assert!(s.contains("physical plan"));
    }

    #[test]
    fn analyze_annotates_every_operator() {
        let db = crate::Database::with_catalog(paper_catalog());
        let s = db.explain_analyze(&paper_query()).unwrap();
        // Every plan line carries both an estimate and an actual.
        let op_lines: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("operators"))
            .skip(1)
            .collect();
        assert!(!op_lines.is_empty());
        for line in op_lines {
            assert!(line.contains("[est "), "missing estimate: {line}");
            assert!(line.contains("| actual "), "missing actual: {line}");
        }
    }

    #[test]
    fn analyze_flags_gross_misestimates() {
        // ratio just above 1 flags essentially every fractional
        // estimate; the flag marker must appear with a tight ratio and
        // carry the factor.
        let db = crate::Database::with_catalog(paper_catalog());
        let tight = db
            .explain_analyze_with_ratio(&paper_query(), 1.0000001)
            .unwrap();
        let loose = db.explain_analyze_with_ratio(&paper_query(), 1e12).unwrap();
        assert!(!loose.contains("misestimate"), "loose ratio flags nothing");
        // The tight render is a superset: same operators, more flags.
        assert_eq!(tight.lines().count(), loose.lines().count());
    }

    #[test]
    fn misestimate_factor_is_symmetric_and_zero_safe() {
        assert_eq!(super::misestimate_factor(10.0, 10), 1.0);
        assert_eq!(super::misestimate_factor(50.0, 10), 5.0);
        assert_eq!(super::misestimate_factor(10.0, 50), 5.0);
        assert_eq!(super::misestimate_factor(0.0, 0), 1.0);
        assert_eq!(super::misestimate_factor(8.0, 0), 8.0);
    }

    #[test]
    fn render_without_filter_join_says_none() {
        let cat = Arc::new(paper_catalog());
        let plan = Optimizer::new(cat, OptimizerConfig::without_filter_join())
            .optimize(&paper_query())
            .unwrap();
        let s = super::render(&plan);
        assert!(s.contains("none"));
    }
}
