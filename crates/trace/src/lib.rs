//! # fj-trace
//!
//! Zero-cost-when-off, per-query observability: every physical operator
//! records an [`OpStats`] node into a per-query [`QueryTrace`] tree
//! mirroring the plan shape.
//!
//! The crate is deliberately a leaf (std only): `fj-exec` feeds a
//! [`TraceCollector`] during plan interpretation, `fj-core` renders
//! `EXPLAIN ANALYZE` from the finished tree, `fj-runtime` keeps a
//! bounded [`TraceRing`] of recent traces, and `fj-net` ships traces in
//! a dedicated frame as the stable-key JSON produced by
//! [`QueryTrace::to_json`] and re-parsed by the **strict, total**
//! [`QueryTrace::from_json`] (typed errors on adversarial bytes, never
//! panics — the same discipline as the HEALTH codec).
//!
//! ## Collection model
//!
//! Plan interpretation in `fj-exec` is a single-threaded recursion
//! (intra-operator parallelism chunks *inside* operators and never
//! re-enters the plan), so the collector is a simple frame stack:
//! `enter` at node entry, `exit` at node exit (on both success and
//! error paths, keeping the stack balanced). Interrupt polls are
//! counted globally through an atomic — operator loops may poll from
//! worker threads — and attributed to the node on the stack when the
//! poll happened, minus whatever its children consumed.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum nesting depth [`QueryTrace::from_json`] accepts — bounds
/// recursion on adversarial inputs (same guard idea as the wire codec's
/// expression-depth cap).
pub const MAX_TRACE_DEPTH: usize = 200;

/// What one physical operator did during one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Operator label — the node's one-line EXPLAIN rendering
    /// (e.g. `HashJoin on E.did = D.did`).
    pub label: String,
    /// Rows received from children (sum of their `rows_out`).
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Rows on the build side (second child of a two-input join; 0
    /// elsewhere).
    pub build_rows: u64,
    /// Rows on the probe side (first child; 0 for leaves).
    pub probe_rows: u64,
    /// Pages read by this node itself (ledger delta across the node,
    /// minus its children's subtree reads).
    pub pages_read: u64,
    /// Buffer-pool hits charged to this node itself (disk-backed mode;
    /// 0 when the service runs purely in memory).
    pub pool_hits: u64,
    /// Buffer-pool misses — physical page-file reads — charged to this
    /// node itself (disk-backed mode; 0 in memory).
    pub pool_misses: u64,
    /// Inclusive wall time of the node's subtree, in microseconds.
    pub wall_micros: u64,
    /// Interrupt polls made by this node itself (global poll-counter
    /// delta minus the children's).
    pub interrupt_polls: u64,
    /// Spill events in this node itself (operator invocations that
    /// degraded to temp-file partitioning, grace recursion levels
    /// included; 0 when memory governance is off or never triggered).
    pub spills: u64,
    /// Temp-file pages this node itself wrote plus read back while
    /// spilling.
    pub spill_pages: u64,
}

/// One node of a query trace; children mirror the plan's execution
/// order (outer before inner; `WithTemp` steps before the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// The node's measured statistics.
    pub stats: OpStats,
    /// Child traces.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Number of nodes in this subtree (itself included).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::node_count)
            .sum::<usize>()
    }

    /// Pre-order walk over the subtree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a TraceNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// A finished per-query trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The root operator's trace (its subtree is the whole plan).
    pub root: TraceNode,
    /// Wall time of the whole execution, in microseconds (equals the
    /// root's inclusive wall time).
    pub total_wall_micros: u64,
}

impl QueryTrace {
    /// Rows the query returned (the root operator's output).
    pub fn rows_out(&self) -> u64 {
        self.root.stats.rows_out
    }

    /// Number of operator nodes traced.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// One-line JSON with a stable key order (nested `children` arrays
    /// mirror the tree). Keys per node: `op`, `rows_in`, `rows_out`,
    /// `build_rows`, `probe_rows`, `pages_read`, `pool_hits`,
    /// `pool_misses`, `wall_micros`, `interrupt_polls`, `spills`,
    /// `spill_pages`, `children`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"total_wall_micros\":");
        out.push_str(&self.total_wall_micros.to_string());
        out.push_str(",\"root\":");
        write_node_json(&self.root, &mut out);
        out.push('}');
        out
    }

    /// Strict, total parse of [`QueryTrace::to_json`] output: accepts
    /// keys in any order, rejects duplicate/unknown/missing keys,
    /// non-integer counters, over-deep nesting and trailing bytes with
    /// typed errors. Never panics on adversarial input.
    pub fn from_json(s: &str) -> Result<QueryTrace, TraceError> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        p.expect(b'{')?;
        let mut total: Option<u64> = None;
        let mut root: Option<TraceNode> = None;
        loop {
            p.ws();
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            match key.as_str() {
                "total_wall_micros" => {
                    if total.replace(p.u64()?).is_some() {
                        return Err(TraceError::DuplicateKey("total_wall_micros".into()));
                    }
                }
                "root" => {
                    if root.replace(p.node(0)?).is_some() {
                        return Err(TraceError::DuplicateKey("root".into()));
                    }
                }
                other => return Err(TraceError::UnknownKey(other.into())),
            }
            p.ws();
            match p.bump()? {
                b',' => continue,
                b'}' => break,
                _ => return Err(TraceError::Expected("',' or '}'")),
            }
        }
        p.ws();
        if p.i != p.b.len() {
            return Err(TraceError::TrailingBytes(p.b.len() - p.i));
        }
        Ok(QueryTrace {
            total_wall_micros: total.ok_or(TraceError::MissingKey("total_wall_micros"))?,
            root: root.ok_or(TraceError::MissingKey("root"))?,
        })
    }
}

fn write_node_json(node: &TraceNode, out: &mut String) {
    let s = &node.stats;
    out.push_str("{\"op\":\"");
    for ch in s.label.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push_str(&format!(
        "\",\"rows_in\":{},\"rows_out\":{},\"build_rows\":{},\"probe_rows\":{},\"pages_read\":{},\"pool_hits\":{},\"pool_misses\":{},\"wall_micros\":{},\"interrupt_polls\":{},\"spills\":{},\"spill_pages\":{},\"children\":[",
        s.rows_in, s.rows_out, s.build_rows, s.probe_rows, s.pages_read, s.pool_hits, s.pool_misses, s.wall_micros, s.interrupt_polls, s.spills, s.spill_pages
    ));
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_node_json(c, out);
    }
    out.push_str("]}");
}

/// Typed failures of [`QueryTrace::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Input ended mid-value.
    UnexpectedEof,
    /// A specific token was required and absent.
    Expected(&'static str),
    /// The same key appeared twice in one object.
    DuplicateKey(String),
    /// A key this schema does not define.
    UnknownKey(String),
    /// A required key was absent.
    MissingKey(&'static str),
    /// A counter was not an unsigned integer (or overflowed u64).
    BadNumber,
    /// A string escape other than `\"` or `\\`.
    BadEscape,
    /// Nesting beyond [`MAX_TRACE_DEPTH`].
    TooDeep,
    /// Bytes after the closing brace.
    TrailingBytes(usize),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnexpectedEof => f.write_str("unexpected end of input"),
            TraceError::Expected(what) => write!(f, "expected {what}"),
            TraceError::DuplicateKey(k) => write!(f, "duplicate key '{k}'"),
            TraceError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            TraceError::MissingKey(k) => write!(f, "missing key '{k}'"),
            TraceError::BadNumber => f.write_str("counter is not a u64"),
            TraceError::BadEscape => f.write_str("unsupported string escape"),
            TraceError::TooDeep => write!(f, "nesting deeper than {MAX_TRACE_DEPTH}"),
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for TraceError {}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<u8, TraceError> {
        let c = self.peek().ok_or(TraceError::UnexpectedEof)?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), TraceError> {
        match self.bump()? {
            c if c == want => Ok(()),
            _ => Err(match want {
                b'{' => TraceError::Expected("'{'"),
                b':' => TraceError::Expected("':'"),
                b'[' => TraceError::Expected("'['"),
                b'"' => TraceError::Expected("'\"'"),
                _ => TraceError::Expected("punctuation"),
            }),
        }
    }

    /// A quoted string with `\"` and `\\` as the only escapes.
    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let start = self.i;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => break,
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    _ => return Err(TraceError::BadEscape),
                },
                _ => {
                    // Re-slice from the source so multi-byte UTF-8
                    // sequences survive intact (the input is a &str, so
                    // consuming the continuation bytes restores a
                    // char boundary).
                    let ch_start = self.i - 1;
                    while matches!(self.peek(), Some(0x80..=0xBF)) {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[ch_start..self.i])
                            .map_err(|_| TraceError::Expected("utf-8"))?,
                    );
                }
            }
        }
        let _ = start;
        Ok(out)
    }

    /// An unsigned integer: digits only, no leading zeros (except "0"),
    /// overflow is a typed error.
    fn u64(&mut self) -> Result<u64, TraceError> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        let digits = &self.b[start..self.i];
        if digits.is_empty() || (digits.len() > 1 && digits[0] == b'0') {
            return Err(TraceError::BadNumber);
        }
        let mut v: u64 = 0;
        for d in digits {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(d - b'0')))
                .ok_or(TraceError::BadNumber)?;
        }
        Ok(v)
    }

    /// One trace node object; `depth` guards recursion.
    fn node(&mut self, depth: usize) -> Result<TraceNode, TraceError> {
        if depth >= MAX_TRACE_DEPTH {
            return Err(TraceError::TooDeep);
        }
        self.expect(b'{')?;
        let mut label: Option<String> = None;
        let mut fields: [Option<u64>; 11] = [None; 11];
        const KEYS: [&str; 11] = [
            "rows_in",
            "rows_out",
            "build_rows",
            "probe_rows",
            "pages_read",
            "pool_hits",
            "pool_misses",
            "wall_micros",
            "interrupt_polls",
            "spills",
            "spill_pages",
        ];
        let mut children: Option<Vec<TraceNode>> = None;
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            if key == "op" {
                if label.replace(self.string()?).is_some() {
                    return Err(TraceError::DuplicateKey("op".into()));
                }
            } else if key == "children" {
                if children.is_some() {
                    return Err(TraceError::DuplicateKey("children".into()));
                }
                children = Some(self.children(depth)?);
            } else if let Some(slot) = KEYS.iter().position(|k| *k == key) {
                if fields[slot].replace(self.u64()?).is_some() {
                    return Err(TraceError::DuplicateKey(key));
                }
            } else {
                return Err(TraceError::UnknownKey(key));
            }
            self.ws();
            match self.bump()? {
                b',' => continue,
                b'}' => break,
                _ => return Err(TraceError::Expected("',' or '}'")),
            }
        }
        let take = |slot: usize| fields[slot].ok_or(TraceError::MissingKey(KEYS[slot]));
        Ok(TraceNode {
            stats: OpStats {
                label: label.ok_or(TraceError::MissingKey("op"))?,
                rows_in: take(0)?,
                rows_out: take(1)?,
                build_rows: take(2)?,
                probe_rows: take(3)?,
                pages_read: take(4)?,
                pool_hits: take(5)?,
                pool_misses: take(6)?,
                wall_micros: take(7)?,
                interrupt_polls: take(8)?,
                spills: take(9)?,
                spill_pages: take(10)?,
            },
            children: children.ok_or(TraceError::MissingKey("children"))?,
        })
    }

    fn children(&mut self, depth: usize) -> Result<Vec<TraceNode>, TraceError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            out.push(self.node(depth + 1)?);
            self.ws();
            match self.bump()? {
                b',' => continue,
                b']' => break,
                _ => return Err(TraceError::Expected("',' or ']'")),
            }
        }
        Ok(out)
    }
}

/// I/O observed across one plan node's subtree, as measured by the
/// interpreter around the node (ledger and buffer-pool counter deltas
/// between node entry and exit). [`TraceCollector::exit`] subtracts the
/// children's subtrees to get the node's own share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubtreeIo {
    /// Ledger `page_reads` delta across the subtree.
    pub pages_read: u64,
    /// Buffer-pool hit delta across the subtree (0 when in memory).
    pub pool_hits: u64,
    /// Buffer-pool miss delta across the subtree (0 when in memory).
    pub pool_misses: u64,
    /// Spill-event delta across the subtree (0 when memory governance
    /// is off).
    pub spills: u64,
    /// Temp-file pages written plus read back across the subtree.
    pub spill_pages: u64,
}

impl SubtreeIo {
    /// Pages only — the in-memory mode's measurement, where no buffer
    /// pool exists.
    pub fn pages(pages_read: u64) -> SubtreeIo {
        SubtreeIo {
            pages_read,
            ..SubtreeIo::default()
        }
    }

    fn saturating_sub(self, other: SubtreeIo) -> SubtreeIo {
        SubtreeIo {
            pages_read: self.pages_read.saturating_sub(other.pages_read),
            pool_hits: self.pool_hits.saturating_sub(other.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(other.pool_misses),
            spills: self.spills.saturating_sub(other.spills),
            spill_pages: self.spill_pages.saturating_sub(other.spill_pages),
        }
    }

    fn add(&mut self, other: SubtreeIo) {
        self.pages_read += other.pages_read;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.spills += other.spills;
        self.spill_pages += other.spill_pages;
    }
}

/// One in-flight stack frame of the collector.
struct Frame {
    label: String,
    start: Instant,
    polls_at_entry: u64,
    /// Subtree interrupt polls already attributed to finished children.
    child_polls: u64,
    /// Subtree I/O already attributed to finished children.
    child_io: SubtreeIo,
    children: Vec<TraceNode>,
}

struct CollectorState {
    stack: Vec<Frame>,
    finished: Option<TraceNode>,
}

/// Builds a [`QueryTrace`] from `enter`/`exit` calls made by the plan
/// interpreter. One collector serves one query execution.
pub struct TraceCollector {
    state: Mutex<CollectorState>,
    polls: AtomicU64,
}

impl fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCollector")
            .field("polls", &self.polls.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A fresh, empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector {
            state: Mutex::new(CollectorState {
                stack: Vec::new(),
                finished: None,
            }),
            polls: AtomicU64::new(0),
        }
    }

    /// Enters a plan node. Must be balanced by one [`TraceCollector::exit`].
    pub fn enter(&self, label: String) {
        let polls_at_entry = self.polls.load(Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.stack.push(Frame {
            label,
            start: Instant::now(),
            polls_at_entry,
            child_polls: 0,
            child_io: SubtreeIo::default(),
            children: Vec::new(),
        });
    }

    /// Counts one interrupt poll (callable from any thread).
    #[inline]
    pub fn note_poll(&self) {
        self.polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Exits the innermost open node with its output cardinality and
    /// the I/O counter deltas ([`SubtreeIo`]: ledger `page_reads`, pool
    /// hits/misses) across the node's subtree. Rows in / build / probe
    /// counts derive from the finished children: first child = probe
    /// (outer), second = build (inner).
    ///
    /// Exits on error paths pass the rows produced before the failure
    /// (usually 0), keeping the stack balanced.
    pub fn exit(&self, rows_out: u64, subtree_io: SubtreeIo) {
        let polls_now = self.polls.load(Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let Some(frame) = st.stack.pop() else {
            return; // unbalanced exit: drop rather than poison anything
        };
        let subtree_polls = polls_now.saturating_sub(frame.polls_at_entry);
        let rows_in = frame.children.iter().map(|c| c.stats.rows_out).sum();
        let probe_rows = frame.children.first().map_or(0, |c| c.stats.rows_out);
        let build_rows = if frame.children.len() == 2 {
            frame.children[1].stats.rows_out
        } else {
            0
        };
        let own_io = subtree_io.saturating_sub(frame.child_io);
        let node = TraceNode {
            stats: OpStats {
                label: frame.label,
                rows_in,
                rows_out,
                build_rows,
                probe_rows,
                pages_read: own_io.pages_read,
                pool_hits: own_io.pool_hits,
                pool_misses: own_io.pool_misses,
                wall_micros: frame.start.elapsed().as_micros() as u64,
                interrupt_polls: subtree_polls.saturating_sub(frame.child_polls),
                spills: own_io.spills,
                spill_pages: own_io.spill_pages,
            },
            children: frame.children,
        };
        match st.stack.last_mut() {
            Some(parent) => {
                parent.child_polls += subtree_polls;
                parent.child_io.add(subtree_io);
                parent.children.push(node);
            }
            None => st.finished = Some(node),
        }
    }

    /// Takes the finished trace, if the root node has exited. Frames
    /// still open (an execution abandoned mid-tree) yield `None`.
    pub fn finish(&self) -> Option<QueryTrace> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let root = st.finished.take()?;
        Some(QueryTrace {
            total_wall_micros: root.stats.wall_micros,
            root,
        })
    }
}

/// A trace paired with the query text that produced it, as kept by the
/// runtime's recent-trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedQuery {
    /// The query's display form.
    pub query: String,
    /// The measured trace.
    pub trace: QueryTrace,
}

impl TracedQuery {
    /// Stable-key JSON: `{"query":"...","trace":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"query\":\"");
        for ch in self.query.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        out.push_str("\",\"trace\":");
        out.push_str(&self.trace.to_json());
        out.push('}');
        out
    }
}

/// A bounded ring of recent traces: pushing past capacity evicts the
/// oldest. Thread-safe; one ring serves a whole query service.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    entries: Mutex<VecDeque<TracedQuery>>,
    recorded: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `cap` traces (clamped to ≥ 1).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends a trace, evicting the oldest when full.
    pub fn push(&self, entry: TracedQuery) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut q = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(entry);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<TracedQuery> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Traces recorded over the ring's lifetime (evictions included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Currently retained count.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained traces as one JSON array, oldest first.
    pub fn to_json(&self) -> String {
        let entries = self.recent();
        let mut out = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: &str, rows: u64) -> TraceNode {
        TraceNode {
            stats: OpStats {
                label: label.into(),
                rows_out: rows,
                ..OpStats::default()
            },
            children: Vec::new(),
        }
    }

    #[test]
    fn collector_builds_a_nested_tree_with_attribution() {
        let c = TraceCollector::new();
        c.enter("join".into());
        {
            c.enter("scan A".into());
            c.note_poll();
            c.note_poll();
            c.exit(
                100,
                SubtreeIo {
                    pages_read: 10,
                    pool_hits: 7,
                    pool_misses: 3,
                    ..SubtreeIo::default()
                },
            );
            c.enter("scan B".into());
            c.note_poll();
            c.exit(40, SubtreeIo::pages(4));
        }
        c.note_poll(); // the join's own poll
        c.exit(
            60,
            SubtreeIo {
                pages_read: 20,
                pool_hits: 8,
                pool_misses: 3,
                spills: 2,
                spill_pages: 90,
            },
        );
        let trace = c.finish().expect("root exited");
        assert!(c.finish().is_none(), "finish consumes the trace");
        let root = &trace.root;
        assert_eq!(root.stats.label, "join");
        assert_eq!(root.stats.rows_out, 60);
        assert_eq!(root.stats.rows_in, 140);
        assert_eq!(root.stats.probe_rows, 100);
        assert_eq!(root.stats.build_rows, 40);
        assert_eq!(root.stats.pages_read, 6, "20 subtree - 14 from children");
        assert_eq!(root.stats.pool_hits, 1, "8 subtree - 7 from scan A");
        assert_eq!(root.stats.pool_misses, 0, "3 subtree - 3 from scan A");
        assert_eq!(root.stats.interrupt_polls, 1);
        assert_eq!(root.stats.spills, 2, "no child spilled; all its own");
        assert_eq!(root.stats.spill_pages, 90);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].stats.interrupt_polls, 2);
        assert_eq!(root.children[0].stats.pool_hits, 7);
        assert_eq!(root.children[0].stats.pool_misses, 3);
        assert_eq!(root.children[1].stats.pages_read, 4);
        assert_eq!(root.children[1].stats.pool_hits, 0);
        assert_eq!(trace.node_count(), 3);
        assert_eq!(trace.rows_out(), 60);
        assert_eq!(trace.total_wall_micros, root.stats.wall_micros);
    }

    #[test]
    fn abandoned_execution_yields_no_trace() {
        let c = TraceCollector::new();
        c.enter("join".into());
        c.enter("scan".into());
        c.exit(5, SubtreeIo::default());
        // The root never exits (simulates an interrupt unwinding past
        // the wrapper) — finish must not fabricate a partial tree.
        assert!(c.finish().is_none());
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let c = TraceCollector::new();
        c.exit(1, SubtreeIo::pages(1));
        assert!(c.finish().is_none());
    }

    #[test]
    fn json_round_trip_preserves_the_tree() {
        let trace = QueryTrace {
            total_wall_micros: 1234,
            root: TraceNode {
                stats: OpStats {
                    label: "HashJoin on \"E.did\" = D\\did".into(),
                    rows_in: 140,
                    rows_out: 60,
                    build_rows: 40,
                    probe_rows: 100,
                    pages_read: 6,
                    pool_hits: 5,
                    pool_misses: 1,
                    wall_micros: 1234,
                    interrupt_polls: 1,
                    spills: 1,
                    spill_pages: 44,
                },
                children: vec![leaf("SeqScan Emp AS E", 100), leaf("SeqScan Dept AS D", 40)],
            },
        };
        let json = trace.to_json();
        assert_eq!(QueryTrace::from_json(&json).unwrap(), trace);
    }

    #[test]
    fn from_json_accepts_any_key_order() {
        let json = concat!(
            "{\"root\":{\"children\":[],\"spill_pages\":11,\"spills\":10,",
            "\"op\":\"x\",\"interrupt_polls\":7,",
            "\"wall_micros\":6,\"pool_misses\":9,\"pool_hits\":8,",
            "\"pages_read\":5,\"probe_rows\":4,\"build_rows\":3,",
            "\"rows_out\":2,\"rows_in\":1},\"total_wall_micros\":6}"
        );
        let t = QueryTrace::from_json(json).unwrap();
        assert_eq!(t.root.stats.rows_in, 1);
        assert_eq!(t.root.stats.pool_hits, 8);
        assert_eq!(t.root.stats.pool_misses, 9);
        assert_eq!(t.root.stats.interrupt_polls, 7);
        assert_eq!(t.root.stats.spills, 10);
        assert_eq!(t.root.stats.spill_pages, 11);
    }

    #[test]
    fn strict_parser_rejects_typed() {
        let good = QueryTrace {
            total_wall_micros: 0,
            root: leaf("x", 1),
        }
        .to_json();
        // Truncations are typed, never panics.
        for cut in 0..good.len() {
            assert!(QueryTrace::from_json(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing bytes.
        assert_eq!(
            QueryTrace::from_json(&format!("{good}x")),
            Err(TraceError::TrailingBytes(1))
        );
        // Duplicate key.
        let dup = good.replace("\"rows_in\":0", "\"rows_in\":0,\"rows_in\":0");
        assert_eq!(
            QueryTrace::from_json(&dup),
            Err(TraceError::DuplicateKey("rows_in".into()))
        );
        // Unknown key.
        let unk = good.replace("\"rows_in\"", "\"rows_zin\"");
        assert_eq!(
            QueryTrace::from_json(&unk),
            Err(TraceError::UnknownKey("rows_zin".into()))
        );
        // Missing key.
        let miss = good.replace(",\"rows_out\":1", "");
        assert_eq!(
            QueryTrace::from_json(&miss),
            Err(TraceError::MissingKey("rows_out"))
        );
        // Bad numbers: signs, leading zeros, overflow.
        for bad in ["-1", "01", "99999999999999999999999999"] {
            let j = good.replace("\"rows_in\":0", &format!("\"rows_in\":{bad}"));
            assert_eq!(QueryTrace::from_json(&j), Err(TraceError::BadNumber));
        }
        // Bad escape.
        let esc = good.replace("\"op\":\"x\"", "\"op\":\"\\n\"");
        assert_eq!(QueryTrace::from_json(&esc), Err(TraceError::BadEscape));
    }

    #[test]
    fn depth_bomb_is_too_deep_not_a_stack_overflow() {
        let mut t = leaf("deep", 0);
        for _ in 0..(MAX_TRACE_DEPTH + 8) {
            t = TraceNode {
                stats: OpStats {
                    label: "deep".into(),
                    ..OpStats::default()
                },
                children: vec![t],
            };
        }
        let json = QueryTrace {
            total_wall_micros: 0,
            root: t,
        }
        .to_json();
        assert_eq!(QueryTrace::from_json(&json), Err(TraceError::TooDeep));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_lifetime() {
        let ring = TraceRing::new(2);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            ring.push(TracedQuery {
                query: format!("q{i}"),
                trace: QueryTrace {
                    total_wall_micros: i,
                    root: leaf("x", i),
                },
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 5);
        let kept: Vec<String> = ring.recent().into_iter().map(|t| t.query).collect();
        assert_eq!(kept, vec!["q3", "q4"]);
        let json = ring.to_json();
        assert!(json.starts_with("[{\"query\":\"q3\""));
        assert!(json.ends_with("}]"));
    }

    #[test]
    fn traced_query_json_escapes_the_query_text() {
        let t = TracedQuery {
            query: "say \"hi\" \\ bye".into(),
            trace: QueryTrace {
                total_wall_micros: 0,
                root: leaf("x", 0),
            },
        };
        assert!(t
            .to_json()
            .starts_with("{\"query\":\"say \\\"hi\\\" \\\\ bye\""));
    }
}
