//! # fj-udf
//!
//! User-defined relations (§5.2): functions exposed as relations, plus
//! the execution strategies of Figure 6's last column — repeated
//! procedure invocation, **function caching (memoing)**, and
//! **consecutive procedure calls** driven by a filter set.
//!
//! > "User-defined functions and methods are special cases of virtual
//! > relations that contain a single tuple for each specific set of
//! > argument values. ... [With a Filter Join] there will be no
//! > duplicate function invocations, because of the elimination of
//! > duplicates in the filter set."
//!
//! The crate provides:
//!
//! * [`TableFunction`] — a UDF relation wrapping a Rust closure, with a
//!   declared invocation cost and optional finite domain;
//! * [`MemoUdf`] — the *function caching* wrapper: memoizes results per
//!   argument tuple, so repeated probes with duplicate arguments pay
//!   the invocation cost once;
//! * [`CountingUdf`] — an instrumentation wrapper counting invocations
//!   (used by the U1 experiment to show the filter join's
//!   no-duplicate-invocation property).

pub mod function;
pub mod memo;

pub use function::{CountingUdf, TableFunction};
pub use memo::MemoUdf;
