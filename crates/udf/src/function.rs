//! Closure-backed user-defined relations.

use fj_algebra::UdfRelation;
use fj_storage::{CostLedger, SchemaRef, Tuple, Value, TUPLE_OPS_PER_PAGE};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The closure type evaluating a UDF: arguments in, result-column rows
/// out (each inner `Vec<Value>` holds only the *result* columns — the
/// relation prepends the arguments).
pub type UdfBody = dyn Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync;

/// A user-defined relation backed by a Rust closure.
pub struct TableFunction {
    name: String,
    schema: SchemaRef,
    arg_count: usize,
    invocation_cost: f64,
    rows_per_call: f64,
    domain: Option<Vec<Vec<Value>>>,
    body: Arc<UdfBody>,
}

impl TableFunction {
    /// Builds a table function.
    ///
    /// * `schema`: argument columns first, then result columns;
    /// * `arg_count`: how many leading columns are arguments;
    /// * `invocation_cost`: page-unit cost per call (charged as tuple
    ///   ops at runtime via the workspace `TUPLE_OPS_PER_PAGE`
    ///   convention);
    /// * `body`: computes result columns from argument values.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        arg_count: usize,
        invocation_cost: f64,
        body: impl Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync + 'static,
    ) -> TableFunction {
        assert!(
            arg_count <= schema.arity(),
            "arg_count exceeds schema arity"
        );
        TableFunction {
            name: name.into(),
            schema,
            arg_count,
            invocation_cost: invocation_cost.max(0.0),
            rows_per_call: 1.0,
            domain: None,
            body: Arc::new(body),
        }
    }

    /// Declares a finite argument domain, enabling full enumeration.
    pub fn with_domain(mut self, domain: Vec<Vec<Value>>) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Declares the expected result rows per invocation (estimation
    /// hint; default 1).
    pub fn with_rows_per_call(mut self, rows: f64) -> Self {
        self.rows_per_call = rows.max(0.0);
        self
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for TableFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TableFunction")
            .field("name", &self.name)
            .field("arg_count", &self.arg_count)
            .field("invocation_cost", &self.invocation_cost)
            .field("domain_size", &self.domain.as_ref().map(Vec::len))
            .finish()
    }
}

impl UdfRelation for TableFunction {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn arg_count(&self) -> usize {
        self.arg_count
    }

    fn invoke(&self, args: &[Value], ledger: &CostLedger) -> Vec<Tuple> {
        ledger.udf_call();
        ledger.tuple_ops((self.invocation_cost * TUPLE_OPS_PER_PAGE as f64).round() as u64);
        (self.body)(args)
            .into_iter()
            .map(|results| {
                let mut vals = args.to_vec();
                vals.extend(results);
                Tuple::new(vals)
            })
            .collect()
    }

    fn invocation_cost(&self) -> f64 {
        self.invocation_cost
    }

    fn rows_per_call(&self) -> f64 {
        self.rows_per_call
    }

    fn domain(&self) -> Option<Vec<Vec<Value>>> {
        self.domain.clone()
    }
}

/// Instrumentation wrapper counting *actual* invocations of an inner
/// UDF relation. Used to verify the paper's claim that a filter join
/// performs no duplicate invocations.
#[derive(Debug)]
pub struct CountingUdf<U: UdfRelation> {
    inner: U,
    calls: AtomicU64,
}

impl<U: UdfRelation> CountingUdf<U> {
    /// Wraps `inner`.
    pub fn new(inner: U) -> CountingUdf<U> {
        CountingUdf {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Invocations observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<U: UdfRelation> UdfRelation for CountingUdf<U> {
    fn schema(&self) -> SchemaRef {
        self.inner.schema()
    }
    fn arg_count(&self) -> usize {
        self.inner.arg_count()
    }
    fn invoke(&self, args: &[Value], ledger: &CostLedger) -> Vec<Tuple> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.invoke(args, ledger)
    }
    fn invocation_cost(&self) -> f64 {
        self.inner.invocation_cost()
    }
    fn rows_per_call(&self) -> f64 {
        self.inner.rows_per_call()
    }
    fn domain(&self) -> Option<Vec<Vec<Value>>> {
        self.inner.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{DataType, Schema};

    /// distance(city) -> miles: a 1-arg function with a 3-city domain.
    pub(crate) fn distance_fn() -> TableFunction {
        let schema =
            Schema::from_pairs(&[("city", DataType::Str), ("miles", DataType::Int)]).into_ref();
        TableFunction::new("distance", schema, 1, 2.0, |args| {
            let miles = match args[0].as_str() {
                Some("madison") => 0,
                Some("chicago") => 147,
                Some("seattle") => 1996,
                _ => return vec![],
            };
            vec![vec![Value::Int(miles)]]
        })
        .with_domain(vec![
            vec![Value::Str("madison".into())],
            vec![Value::Str("chicago".into())],
            vec![Value::Str("seattle".into())],
        ])
    }

    #[test]
    fn invoke_prepends_args_and_charges() {
        let f = distance_fn();
        let ledger = CostLedger::new();
        let rows = f.invoke(&[Value::Str("chicago".into())], &ledger);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value(0), &Value::Str("chicago".into()));
        assert_eq!(rows[0].value(1), &Value::Int(147));
        let s = ledger.snapshot();
        assert_eq!(s.udf_calls, 1);
        assert_eq!(s.tuple_ops, 200, "2.0 pages × 100 ops/page");
    }

    #[test]
    fn unknown_arg_yields_no_rows() {
        let f = distance_fn();
        let ledger = CostLedger::new();
        assert!(f
            .invoke(&[Value::Str("unknown".into())], &ledger)
            .is_empty());
        assert_eq!(ledger.snapshot().udf_calls, 1, "invocation still paid");
    }

    #[test]
    fn domain_enumeration() {
        let f = distance_fn();
        assert_eq!(f.domain().unwrap().len(), 3);
        assert_eq!(f.arg_count(), 1);
        assert_eq!(f.schema().arity(), 2);
    }

    #[test]
    fn counting_wrapper_counts() {
        let f = CountingUdf::new(distance_fn());
        let ledger = CostLedger::new();
        f.invoke(&[Value::Str("madison".into())], &ledger);
        f.invoke(&[Value::Str("madison".into())], &ledger);
        assert_eq!(f.calls(), 2);
        assert_eq!(f.invocation_cost(), 2.0);
    }

    #[test]
    #[should_panic(expected = "arg_count exceeds schema arity")]
    fn bad_arg_count_panics() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).into_ref();
        let _ = TableFunction::new("bad", schema, 2, 1.0, |_| vec![]);
    }
}
