//! Function caching ("memoing", \[HS93\] in the paper's Figure 6):
//! repeated invocations with the same arguments pay the invocation cost
//! once.

use fj_algebra::UdfRelation;
use fj_storage::{CostLedger, SchemaRef, Tuple, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoizing wrapper around any [`UdfRelation`].
///
/// The cache is keyed by the full argument tuple. Cache *hits* charge
/// one tuple op (a hash lookup); *misses* delegate to the inner
/// relation (which charges its invocation cost).
#[derive(Debug)]
pub struct MemoUdf<U: UdfRelation> {
    inner: U,
    cache: Mutex<HashMap<Vec<Value>, Arc<Vec<Tuple>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<U: UdfRelation> MemoUdf<U> {
    /// Wraps `inner` with an unbounded memo cache.
    pub fn new(inner: U) -> MemoUdf<U> {
        MemoUdf {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed (= real invocations performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct argument tuples cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drops all cached entries.
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

impl<U: UdfRelation> UdfRelation for MemoUdf<U> {
    fn schema(&self) -> SchemaRef {
        self.inner.schema()
    }

    fn arg_count(&self) -> usize {
        self.inner.arg_count()
    }

    fn invoke(&self, args: &[Value], ledger: &CostLedger) -> Vec<Tuple> {
        if let Some(cached) = self.cache.lock().get(args) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ledger.tuple_ops(1);
            return cached.as_ref().clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let rows = self.inner.invoke(args, ledger);
        self.cache
            .lock()
            .insert(args.to_vec(), Arc::new(rows.clone()));
        rows
    }

    fn invocation_cost(&self) -> f64 {
        // Costing still assumes a miss; the optimizer treats the cache
        // as a bonus rather than relying on hit rates it cannot know.
        self.inner.invocation_cost()
    }

    fn rows_per_call(&self) -> f64 {
        self.inner.rows_per_call()
    }

    fn domain(&self) -> Option<Vec<Vec<Value>>> {
        self.inner.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::TableFunction;
    use fj_storage::{DataType, Schema};

    fn square_fn() -> TableFunction {
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("sq", DataType::Int)]).into_ref();
        TableFunction::new("square", schema, 1, 1.0, |args| {
            let x = args[0].as_int().unwrap_or(0);
            vec![vec![Value::Int(x * x)]]
        })
    }

    #[test]
    fn duplicate_invocations_hit_cache() {
        let m = MemoUdf::new(square_fn());
        let ledger = CostLedger::new();
        for _ in 0..5 {
            let rows = m.invoke(&[Value::Int(3)], &ledger);
            assert_eq!(rows[0].value(1), &Value::Int(9));
        }
        assert_eq!(m.misses(), 1);
        assert_eq!(m.hits(), 4);
        // Only the miss paid the invocation cost.
        assert_eq!(ledger.snapshot().udf_calls, 1);
        assert_eq!(ledger.snapshot().tuple_ops, 100 + 4);
    }

    #[test]
    fn distinct_args_all_miss() {
        let m = MemoUdf::new(square_fn());
        let ledger = CostLedger::new();
        for i in 0..10 {
            m.invoke(&[Value::Int(i)], &ledger);
        }
        assert_eq!(m.misses(), 10);
        assert_eq!(m.hits(), 0);
        assert_eq!(m.cached_entries(), 10);
    }

    #[test]
    fn clear_resets_cache_but_not_counters() {
        let m = MemoUdf::new(square_fn());
        let ledger = CostLedger::new();
        m.invoke(&[Value::Int(1)], &ledger);
        m.clear();
        m.invoke(&[Value::Int(1)], &ledger);
        assert_eq!(m.misses(), 2);
        assert_eq!(m.cached_entries(), 1);
    }

    #[test]
    fn delegates_metadata() {
        let m = MemoUdf::new(square_fn());
        assert_eq!(m.arg_count(), 1);
        assert_eq!(m.invocation_cost(), 1.0);
        assert!(m.domain().is_none());
        assert_eq!(m.schema().arity(), 2);
    }
}
