//! Cancellation races against the hash-join kernel: a trip landing
//! mid-build or mid-probe surfaces as the typed `Interrupted` error,
//! the partially built state is dropped, and the shared cost ledger
//! still reconciles — an interrupted run never over-charges, and a
//! clean run afterwards on the same ledger charges exactly what an
//! undisturbed run charges.

use fj_algebra::{Catalog, JoinKind};
use fj_exec::physical::Rel;
use fj_exec::{ops, ExecCtx, ExecError, Interrupt, InterruptReason};
use fj_storage::{Column, DataType, LedgerSnapshot, Schema, Tuple, Value};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn rel(prefix: &str, n: usize) -> Rel {
    let schema = Schema::new(vec![
        Column::new(format!("{prefix}.k"), DataType::Int),
        Column::new(format!("{prefix}.v"), DataType::Int),
    ])
    .expect("distinct names")
    .into_ref();
    Rel::new(
        schema,
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int((i % 8) as i64), Value::Int(i as i64)]))
            .collect(),
    )
}

fn keys() -> Vec<(String, String)> {
    vec![("L.k".to_string(), "R.k".to_string())]
}

/// Runs the join cleanly once and returns (rows, ledger delta).
fn clean_run(outer_n: usize, inner_n: usize) -> (usize, LedgerSnapshot) {
    let ctx = ExecCtx::new(Arc::new(Catalog::new()));
    let before = ctx.ledger.snapshot();
    let out = ops::joins::hash_join(
        &ctx,
        rel("L", outer_n),
        rel("R", inner_n),
        &keys(),
        None,
        JoinKind::Inner,
    )
    .expect("clean join");
    (out.rows.len(), ctx.ledger.snapshot().delta(&before))
}

/// Retries until a concurrently-tripped cancel actually lands inside
/// the join (sized so the trip falls in the phase under test), then
/// checks the interrupted run's ledger delta against a clean run's.
fn cancel_race(outer_n: usize, inner_n: usize, phase: &str) {
    let (clean_rows, clean_delta) = clean_run(outer_n, inner_n);
    // The clean charge schedule is deterministic: same join, same delta.
    let (again_rows, again_delta) = clean_run(outer_n, inner_n);
    assert_eq!(clean_rows, again_rows);
    assert_eq!(clean_delta, again_delta);

    for attempt in 0..64 {
        let interrupt = Interrupt::new();
        let ctx = ExecCtx::new(Arc::new(Catalog::new())).with_interrupt(interrupt.clone());
        let before = ctx.ledger.snapshot();
        let tripper = {
            let interrupt = interrupt.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_micros(500));
                interrupt.trip(InterruptReason::Cancelled);
            })
        };
        let outcome = ops::joins::hash_join(
            &ctx,
            rel("L", outer_n),
            rel("R", inner_n),
            &keys(),
            None,
            JoinKind::Inner,
        );
        tripper.join().expect("tripper thread");
        match outcome {
            Err(ExecError::Interrupted(InterruptReason::Cancelled)) => {
                // Partial state dropped; the interrupted run never
                // charges more than the full run would have.
                let interrupted = ctx.ledger.snapshot().delta(&before);
                assert!(
                    interrupted.tuple_ops <= clean_delta.tuple_ops,
                    "{phase}: interrupted run over-charged ({} > {})",
                    interrupted.tuple_ops,
                    clean_delta.tuple_ops
                );
                // The ledger still reconciles: a clean re-run on the
                // SAME ledger adds exactly the clean delta — the
                // aborted join left nothing behind that skews charges.
                let mid = ctx.ledger.snapshot();
                let mut redo_ctx = ExecCtx::new(Arc::new(Catalog::new()));
                redo_ctx.ledger = Arc::clone(&ctx.ledger);
                let redo = ops::joins::hash_join(
                    &redo_ctx,
                    rel("L", outer_n),
                    rel("R", inner_n),
                    &keys(),
                    None,
                    JoinKind::Inner,
                )
                .expect("clean run after cancellation");
                assert_eq!(redo.rows.len(), clean_rows, "{phase}: rows after cancel");
                assert_eq!(
                    ctx.ledger.snapshot().delta(&mid),
                    clean_delta,
                    "{phase}: post-cancel charges diverged from a clean run"
                );
                return;
            }
            Ok(out) => {
                // The join won the race; correct answer, full charges.
                assert_eq!(out.rows.len(), clean_rows, "{phase}: racing winner rows");
                assert_eq!(
                    ctx.ledger.snapshot().delta(&before),
                    clean_delta,
                    "{phase}: racing winner charges (attempt {attempt})"
                );
            }
            Err(other) => panic!("{phase}: unexpected error class: {other}"),
        }
    }
    panic!("{phase}: cancel never landed mid-join in 64 attempts");
}

/// Build side is enormous, probe side trivial: a trip landing inside
/// the join lands in the build loop.
#[test]
fn cancel_mid_build_drops_partial_state_and_ledger_reconciles() {
    cancel_race(16, 400_000, "mid-build");
}

/// Build side is tiny (hashed long before the trip fires), probe side
/// enormous: a trip landing inside the join lands in the probe loop.
#[test]
fn cancel_mid_probe_drops_partial_state_and_ledger_reconciles() {
    cancel_race(400_000, 16, "mid-probe");
}

/// A pre-tripped interrupt aborts at the first check — before the
/// kernel builds anything — and the reason is preserved verbatim.
#[test]
fn pre_tripped_interrupt_aborts_the_join_at_the_first_check() {
    let interrupt = Interrupt::new();
    interrupt.trip(InterruptReason::Deadline);
    let ctx = ExecCtx::new(Arc::new(Catalog::new())).with_interrupt(interrupt);
    let out = ops::joins::hash_join(
        &ctx,
        rel("L", 2_000),
        rel("R", 2_000),
        &keys(),
        None,
        JoinKind::Inner,
    );
    assert!(matches!(
        out,
        Err(ExecError::Interrupted(InterruptReason::Deadline))
    ));
}
