//! Property-based tests of the executor's operator algebra: all join
//! methods compute the same relation, semi-joins and Bloom probes obey
//! their containment laws, and sort/distinct/aggregate behave like
//! their set-theoretic definitions — on arbitrary data, including
//! duplicates, NULLs and empty inputs.

use fj_algebra::{Catalog, JoinKind};
use fj_exec::physical::{PhysPlan, Rel};
use fj_exec::{ops, ExecCtx, ExecError};
use fj_expr::{col, AggCall, AggFunc};
use fj_storage::{Column, DataType, FaultPlan, Schema, StorageError, TableBuilder, Tuple, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn ctx() -> ExecCtx {
    ExecCtx::new(Arc::new(Catalog::new()))
}

/// Optional ints become nullable key columns.
fn rel(prefix: &str, rows: &[(Option<i64>, i64)]) -> Rel {
    let schema = Schema::new(vec![
        Column::nullable(format!("{prefix}.k"), DataType::Int),
        Column::new(format!("{prefix}.v"), DataType::Int),
    ])
    .expect("distinct names")
    .into_ref();
    Rel::new(
        schema,
        rows.iter()
            .map(|(k, v)| {
                Tuple::new(vec![
                    k.map(Value::Int).unwrap_or(Value::Null),
                    Value::Int(*v),
                ])
            })
            .collect(),
    )
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Reference nested-loops join on the key column, SQL NULL semantics.
fn reference_join(l: &[(Option<i64>, i64)], r: &[(Option<i64>, i64)]) -> usize {
    l.iter()
        .map(|(lk, _)| match lk {
            None => 0,
            Some(lk) => r.iter().filter(|(rk, _)| *rk == Some(*lk)).count(),
        })
        .sum()
}

type Row = (Option<i64>, i64);
fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((prop::option::of(0i64..8), 0i64..100), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_join_methods_agree(l in rows_strategy(), r in rows_strategy()) {
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let pred = col("L.k").eq(col("R.k"));
        let nlj = ops::joins::block_nested_loops(
            &ctx(), rel("L", &l), rel("R", &r), Some(&pred), JoinKind::Inner).unwrap();
        let hj = ops::joins::hash_join(
            &ctx(), rel("L", &l), rel("R", &r), &keys, None, JoinKind::Inner).unwrap();
        let mj = ops::joins::merge_join(
            &ctx(), rel("L", &l), rel("R", &r), &keys, None).unwrap();
        let expected = reference_join(&l, &r);
        prop_assert_eq!(nlj.rows.len(), expected);
        prop_assert_eq!(sorted(hj.rows), sorted(nlj.rows.clone()));
        prop_assert_eq!(sorted(mj.rows), sorted(nlj.rows));
    }

    #[test]
    fn semi_join_variants_agree_and_contain(l in rows_strategy(), r in rows_strategy()) {
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let pred = col("L.k").eq(col("R.k"));
        let nlj = ops::joins::block_nested_loops(
            &ctx(), rel("L", &l), rel("R", &r), Some(&pred), JoinKind::Semi).unwrap();
        let hj = ops::joins::hash_join(
            &ctx(), rel("L", &l), rel("R", &r), &keys, None, JoinKind::Semi).unwrap();
        prop_assert_eq!(sorted(hj.rows.clone()), sorted(nlj.rows));
        // Semi output ⊆ outer, no duplicates beyond the outer's own.
        prop_assert!(hj.rows.len() <= l.len());
        // Every semi row's key appears in R.
        let r_keys: std::collections::HashSet<i64> =
            r.iter().filter_map(|(k, _)| *k).collect();
        for t in &hj.rows {
            let k = t.value(0).as_int().expect("nulls never match");
            prop_assert!(r_keys.contains(&k));
        }
    }

    #[test]
    fn bloom_probe_is_a_superset_of_the_semi_join(
        l in rows_strategy(), r in rows_strategy()
    ) {
        let c = ctx();
        let left = rel("L", &l);
        let bloom = ops::bloom::build_bloom(&c, &left, &["L.k".into()], 512, 4).unwrap();
        c.register_bloom("b", bloom);
        let probed = ops::bloom::bloom_probe(
            &c, rel("R", &r), "b", &["R.k".into()]).unwrap();
        // Exact semi-join of R against L's keys.
        let keys = vec![("R.k".to_string(), "L.k".to_string())];
        let exact = ops::joins::hash_join(
            &ctx(), rel("R", &r), rel("L", &l), &keys, None, JoinKind::Semi).unwrap();
        // No false negatives: every exact survivor also passes the Bloom.
        let probed_set: std::collections::HashSet<Tuple> =
            probed.rows.into_iter().collect();
        for t in &exact.rows {
            prop_assert!(probed_set.contains(t), "bloom dropped a true match {t}");
        }
    }

    #[test]
    fn sort_is_an_ordered_permutation(l in rows_strategy()) {
        let input = rel("L", &l);
        let before = sorted(input.rows.clone());
        let out = ops::sort::sort(&ctx(), input, &["L.k".into(), "L.v".into()]).unwrap();
        for w in out.rows.windows(2) {
            prop_assert!(w[0].key(&[0, 1]) <= w[1].key(&[0, 1]));
        }
        prop_assert_eq!(sorted(out.rows), before);
    }

    #[test]
    fn distinct_is_idempotent_and_minimal(l in rows_strategy()) {
        let once = ops::agg::distinct(&ctx(), rel("L", &l)).unwrap();
        let twice = ops::agg::distinct(&ctx(), Rel::new(once.schema.clone(), once.rows.clone()))
            .unwrap();
        prop_assert_eq!(&once.rows, &twice.rows);
        let unique: std::collections::HashSet<&Tuple> = once.rows.iter().collect();
        prop_assert_eq!(unique.len(), once.rows.len());
    }

    #[test]
    fn aggregate_groups_match_distinct_keys(l in rows_strategy()) {
        let agg = ops::agg::hash_aggregate(
            &ctx(),
            rel("L", &l),
            &["L.k".into()],
            &[AggCall::new(AggFunc::Sum, "L.v", "s"), AggCall::count_star("n")],
        )
        .unwrap();
        let distinct_keys: std::collections::HashSet<Option<i64>> =
            l.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(agg.rows.len(), distinct_keys.len());
        // COUNT(*) sums back to the input cardinality.
        let total: i64 = agg
            .rows
            .iter()
            .map(|t| t.value(2).as_int().expect("count is int"))
            .sum();
        prop_assert_eq!(total as usize, l.len());
    }

    #[test]
    fn filter_join_composition_equals_plain_join(
        l in rows_strategy(), r in rows_strategy()
    ) {
        // Local semi-join composition: distinct(π_k L) ⋉ R, then L ⋈ R'
        // must equal L ⋈ R.
        let c = ctx();
        let filter = ops::agg::distinct(
            &c,
            ops::filter::project(&c, rel("L", &l), &[(col("L.k"), "k0".into())]).unwrap(),
        )
        .unwrap();
        let restricted = ops::joins::hash_join(
            &c,
            rel("R", &r),
            filter,
            &[("R.k".to_string(), "k0".to_string())],
            None,
            JoinKind::Semi,
        )
        .unwrap();
        let via_filter = ops::joins::hash_join(
            &c,
            rel("L", &l),
            restricted,
            &[("L.k".to_string(), "R.k".to_string())],
            None,
            JoinKind::Inner,
        )
        .unwrap();
        prop_assert_eq!(via_filter.rows.len(), reference_join(&l, &r));
    }

    #[test]
    fn seeded_fault_plans_yield_typed_errors_never_wrong_rows(
        l in rows_strategy(),
        seed in 0u64..u64::MAX,
        error_one_in in 0u64..4,
        stall_one_in in 0u64..4,
    ) {
        // Any seeded fault plan either leaves the answer untouched or
        // surfaces as the typed injected-fault error — never a panic,
        // never silently wrong rows.
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("T")
                .column("k", DataType::Int)
                .column("v", DataType::Int)
                .rows(l.iter().map(|(k, v)| vec![k.unwrap_or(0).into(), (*v).into()]))
                .build()
                .unwrap()
                .into_ref(),
        );
        let cat = Arc::new(cat);
        let plan = PhysPlan::SeqScan { table: "T".into(), alias: "T".into() };
        let clean = plan.execute(&ExecCtx::new(Arc::clone(&cat))).unwrap();

        let mut faults = FaultPlan::new(seed);
        if error_one_in > 0 {
            faults = faults.with_read_errors(error_one_in);
        }
        if stall_one_in > 0 {
            faults = faults.with_stalls(stall_one_in, std::time::Duration::from_micros(10));
        }
        let ctx = ExecCtx::new(cat).with_faults(Arc::new(faults));
        match plan.execute(&ctx) {
            Ok(rel) => prop_assert_eq!(rel.rows, clean.rows.clone()),
            Err(ExecError::Storage(StorageError::InjectedFault { .. })) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}
