//! # fj-exec
//!
//! The execution engine: Volcano-style physical operators over the
//! paged storage layer, with deterministic cost accounting.
//!
//! The crate provides:
//!
//! * [`context::ExecCtx`] — catalog + cost ledger + temp-table registry
//!   (the runtime home of materialized production sets and filter sets)
//!   + the buffer-memory parameter that drives join/sort I/O formulas;
//! * [`physical::PhysPlan`] — the physical algebra, including every join
//!   method of Figure 6's rows: **repeated probe** (index nested loops,
//!   UDF probing with and without caching), **full computation** (block
//!   nested loops, hash join, sort-merge), the **filter join** (semi-join
//!   restriction by a distinct filter set), and the **lossy filter**
//!   (Bloom); plus `Ship` for crossing sites in a distributed plan;
//! * [`lower`] — a heuristic (rule-based) lowering of logical plans with
//!   predicate pushdown and hash-join detection, used to execute view
//!   bodies and magic-rewritten plans directly; the cost-based System-R
//!   planner in `fj-optimizer` emits `PhysPlan`s itself.
//!
//! The engine executes in memory but charges the
//! [`fj_storage::CostLedger`] exactly the page I/Os the System-R cost
//! formulas prescribe (e.g. a block-nested-loops join really charges
//! `P_outer + ⌈P_outer/(M−2)⌉·P_inner`), so measured ledger costs are
//! directly comparable with the optimizer's predictions.

pub mod broker;
pub mod context;
pub mod error;
pub mod interrupt;
pub mod lower;
pub mod ops;
pub mod physical;

pub use broker::{MemoryBroker, MemoryGrant};
pub use context::{
    ExecCtx, PoolProbe, SpillCtx, SpillSnapshot, SpillStats, TempTable, DEFAULT_SPILL_MAX_DEPTH,
};
pub use error::ExecError;
pub use interrupt::{Interrupt, InterruptReason, INTERRUPT_CHECK_INTERVAL};
pub use physical::{PhysPlan, TempStep};
