//! Execution errors.

use crate::interrupt::InterruptReason;
use fj_algebra::AlgebraError;
use fj_expr::ExprError;
use fj_storage::StorageError;
use std::fmt;

/// Errors raised while building or running physical plans.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Plan references something missing at runtime (temp table, bloom
    /// filter, index).
    MissingRuntimeObject(String),
    /// Propagated algebra error (schema/catalog problems).
    Algebra(AlgebraError),
    /// Propagated expression error.
    Expr(ExprError),
    /// Propagated storage error.
    Storage(StorageError),
    /// A plan shape the executor cannot run (e.g. merge join over
    /// unsorted input without a sort).
    InvalidPhysicalPlan(String),
    /// A UDF relation was asked for full enumeration without a finite
    /// domain.
    UdfNotEnumerable(String),
    /// The query's interrupt flag tripped (cancellation, deadline, or
    /// a governor budget) and execution stopped cooperatively.
    Interrupted(InterruptReason),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingRuntimeObject(n) => write!(f, "missing runtime object '{n}'"),
            ExecError::Algebra(e) => write!(f, "{e}"),
            ExecError::Expr(e) => write!(f, "{e}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::InvalidPhysicalPlan(d) => write!(f, "invalid physical plan: {d}"),
            ExecError::UdfNotEnumerable(n) => {
                write!(f, "user-defined relation '{n}' has no finite domain")
            }
            ExecError::Interrupted(reason) => write!(f, "query interrupted: {reason}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}
impl From<ExprError> for ExecError {
    fn from(e: ExprError) -> Self {
        ExecError::Expr(e)
    }
}
impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ExecError::MissingRuntimeObject("__filter".into())
            .to_string()
            .contains("__filter"));
        assert!(ExecError::UdfNotEnumerable("dist".into())
            .to_string()
            .contains("finite domain"));
    }
}
