//! Intra-query parallelism helpers: contiguous chunking for parallel
//! scans and hash-partition routing for partitioned joins.
//!
//! Parallel operators must leave the cost model untouched: the ledger is
//! charged exactly the amounts the serial operator would charge (the
//! [`fj_storage::CostLedger`] is atomic, so workers can charge their
//! per-row shares concurrently and the totals still reconcile with the
//! System-R formulas). Parallelism changes wall-clock time only — never
//! measured cost, and never the output row *multiset*.

use fj_storage::Value;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Minimum input rows before an operator bothers fanning out; below
/// this, thread spawn overhead dwarfs the work.
pub const PARALLEL_ROW_THRESHOLD: usize = 1024;

/// Splits `len` items into at most `threads` contiguous, near-equal
/// ranges (never returns an empty range).
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let parts = threads.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f` over each contiguous chunk of `items` on its own scoped
/// thread, returning the per-chunk results in chunk order (so callers
/// that concatenate preserve the serial row order).
pub fn scoped_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let ranges = chunk_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        return vec![f(items)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let slice = &items[r];
                let f = &f;
                s.spawn(move || f(slice))
            })
            .collect();
        handles
            .into_iter()
            // Re-raise a chunk worker's panic with its original payload
            // so the runtime's catch_unwind reports the real cause.
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Routes a join key to one of `parts` hash partitions. Partitioning is
/// by key hash, so every row pair that could match lands in the same
/// partition and per-partition joins are independent.
pub fn route(key: &[Value], parts: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for (len, threads) in [(0, 4), (1, 4), (7, 3), (100, 8), (5, 1), (3, 16)] {
            let ranges = chunk_ranges(len, threads);
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous");
                assert!(!r.is_empty(), "no empty chunks");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, len, "len={len} threads={threads}");
            assert!(ranges.len() <= threads.max(1));
        }
    }

    #[test]
    fn scoped_chunks_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let chunks = scoped_chunks(&items, 4, |c| c.to_vec());
        assert_eq!(chunks.len(), 4);
        let flat: Vec<u64> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn route_is_stable_and_bounded() {
        let key = vec![Value::Int(42), Value::Str("x".into())];
        let p = route(&key, 7);
        assert_eq!(p, route(&key, 7));
        assert!(p < 7);
    }
}
