//! Spilling execution paths: grace hash join, external merge sort, and
//! the partition/read-back helpers shared with the spillable aggregate
//! and distinct.
//!
//! These paths run when a [`crate::context::SpillCtx`] is attached and
//! [`crate::ExecCtx::spill_decision`] says to degrade: either the state
//! to pin exceeds buffer memory `M` (the same trigger the cost model's
//! simulated grace/sort charges key on), or the service-wide
//! [`crate::broker::MemoryBroker`] denied the grant. They write
//! checksummed temp partition files through [`fj_storage::TempStore`],
//! poll the interrupt on every partition flush, and charge the ledger
//! the *physical* page I/O they perform — by the same
//! [`PageLayout`] accounting the optimizer's formulas use, so spill
//! charges reconcile with the simulated grace charges up to
//! per-partition ceiling fragmentation (asserted by the cost-parity
//! tests, documented in `DESIGN.md`).
//!
//! Frames are written one logical page at a time (`tuples_per_page`
//! rows per frame), which makes the ledger charge, the spill-stats
//! counters, and the temp store's byte counters all derive from the
//! same flush events.

use crate::context::{ExecCtx, SpillCtx};
use crate::error::ExecError;
use crate::interrupt::INTERRUPT_CHECK_INTERVAL;
use crate::ops::joins::hash_probe;
use crate::physical::Rel;
use fj_algebra::JoinKind;
use fj_expr::BoundExpr;
use fj_storage::{PageLayout, SpillFile, SpillReader, TempWriter, Tuple, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;

/// Cap on partition fanout, bounding open temp files per operator.
const MAX_FANOUT: usize = 32;

/// Partition fanout for the context's buffer memory: one buffer page
/// per output partition, one reserved for input — the classic grace
/// layout — bounded to keep file handles sane.
pub(crate) fn spill_fanout(ctx: &ExecCtx) -> usize {
    (ctx.memory_pages.saturating_sub(1) as usize).clamp(2, MAX_FANOUT)
}

/// Routes a key to a partition, salted by recursion depth so a skewed
/// partition re-splits on different boundaries at the next level.
pub(crate) fn route_salted(key: &[Value], depth: usize, fanout: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (depth as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .hash(&mut h);
    key.hash(&mut h);
    (h.finish() % fanout.max(1) as u64) as usize
}

fn flush_frame(
    ctx: &ExecCtx,
    writer: &mut TempWriter,
    pending: &mut Vec<Tuple>,
) -> Result<(), ExecError> {
    // The poll on every partition flush: a cancelled query stops
    // spilling within one page's worth of rows.
    ctx.check_interrupt()?;
    writer.write_rows(pending).map_err(ExecError::Storage)?;
    pending.clear();
    ctx.ledger.write_pages(1);
    ctx.spill_stats()
        .pages_written
        .fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Hash-partitions `rows` into `fanout` sealed temp files. `route`
/// returns `None` to drop a row (NULL join keys never match, so
/// spilling them is pointless). Charges one page write per flushed
/// frame.
pub(crate) fn partition_to_files(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    rows: Vec<Tuple>,
    layout: PageLayout,
    fanout: usize,
    route: impl Fn(&Tuple) -> Option<usize>,
) -> Result<Vec<SpillFile>, ExecError> {
    let batch = layout.tuples_per_page.max(1) as usize;
    let mut writers = Vec::with_capacity(fanout);
    let mut pending: Vec<Vec<Tuple>> = Vec::with_capacity(fanout);
    for _ in 0..fanout {
        writers.push(spill.temp.create_file().map_err(ExecError::Storage)?);
        pending.push(Vec::with_capacity(batch));
    }
    for t in rows {
        let Some(p) = route(&t) else { continue };
        pending[p].push(t);
        if pending[p].len() >= batch {
            flush_frame(ctx, &mut writers[p], &mut pending[p])?;
        }
    }
    let mut files = Vec::with_capacity(fanout);
    for (mut w, mut pend) in writers.into_iter().zip(pending) {
        if !pend.is_empty() {
            flush_frame(ctx, &mut w, &mut pend)?;
        }
        files.push(w.seal().map_err(ExecError::Storage)?);
    }
    ctx.spill_stats()
        .partitions
        .fetch_add(fanout as u64, Ordering::Relaxed);
    Ok(files)
}

/// Reads a sealed partition back into memory, charging one page read
/// per page it occupies.
pub(crate) fn read_spill(
    ctx: &ExecCtx,
    file: &SpillFile,
    layout: PageLayout,
) -> Result<Vec<Tuple>, ExecError> {
    ctx.check_interrupt()?;
    let rows = file.read_all().map_err(ExecError::Storage)?;
    let pages = layout.pages(rows.len() as u64);
    ctx.ledger.read_pages(pages);
    ctx.spill_stats()
        .pages_read
        .fetch_add(pages, Ordering::Relaxed);
    Ok(rows)
}

/// Physical grace hash join: partitions both inputs to temp files on
/// the join key, then probes partitionwise in memory, recursing (with a
/// re-salted hash) on partitions whose build side still exceeds buffer
/// memory, down to the configured depth bound. The output multiset is
/// identical to the in-memory join: partitions are disjoint by key
/// hash, and NULL keys (dropped at partitioning) never match anyway.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grace_hash_join(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    outer: Rel,
    inner: Rel,
    okeys: &[usize],
    ikeys: &[usize],
    pred: &Option<BoundExpr>,
    kind: JoinKind,
) -> Result<Vec<Tuple>, ExecError> {
    let olayout = PageLayout::for_schema(&outer.schema);
    let ilayout = PageLayout::for_schema(&inner.schema);
    grace_recurse(
        ctx, spill, outer.rows, inner.rows, olayout, ilayout, okeys, ikeys, pred, kind, 0,
    )
}

#[allow(clippy::too_many_arguments)]
fn grace_recurse(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    outer_rows: Vec<Tuple>,
    inner_rows: Vec<Tuple>,
    olayout: PageLayout,
    ilayout: PageLayout,
    okeys: &[usize],
    ikeys: &[usize],
    pred: &Option<BoundExpr>,
    kind: JoinKind,
    depth: usize,
) -> Result<Vec<Tuple>, ExecError> {
    ctx.spill_stats().spills.fetch_add(1, Ordering::Relaxed);
    let fanout = spill_fanout(ctx);
    let inner_files = partition_to_files(ctx, spill, inner_rows, ilayout, fanout, |t| {
        let key = t.key(ikeys);
        if key.iter().any(Value::is_null) {
            None
        } else {
            Some(route_salted(&key, depth, fanout))
        }
    })?;
    let outer_files = partition_to_files(ctx, spill, outer_rows, olayout, fanout, |t| {
        let key = t.key(okeys);
        if key.iter().any(Value::is_null) {
            None
        } else {
            Some(route_salted(&key, depth, fanout))
        }
    })?;

    let mut out = Vec::new();
    for (of, inf) in outer_files.iter().zip(&inner_files) {
        let ip = read_spill(ctx, inf, ilayout)?;
        let op = read_spill(ctx, of, olayout)?;
        let build_pages = ilayout.pages(ip.len() as u64);
        if build_pages > ctx.memory_pages && depth + 1 < spill.max_depth {
            // Skewed partition: re-split with a different salt. A
            // single-key partition can never split further — the depth
            // bound stops the recursion and the probe below absorbs it.
            out.extend(grace_recurse(
                ctx,
                spill,
                op,
                ip,
                olayout,
                ilayout,
                okeys,
                ikeys,
                pred,
                kind,
                depth + 1,
            )?);
        } else {
            // Best-effort grant for the in-memory probe of this
            // partition; a denial no longer changes the plan — the
            // inputs are already on disk and partition-sized.
            let _grant = spill.broker.try_reserve(build_pages);
            out.extend(hash_probe(ctx, &op, &ip, okeys, ikeys, pred, kind)?);
        }
    }
    Ok(out)
}

/// External merge sort over a whole relation.
pub(crate) fn external_sort(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    input: Rel,
    key_idx: &[usize],
) -> Result<Rel, ExecError> {
    let layout = PageLayout::for_schema(&input.schema);
    let rows = external_sort_rows(ctx, spill, layout, input.rows, key_idx)?;
    Ok(Rel::new(input.schema, rows))
}

/// External merge sort: memory-sized sorted runs spilled to temp files,
/// merged `M−1` ways per pass, with the final pass streaming straight
/// into the output vector. Runs are formed from consecutive input
/// chunks and ties merge lowest-run-first, which reproduces the stable
/// in-memory `sort_by_key` order byte-for-byte — so interesting orders
/// (and secondary orderings under equal keys) are preserved exactly.
pub(crate) fn external_sort_rows(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    layout: PageLayout,
    rows: Vec<Tuple>,
    key_idx: &[usize],
) -> Result<Vec<Tuple>, ExecError> {
    if rows.is_empty() {
        return Ok(rows);
    }
    ctx.spill_stats().spills.fetch_add(1, Ordering::Relaxed);
    let run_rows = (ctx.memory_pages * layout.tuples_per_page).max(1) as usize;

    let mut runs: Vec<SpillFile> = Vec::new();
    for chunk in rows.chunks(run_rows) {
        let mut run = chunk.to_vec();
        run.sort_by_key(|a| a.key(key_idx));
        runs.push(write_run(ctx, spill, layout, &run)?);
    }
    drop(rows);

    let fan_in = (ctx.memory_pages.saturating_sub(1) as usize).max(2);
    while runs.len() > fan_in {
        let mut next = Vec::with_capacity(runs.len().div_ceil(fan_in));
        let mut iter = runs.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<SpillFile> = iter.by_ref().take(fan_in).collect();
            next.push(merge_to_file(ctx, spill, layout, &group, key_idx)?);
        }
        runs = next;
    }

    let mut out = Vec::new();
    merge_runs(ctx, &runs, key_idx, |t| {
        out.push(t);
        Ok(())
    })?;
    Ok(out)
}

/// Writes one sorted run, a page-sized frame at a time.
fn write_run(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    layout: PageLayout,
    run: &[Tuple],
) -> Result<SpillFile, ExecError> {
    let batch = layout.tuples_per_page.max(1) as usize;
    let mut w = spill.temp.create_file().map_err(ExecError::Storage)?;
    for chunk in run.chunks(batch) {
        let mut pending = chunk.to_vec();
        flush_frame(ctx, &mut w, &mut pending)?;
    }
    ctx.spill_stats().partitions.fetch_add(1, Ordering::Relaxed);
    w.seal().map_err(ExecError::Storage)
}

/// One merge pass over a group of runs, spilling the merged run back.
fn merge_to_file(
    ctx: &ExecCtx,
    spill: &SpillCtx,
    layout: PageLayout,
    group: &[SpillFile],
    key_idx: &[usize],
) -> Result<SpillFile, ExecError> {
    let batch = layout.tuples_per_page.max(1) as usize;
    let mut w = spill.temp.create_file().map_err(ExecError::Storage)?;
    let mut pending: Vec<Tuple> = Vec::with_capacity(batch);
    merge_runs(ctx, group, key_idx, |t| {
        pending.push(t);
        if pending.len() >= batch {
            flush_frame(ctx, &mut w, &mut pending)?;
        }
        Ok(())
    })?;
    if !pending.is_empty() {
        flush_frame(ctx, &mut w, &mut pending)?;
    }
    ctx.spill_stats().partitions.fetch_add(1, Ordering::Relaxed);
    w.seal().map_err(ExecError::Storage)
}

/// A streaming cursor over one run's frames (one page per frame).
struct RunCursor {
    reader: SpillReader,
    batch: std::vec::IntoIter<Tuple>,
}

impl RunCursor {
    fn next(&mut self, ctx: &ExecCtx) -> Result<Option<Tuple>, ExecError> {
        loop {
            if let Some(t) = self.batch.next() {
                return Ok(Some(t));
            }
            ctx.check_interrupt()?;
            match self.reader.next_batch().map_err(ExecError::Storage)? {
                Some(b) => {
                    ctx.ledger.read_pages(1);
                    ctx.spill_stats().pages_read.fetch_add(1, Ordering::Relaxed);
                    self.batch = b.into_iter();
                }
                None => return Ok(None),
            }
        }
    }
}

/// K-way merge of sorted runs into `emit`, stable across runs: ties
/// surface lowest run index first.
fn merge_runs(
    ctx: &ExecCtx,
    runs: &[SpillFile],
    key_idx: &[usize],
    mut emit: impl FnMut(Tuple) -> Result<(), ExecError>,
) -> Result<(), ExecError> {
    let mut cursors = Vec::with_capacity(runs.len());
    for f in runs {
        cursors.push(RunCursor {
            reader: f.reader().map_err(ExecError::Storage)?,
            batch: Vec::new().into_iter(),
        });
    }
    let mut heads: Vec<Option<Tuple>> = Vec::with_capacity(cursors.len());
    let mut heap: BinaryHeap<Reverse<(Vec<Value>, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        let head = c.next(ctx)?;
        if let Some(t) = &head {
            heap.push(Reverse((t.key(key_idx), i)));
        }
        heads.push(head);
    }
    let mut since_check = 0usize;
    while let Some(Reverse((_, i))) = heap.pop() {
        since_check += 1;
        if since_check >= INTERRUPT_CHECK_INTERVAL {
            since_check = 0;
            ctx.check_interrupt()?;
        }
        let t = heads[i].take().expect("heap entry implies a live head");
        emit(t)?;
        let head = cursors[i].next(ctx)?;
        if let Some(t) = &head {
            heap.push(Reverse((t.key(key_idx), i)));
        }
        heads[i] = head;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::MemoryBroker;
    use crate::context::SpillCtx;
    use crate::interrupt::InterruptReason;
    use crate::ops::sort::merge_passes;
    use crate::ops::{agg, joins, sort as sort_op};
    use fj_algebra::Catalog;
    use fj_expr::{AggCall, AggFunc};
    use fj_storage::{tuple, DataType, Schema, TempStore};
    use std::sync::Arc;

    fn base_ctx(m: u64) -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new())).with_memory_pages(m)
    }

    fn spilling_ctx(m: u64, watermark: u64) -> (ExecCtx, Arc<TempStore>) {
        let temp = Arc::new(TempStore::open_scratch().unwrap());
        let broker = MemoryBroker::new(watermark);
        let c = base_ctx(m).with_spill(SpillCtx::new(Arc::clone(&temp), broker));
        (c, temp)
    }

    fn left(n: i64) -> Rel {
        Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int), ("L.v", DataType::Int)]).into_ref(),
            (0..n).map(|i| tuple![i % 50, i]).collect(),
        )
    }

    fn right(n: i64) -> Rel {
        Rel::new(
            Schema::from_pairs(&[("R.k", DataType::Int), ("R.w", DataType::Int)]).into_ref(),
            (0..n).map(|i| tuple![i % 50, -i]).collect(),
        )
    }

    fn join_keys() -> Vec<(String, String)> {
        vec![("L.k".to_string(), "R.k".to_string())]
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    #[test]
    fn grace_join_matches_oracle_and_reconciles_charges() {
        let oracle = joins::hash_join(
            &base_ctx(128),
            left(1200),
            right(1200),
            &join_keys(),
            None,
            JoinKind::Inner,
        )
        .unwrap();

        let (c, temp) = spilling_ctx(5, 1 << 20);
        let (l, r) = (left(1200), right(1200));
        let p_sim = l.page_count() + r.page_count();
        assert!(r.page_count() > 5, "test needs an over-memory build side");
        let before = c.ledger.snapshot();
        let spilled = joins::hash_join(&c, l, r, &join_keys(), None, JoinKind::Inner).unwrap();
        assert_eq!(sorted(spilled.rows), sorted(oracle.rows));

        // Cost parity: the ledger was charged exactly the physical temp
        // I/O, everything written was read back, and the physical total
        // exceeds the simulated grace pass only by per-partition
        // ceiling fragmentation (< 2 sides × fanout partial pages).
        let d = c.ledger.snapshot().delta(&before);
        let snap = c.spill_snapshot();
        assert!(snap.spills >= 1);
        assert_eq!(d.page_writes, snap.pages_written);
        assert_eq!(d.page_reads, snap.pages_read);
        assert_eq!(snap.pages_read, snap.pages_written);
        let fanout = spill_fanout(&c) as u64;
        assert!(snap.pages_written >= p_sim);
        assert!(snap.pages_written < p_sim + 2 * fanout);

        // RAII: every partition file was deleted as its SpillFile dropped.
        let stats = temp.stats();
        assert!(stats.files_created > 0);
        assert_eq!(stats.files_deleted, stats.files_created);
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn grace_join_recurses_on_tiny_memory_and_still_agrees() {
        let oracle = joins::hash_join(
            &base_ctx(128),
            left(2000),
            right(2000),
            &join_keys(),
            None,
            JoinKind::Inner,
        )
        .unwrap();
        let (c, temp) = spilling_ctx(3, 1 << 20);
        let spilled = joins::hash_join(
            &c,
            left(2000),
            right(2000),
            &join_keys(),
            None,
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(sorted(spilled.rows), sorted(oracle.rows));
        // Fanout 2 over >3-page partitions forces recursive re-partitioning.
        assert!(c.spill_snapshot().spills > 1, "expected recursion");
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn semi_join_spills_too() {
        let oracle = joins::hash_join(
            &base_ctx(128),
            left(1200),
            right(1200),
            &join_keys(),
            None,
            JoinKind::Semi,
        )
        .unwrap();
        let (c, _temp) = spilling_ctx(4, 1 << 20);
        let spilled = joins::hash_join(
            &c,
            left(1200),
            right(1200),
            &join_keys(),
            None,
            JoinKind::Semi,
        )
        .unwrap();
        assert_eq!(sorted(spilled.rows), sorted(oracle.rows));
        assert!(c.spill_snapshot().spills >= 1);
    }

    fn sort_input(n: i64) -> Rel {
        Rel::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).into_ref(),
            (0..n).map(|i| tuple![(n - i) % 53, i]).collect(),
        )
    }

    #[test]
    fn external_sort_is_byte_identical_to_stable_in_memory_sort() {
        let oracle = sort_op::sort(&base_ctx(128), sort_input(9600), &["a".into()]).unwrap();
        let (c, temp) = spilling_ctx(4, 1 << 20);
        let input = sort_input(9600);
        let pages = input.page_count();
        assert!(pages > 4);
        let before = c.ledger.snapshot();
        let spilled = sort_op::sort(&c, input, &["a".into()]).unwrap();
        // Exact row-vector equality: equal keys keep their input order,
        // so the merge reproduces the stable in-memory sort exactly.
        assert_eq!(spilled.rows, oracle.rows);

        // Cost parity with the simulated formula 2P·(1+passes): the
        // physical sort writes P pages per pass (run formation plus
        // each intermediate merge) and reads back everything written —
        // P·passes each way. The missing P per direction is real: run
        // formation sorts rows already in memory, and the final merge
        // streams to the output without writing.
        let d = c.ledger.snapshot().delta(&before);
        let snap = c.spill_snapshot();
        let passes = merge_passes(pages, 4);
        assert!(passes > 1, "want at least one intermediate merge pass");
        assert_eq!(d.page_writes, pages * passes);
        assert_eq!(d.page_reads, pages * passes);
        assert_eq!(snap.pages_written, pages * passes);
        assert_eq!(snap.pages_read, pages * passes);
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn broker_denial_forces_spill_even_when_input_fits_memory() {
        let oracle = sort_op::sort(&base_ctx(128), sort_input(4800), &["a".into()]).unwrap();
        // Plenty of buffer memory, but a 1-page service watermark: the
        // broker denies the grant and the sort degrades to disk.
        let (c, temp) = spilling_ctx(128, 1);
        let input = sort_input(4800);
        let pages = input.page_count();
        let spilled = sort_op::sort(&c, input, &["a".into()]).unwrap();
        assert_eq!(spilled.rows, oracle.rows);
        let snap = c.spill_snapshot();
        assert_eq!(snap.spills, 1);
        // One memory-sized run (it fit), written and read back once.
        assert_eq!(snap.pages_written, pages);
        assert_eq!(snap.pages_read, pages);
        assert_eq!(c.spill_ctx().unwrap().broker.denials(), 1);
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn spilled_aggregate_and_distinct_match_oracle() {
        let aggs = [
            AggCall::count_star("n"),
            AggCall::new(AggFunc::Sum, "b", "s"),
        ];
        let oracle_agg =
            agg::hash_aggregate(&base_ctx(128), sort_input(9600), &["a".into()], &aggs).unwrap();
        let (c, temp) = spilling_ctx(4, 1 << 20);
        let spilled_agg = agg::hash_aggregate(&c, sort_input(9600), &["a".into()], &aggs).unwrap();
        assert_eq!(sorted(spilled_agg.rows), sorted(oracle_agg.rows));
        assert!(c.spill_snapshot().spills >= 1);

        let dup = |n: i64| {
            Rel::new(
                Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
                (0..n).map(|i| tuple![i % 500]).collect(),
            )
        };
        let oracle_d = agg::distinct(&base_ctx(128), dup(9600)).unwrap();
        let (c2, temp2) = spilling_ctx(4, 1 << 20);
        let spilled_d = agg::distinct(&c2, dup(9600)).unwrap();
        assert_eq!(sorted(spilled_d.rows), sorted(oracle_d.rows));
        assert!(c2.spill_snapshot().spills >= 1);
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
        assert_eq!(temp2.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn scalar_aggregate_never_spills() {
        let (c, _temp) = spilling_ctx(4, 1 << 20);
        let r =
            agg::hash_aggregate(&c, sort_input(9600), &[], &[AggCall::count_star("n")]).unwrap();
        assert_eq!(r.rows, vec![tuple![9600]]);
        assert_eq!(c.spill_snapshot().spills, 0);
    }

    #[test]
    fn query_dying_on_memory_budget_at_seed_succeeds_with_spilling() {
        // Seed behaviour: the simulated external sort materializes P
        // pages against the governor's budget and the query dies.
        let seed = base_ctx(4).with_memory_budget_pages(10);
        let err = sort_op::sort(&seed, sort_input(9600), &["a".into()]).unwrap_err();
        assert_eq!(err, ExecError::Interrupted(InterruptReason::MemoryBudget));

        // Same budget, spilling on: runs live on disk, not in the
        // memory budget, and the query completes with the oracle rows.
        let oracle = sort_op::sort(&base_ctx(128), sort_input(9600), &["a".into()]).unwrap();
        let temp = Arc::new(TempStore::open_scratch().unwrap());
        let c = base_ctx(4)
            .with_memory_budget_pages(10)
            .with_spill(SpillCtx::new(Arc::clone(&temp), MemoryBroker::new(1 << 20)));
        let r = sort_op::sort(&c, sort_input(9600), &["a".into()]).unwrap();
        assert_eq!(r.rows, oracle.rows);
    }

    #[test]
    fn cancellation_mid_spill_leaves_no_temp_files() {
        let (c, temp) = spilling_ctx(4, 1 << 20);
        c.interrupt.trip(InterruptReason::Cancelled);
        let err = sort_op::sort(&c, sort_input(9600), &["a".into()]).unwrap_err();
        assert_eq!(err, ExecError::Interrupted(InterruptReason::Cancelled));
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);

        let err = joins::hash_join(
            &c,
            left(1200),
            right(1200),
            &join_keys(),
            None,
            JoinKind::Inner,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Interrupted(InterruptReason::Cancelled));
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }

    #[test]
    fn merge_join_sorts_spill_when_governed() {
        let oracle =
            joins::merge_join(&base_ctx(128), left(1200), right(1200), &join_keys(), None).unwrap();
        let (c, temp) = spilling_ctx(4, 1 << 20);
        let spilled = joins::merge_join(&c, left(1200), right(1200), &join_keys(), None).unwrap();
        assert_eq!(sorted(spilled.rows), sorted(oracle.rows));
        assert!(c.spill_snapshot().spills >= 2, "both sides sort externally");
        assert_eq!(temp.live_files_on_disk().unwrap(), 0);
    }
}
