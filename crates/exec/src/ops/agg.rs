//! Hash-based duplicate elimination and aggregation.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::interrupt::INTERRUPT_CHECK_INTERVAL;
use crate::ops::sort::charge_external_sort;
use crate::physical::Rel;
use fj_expr::{Accumulator, AggCall};
use fj_storage::{Column, PageLayout, Schema, Tuple, Value};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Hash-based DISTINCT — the paper's `ProjCost_F` workhorse (the filter
/// set is a *distinct* projection of the production set).
///
/// Charges one tuple op per input row, plus external partitioning I/O
/// when the *output* (the hash table of distinct values) exceeds
/// memory — a streaming hash distinct only spills when its table does.
///
/// With memory governance enabled and an over-memory (or broker-denied)
/// input, degrades to hash partitioning on the whole row: each distinct
/// value lands in exactly one temp partition, so per-partition
/// deduplication yields the same distinct multiset, emitted
/// partition-major (duplicate elimination is order-agnostic).
pub fn distinct(ctx: &ExecCtx, input: Rel) -> Result<Rel, ExecError> {
    ctx.ledger.tuple_ops(input.rows.len() as u64);
    let _grant = match ctx.spill_decision(input.page_count()) {
        Some((true, _)) => {
            let spill = ctx.spill_ctx().expect("spill decision implies ctx").clone();
            ctx.spill_stats().spills.fetch_add(1, Ordering::Relaxed);
            let layout = PageLayout::for_schema(&input.schema);
            let fanout = super::spill::spill_fanout(ctx);
            let all_idx: Vec<usize> = (0..input.schema.arity()).collect();
            let files =
                super::spill::partition_to_files(ctx, &spill, input.rows, layout, fanout, |t| {
                    Some(super::spill::route_salted(&t.key(&all_idx), 0, fanout))
                })?;
            let mut rows = Vec::new();
            for f in &files {
                let part = super::spill::read_spill(ctx, f, layout)?;
                let mut seen = HashSet::with_capacity(part.len());
                for (n, t) in part.into_iter().enumerate() {
                    if n % INTERRUPT_CHECK_INTERVAL == 0 {
                        ctx.check_interrupt()?;
                    }
                    if seen.insert(t.clone()) {
                        rows.push(t);
                    }
                }
            }
            return Ok(Rel::new(input.schema, rows));
        }
        Some((false, grant)) => grant,
        None => None,
    };
    let mut seen = HashSet::with_capacity(input.rows.len());
    let mut rows = Vec::new();
    for (n, t) in input.rows.into_iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        if seen.insert(t.clone()) {
            rows.push(t);
        }
    }
    let out = Rel::new(input.schema, rows);
    charge_external_sort(ctx, out.page_count());
    Ok(out)
}

/// The in-memory grouping kernel shared by the one-shot aggregate and
/// each spilled partition: accumulates `rows` into per-group
/// accumulator rows, emitted in first-seen group order. Per-row tuple
/// ops are charged by the caller, once, over the full input.
fn accumulate_groups(
    ctx: &ExecCtx,
    rows: &[Tuple],
    group_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggs: &[AggCall],
) -> Result<Vec<Tuple>, ExecError> {
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // deterministic output order
    for (n, t) in rows.iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let key = t.key(group_idx);
        let accs = match groups.entry(key.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                order.push(key);
                e.insert(aggs.iter().map(|a| Accumulator::new(a.func)).collect())
            }
        };
        for (acc, idx) in accs.iter_mut().zip(agg_idx) {
            let v = match idx {
                Some(i) => t.value(*i).clone(),
                None => Value::Bool(true), // COUNT(*)
            };
            acc.update(&v)?;
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let accs = &groups[&key];
        let mut vals = key;
        vals.extend(accs.iter().map(Accumulator::finish));
        out.push(Tuple::new(vals));
    }
    Ok(out)
}

/// Hash aggregation over `group_by` columns.
///
/// Output schema: the grouping columns (names preserved) followed by one
/// column per aggregate call. A query with no grouping columns produces
/// exactly one row (SQL scalar-aggregate semantics, even on empty
/// input).
///
/// Charges `1 + #aggregates` tuple ops per input row (group-key hash
/// plus accumulator updates), plus external partitioning I/O when the
/// *output* (the group hash table) exceeds memory.
///
/// With memory governance enabled, a grouped aggregate whose input
/// exceeds buffer memory (or whose grant is denied) hash-partitions the
/// input on the group key to temp files; each group is then fully
/// contained in one partition, so partitionwise accumulation produces
/// the exact group multiset, emitted partition-major. Scalar aggregates
/// (one output row) never spill.
pub fn hash_aggregate(
    ctx: &ExecCtx,
    input: Rel,
    group_by: &[String],
    aggs: &[AggCall],
) -> Result<Rel, ExecError> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.resolve(g))
        .collect::<Result<_, _>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(c) => input.schema.resolve(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // Output schema.
    let mut cols = Vec::with_capacity(group_idx.len() + aggs.len());
    for &g in &group_idx {
        cols.push(input.schema.column(g).clone());
    }
    for (a, idx) in aggs.iter().zip(&agg_idx) {
        let input_ty = idx
            .map(|i| input.schema.column(i).data_type)
            .unwrap_or(fj_storage::DataType::Int);
        cols.push(Column::nullable(
            a.output.clone(),
            a.func.result_type(input_ty),
        ));
    }
    let schema = Arc::new(Schema::new(cols)?);

    ctx.ledger
        .tuple_ops(input.rows.len() as u64 * (1 + aggs.len()) as u64);

    let _grant = if group_idx.is_empty() {
        None
    } else {
        match ctx.spill_decision(input.page_count()) {
            Some((true, _)) => {
                let spill = ctx.spill_ctx().expect("spill decision implies ctx").clone();
                ctx.spill_stats().spills.fetch_add(1, Ordering::Relaxed);
                let layout = PageLayout::for_schema(&input.schema);
                let fanout = super::spill::spill_fanout(ctx);
                let gidx = group_idx.clone();
                let files = super::spill::partition_to_files(
                    ctx,
                    &spill,
                    input.rows,
                    layout,
                    fanout,
                    |t| Some(super::spill::route_salted(&t.key(&gidx), 0, fanout)),
                )?;
                let mut rows = Vec::new();
                for f in &files {
                    let part = super::spill::read_spill(ctx, f, layout)?;
                    rows.extend(accumulate_groups(ctx, &part, &group_idx, &agg_idx, aggs)?);
                }
                return Ok(Rel::new(schema, rows));
            }
            Some((false, grant)) => grant,
            None => None,
        }
    };

    let rows = accumulate_groups(ctx, &input.rows, &group_idx, &agg_idx, aggs)?;

    // Scalar aggregate over empty input: one row of empty-group values.
    if group_idx.is_empty() && rows.is_empty() {
        let vals: Vec<Value> = aggs
            .iter()
            .map(|a| Accumulator::new(a.func).finish())
            .collect();
        return Ok(Rel::new(schema, vec![Tuple::new(vals)]));
    }

    let out = Rel::new(schema, rows);
    charge_external_sort(ctx, out.page_count());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_expr::AggFunc;
    use fj_storage::{tuple, DataType};

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    fn emp() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("did", DataType::Int), ("sal", DataType::Double)]).into_ref(),
            vec![tuple![10, 1000.0], tuple![10, 3000.0], tuple![20, 5000.0]],
        )
    }

    #[test]
    fn distinct_removes_duplicates_keeps_order() {
        let rel = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
            vec![tuple![2], tuple![1], tuple![2], tuple![3], tuple![1]],
        );
        let r = distinct(&ctx(), rel).unwrap();
        assert_eq!(r.rows, vec![tuple![2], tuple![1], tuple![3]]);
    }

    #[test]
    fn group_by_avg_matches_paper_view() {
        let r = hash_aggregate(
            &ctx(),
            emp(),
            &["did".into()],
            &[AggCall::new(AggFunc::Avg, "sal", "avgsal")],
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], tuple![10, 2000.0]);
        assert_eq!(r.rows[1], tuple![20, 5000.0]);
        assert_eq!(r.schema.column(1).name, "avgsal");
    }

    #[test]
    fn multiple_aggregates_one_pass() {
        let r = hash_aggregate(
            &ctx(),
            emp(),
            &["did".into()],
            &[
                AggCall::count_star("n"),
                AggCall::new(AggFunc::Max, "sal", "top"),
            ],
        )
        .unwrap();
        assert_eq!(r.rows[0], tuple![10, 2, 3000.0]);
    }

    #[test]
    fn scalar_aggregate_empty_input() {
        let empty = Rel::new(emp().schema, vec![]);
        let r = hash_aggregate(
            &ctx(),
            empty,
            &[],
            &[
                AggCall::count_star("n"),
                AggCall::new(AggFunc::Sum, "sal", "s"),
            ],
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].value(0), &Value::Int(0));
        assert!(r.rows[0].value(1).is_null());
    }

    #[test]
    fn grouped_aggregate_empty_input_yields_no_rows() {
        let empty = Rel::new(emp().schema, vec![]);
        let r =
            hash_aggregate(&ctx(), empty, &["did".into()], &[AggCall::count_star("n")]).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn unknown_group_column_errors() {
        assert!(hash_aggregate(&ctx(), emp(), &["zzz".into()], &[]).is_err());
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let rel = Rel::new(
            Schema::new(vec![
                Column::nullable("k", DataType::Int),
                Column::nullable("v", DataType::Int),
            ])
            .unwrap()
            .into_ref(),
            vec![
                Tuple::new(vec![Value::Null, Value::Int(1)]),
                Tuple::new(vec![Value::Null, Value::Int(2)]),
            ],
        );
        let r = hash_aggregate(
            &ctx(),
            rel,
            &["k".into()],
            &[AggCall::new(AggFunc::Sum, "v", "s")],
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].value(1), &Value::Int(3));
    }
}
