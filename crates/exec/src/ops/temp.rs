//! `WithTemp`: materialization steps (CTEs) and Bloom builds, then a
//! body — the runtime shape of a magic-rewritten query and of the Filter
//! Join itself (materialize production set, build filter set, run
//! restricted inner + final join).

use crate::context::{ExecCtx, TempTable};
use crate::error::ExecError;
use crate::ops::bloom::build_bloom;
use crate::physical::{PhysPlan, Rel, TempStep};

/// Runs each step in order (registering temps/Blooms), executes the
/// body, then drops everything registered — even if the body errors.
pub fn with_temp(ctx: &ExecCtx, steps: &[TempStep], body: &PhysPlan) -> Result<Rel, ExecError> {
    let mut temp_names = Vec::new();
    let mut bloom_names = Vec::new();
    let run = || -> Result<Rel, ExecError> { body.execute(ctx) };

    let mut setup = || -> Result<(), ExecError> {
        for step in steps {
            match step {
                TempStep::Materialize { name, plan } => {
                    let rel = plan.execute(ctx)?;
                    // `register_temp` charges the materialization writes.
                    ctx.register_temp(name.clone(), TempTable::new(rel.schema, rel.rows));
                    temp_names.push(name.clone());
                }
                TempStep::BuildBloom {
                    name,
                    plan,
                    key_cols,
                    bits,
                    hashes,
                    ship,
                } => {
                    let rel = plan.execute(ctx)?;
                    let bloom = build_bloom(ctx, &rel, key_cols, *bits, *hashes)?;
                    if let Some((from, to)) = ship {
                        if from != to {
                            ctx.ledger.ship(bloom.byte_size());
                        }
                    }
                    ctx.register_bloom(name.clone(), bloom);
                    bloom_names.push(name.clone());
                }
            }
        }
        Ok(())
    };

    let result = setup().and_then(|_| run());
    for n in temp_names {
        ctx.drop_temp(&n);
    }
    for n in bloom_names {
        ctx.drop_bloom(&n);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_expr::{col, lit};
    use fj_storage::{tuple, DataType, Schema};
    use std::sync::Arc;

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    fn values_plan(vals: &[i64]) -> PhysPlan {
        PhysPlan::Values {
            schema: Schema::from_pairs(&[("k", DataType::Int)]).into_ref(),
            rows: vals.iter().map(|&v| vec![v.into()]).collect(),
        }
    }

    #[test]
    fn materialize_then_scan_twice() {
        let c = ctx();
        let plan = PhysPlan::WithTemp {
            steps: vec![TempStep::Materialize {
                name: "p".into(),
                plan: values_plan(&[1, 2, 3]),
            }],
            body: PhysPlan::NestedLoops {
                outer: PhysPlan::TempScan {
                    name: "p".into(),
                    alias: "A".into(),
                }
                .boxed(),
                inner: PhysPlan::TempScan {
                    name: "p".into(),
                    alias: "B".into(),
                }
                .boxed(),
                predicate: Some(col("A.k").eq(col("B.k"))),
                kind: fj_algebra::JoinKind::Inner,
            }
            .boxed(),
        };
        let r = plan.execute(&c).unwrap();
        assert_eq!(r.rows.len(), 3);
        let s = c.ledger.snapshot();
        assert_eq!(s.page_writes, 1, "one materialization write");
        assert_eq!(s.page_reads, 2, "two temp scans");
        // Temp dropped after the body.
        assert!(c.temp("p").is_err());
    }

    #[test]
    fn bloom_step_registers_and_cleans_up() {
        let c = ctx();
        let plan = PhysPlan::WithTemp {
            steps: vec![TempStep::BuildBloom {
                name: "b".into(),
                plan: values_plan(&[1, 2]),
                key_cols: vec!["k".into()],
                bits: 256,
                hashes: 3,
                ship: None,
            }],
            body: PhysPlan::BloomProbe {
                input: values_plan(&[1, 2, 50, 60]).boxed(),
                bloom: "b".into(),
                key_cols: vec!["k".into()],
            }
            .boxed(),
        };
        let r = plan.execute(&c).unwrap();
        assert!(r.rows.len() >= 2 && r.rows.len() <= 4);
        assert!(r.rows.contains(&tuple![1]));
        assert!(c.bloom("b").is_err(), "bloom dropped after body");
    }

    #[test]
    fn temps_dropped_on_body_error() {
        let c = ctx();
        let plan = PhysPlan::WithTemp {
            steps: vec![TempStep::Materialize {
                name: "p".into(),
                plan: values_plan(&[1]),
            }],
            body: PhysPlan::Filter {
                input: values_plan(&[1]).boxed(),
                predicate: col("does_not_exist").eq(lit(1)),
            }
            .boxed(),
        };
        assert!(plan.execute(&c).is_err());
        assert!(c.temp("p").is_err(), "temp cleaned up despite error");
    }

    #[test]
    fn later_steps_see_earlier_temps() {
        let c = ctx();
        let plan = PhysPlan::WithTemp {
            steps: vec![
                TempStep::Materialize {
                    name: "a".into(),
                    plan: values_plan(&[1, 2, 2, 3]),
                },
                TempStep::Materialize {
                    name: "b".into(),
                    plan: PhysPlan::Distinct {
                        input: PhysPlan::TempScan {
                            name: "a".into(),
                            alias: String::new(),
                        }
                        .boxed(),
                    },
                },
            ],
            body: PhysPlan::TempScan {
                name: "b".into(),
                alias: String::new(),
            }
            .boxed(),
        };
        let r = plan.execute(&c).unwrap();
        assert_eq!(r.rows.len(), 3);
    }
}
