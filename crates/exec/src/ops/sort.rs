//! Sorting with external-sort cost accounting.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::physical::Rel;

/// Sorts ascending by `keys` (NULLs first, per [`fj_storage::Value`]'s
/// total order).
///
/// Charges `n·⌈log₂ n⌉` tuple ops, plus external merge-sort I/O when the
/// input exceeds buffer memory: with `P` input pages and `M` buffer
/// pages, initial runs take one read+write pass and each of the
/// `⌈log_{M−1}(⌈P/M⌉)⌉` merge passes another — `2P·(1+passes)` page I/Os
/// total, the standard formula.
pub fn sort(ctx: &ExecCtx, input: Rel, keys: &[String]) -> Result<Rel, ExecError> {
    // The comparison sort itself is a library call and cannot poll the
    // interrupt mid-run; bracket it instead — the run is bounded by
    // `n log n` comparisons, so the check bound holds per plan node.
    ctx.check_interrupt()?;
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| input.schema.resolve(k))
        .collect::<Result<_, _>>()?;
    let n = input.rows.len() as u64;
    if n > 1 {
        ctx.ledger
            .tuple_ops(n * (64 - (n - 1).leading_zeros() as u64));
    }
    // Memory governance: a physical external merge sort when the input
    // exceeds buffer memory or the broker denies the grant; otherwise
    // hold the grant (if any) for the in-memory sort below, which keeps
    // the seed's simulated external-sort charge.
    let _grant = match ctx.spill_decision(input.page_count()) {
        Some((true, _)) => {
            let spill = ctx.spill_ctx().expect("spill decision implies ctx").clone();
            return super::spill::external_sort(ctx, &spill, input, &key_idx);
        }
        Some((false, grant)) => grant,
        None => None,
    };
    charge_external_sort(ctx, input.page_count());
    let mut rows = input.rows;
    rows.sort_by_key(|a| a.key(&key_idx));
    ctx.check_interrupt()?;
    Ok(Rel::new(input.schema, rows))
}

/// Charges the external-sort page I/O for sorting `pages` pages under the
/// context's buffer memory (no charge when the input fits in memory).
/// Spilled runs count against the governor's memory budget.
pub fn charge_external_sort(ctx: &ExecCtx, pages: u64) {
    let m = ctx.memory_pages;
    if pages <= m {
        return;
    }
    let passes = merge_passes(pages, m);
    // Run formation: read + write every page; each merge pass: the same.
    ctx.ledger.read_pages(pages * (1 + passes));
    ctx.ledger.write_pages(pages * (1 + passes));
    ctx.charge_materialized_pages(pages);
}

/// Number of merge passes to sort `pages` with `m` buffers:
/// `⌈log_{m−1}(⌈pages/m⌉)⌉`.
pub fn merge_passes(pages: u64, m: u64) -> u64 {
    let mut runs = pages.div_ceil(m);
    let fan_in = (m - 1).max(2);
    let mut passes = 0;
    while runs > 1 {
        runs = runs.div_ceil(fan_in);
        passes += 1;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_storage::{tuple, DataType, Schema, Tuple, Value};
    use std::sync::Arc;

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    #[test]
    fn sorts_by_multiple_keys() {
        let rel = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).into_ref(),
            vec![tuple![2, 1], tuple![1, 9], tuple![2, 0], tuple![1, 3]],
        );
        let r = sort(&ctx(), rel, &["a".into(), "b".into()]).unwrap();
        assert_eq!(
            r.rows,
            vec![tuple![1, 3], tuple![1, 9], tuple![2, 0], tuple![2, 1]]
        );
    }

    #[test]
    fn nulls_sort_first() {
        let rel = Rel::new(
            Schema::new(vec![fj_storage::Column::nullable("a", DataType::Int)])
                .unwrap()
                .into_ref(),
            vec![tuple![5], Tuple::new(vec![Value::Null]), tuple![1]],
        );
        let r = sort(&ctx(), rel, &["a".into()]).unwrap();
        assert!(r.rows[0].value(0).is_null());
        assert_eq!(r.rows[1], tuple![1]);
    }

    #[test]
    fn unknown_key_errors() {
        let rel = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
            vec![],
        );
        assert!(sort(&ctx(), rel, &["zzz".into()]).is_err());
    }

    #[test]
    fn in_memory_sort_charges_no_io() {
        let c = ctx();
        let rel = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
            (0..100).map(|i| tuple![100 - i]).collect(),
        );
        sort(&c, rel, &["a".into()]).unwrap();
        let s = c.ledger.snapshot();
        assert_eq!(s.page_ios(), 0);
        assert!(s.tuple_ops > 0);
    }

    #[test]
    fn external_sort_charges_passes() {
        let c = ctx().with_memory_pages(4);
        // A relation of ~40 pages (row width 17 → 240/page).
        let rel = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
            (0..9600).map(|i| tuple![9600 - i]).collect(),
        );
        let pages = rel.page_count();
        assert!(pages > 4);
        sort(&c, rel, &["a".into()]).unwrap();
        let expected_passes = merge_passes(pages, 4);
        let s = c.ledger.snapshot();
        assert_eq!(s.page_reads, pages * (1 + expected_passes));
        assert_eq!(s.page_writes, pages * (1 + expected_passes));
    }

    #[test]
    fn merge_pass_counts() {
        assert_eq!(merge_passes(10, 100), 0); // fits after run formation
        assert_eq!(merge_passes(100, 10), 2); // 10 runs, fan-in 9 → 2 passes
        assert_eq!(merge_passes(1000, 10), 3);
    }
}
