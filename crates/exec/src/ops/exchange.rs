//! Exchange operators for partitioned (distributed) execution: hash
//! partitioning on the way out of a coordinator and ordinal merge on
//! the way back in.
//!
//! Both sides charge the ledger so a distributed run's model-unit costs
//! stay reconcilable with the serial oracle: partitioning and merging
//! charge one tuple operation per row moved (the hash / comparison),
//! exactly as the local operators do, and nothing else — shipping
//! itself is charged by whoever puts the rows on a wire.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::physical::Rel;
use fj_algebra::PartitionMap;
use fj_storage::Tuple;

/// Splits `rel` into `map.shards` partitions by the stable partition
/// hash of the mapped column. Row order within each partition preserves
/// the input order, so partitioning then concatenating in partition
/// order is a deterministic permutation. Charges one tuple op per row.
pub fn hash_partition(ctx: &ExecCtx, rel: &Rel, map: PartitionMap) -> Result<Vec<Rel>, ExecError> {
    ctx.check_interrupt()?;
    if map.column >= rel.schema.arity() {
        return Err(ExecError::InvalidPhysicalPlan(format!(
            "partition column {} out of range for arity {}",
            map.column,
            rel.schema.arity()
        )));
    }
    let mut parts: Vec<Vec<Tuple>> = (0..map.shards).map(|_| Vec::new()).collect();
    for row in &rel.rows {
        let shard = map.shard_of(row.value(map.column)) as usize;
        parts[shard].push(row.clone());
    }
    ctx.ledger.tuple_ops(rel.rows.len() as u64);
    Ok(parts
        .into_iter()
        .map(|rows| Rel::new(rel.schema.clone(), rows))
        .collect())
}

/// Merges gathered partitions back into one relation ordered by the
/// integer ordinal column at index `ord_col` (the coordinator's hidden
/// row-ordinal), dropping duplicates of the same ordinal — a replica
/// re-gather after failover must not double rows. Charges one tuple op
/// per input row. The ordinal column is *kept*; callers strip it when
/// rebuilding the base table.
pub fn merge_by_ordinal(
    ctx: &ExecCtx,
    schema: fj_storage::SchemaRef,
    parts: Vec<Vec<Tuple>>,
    ord_col: usize,
) -> Result<Rel, ExecError> {
    ctx.check_interrupt()?;
    let mut merged: std::collections::BTreeMap<Tuple, Tuple> = std::collections::BTreeMap::new();
    let mut n = 0u64;
    for part in parts {
        for row in part {
            if ord_col >= row.arity() {
                return Err(ExecError::InvalidPhysicalPlan(format!(
                    "ordinal column {} out of range for arity {}",
                    ord_col,
                    row.arity()
                )));
            }
            n += 1;
            let key = Tuple::new(vec![row.value(ord_col).clone()]);
            merged.entry(key).or_insert(row);
        }
    }
    ctx.ledger.tuple_ops(n);
    Ok(Rel::new(schema, merged.into_values().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_storage::{tuple, DataType, Schema};
    use std::sync::Arc;

    fn rel() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("k", DataType::Int), ("ord", DataType::Int)]).into_ref(),
            (0..100).map(|i| tuple![i % 7, i]).collect(),
        )
    }

    #[test]
    fn partition_is_a_permutation_and_routes_by_hash() {
        let ctx = ExecCtx::new(Arc::new(Catalog::new()));
        let r = rel();
        let map = PartitionMap::new(0, 3);
        let parts = hash_partition(&ctx, &r, map).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.rows.len()).sum();
        assert_eq!(total, r.rows.len());
        for (i, p) in parts.iter().enumerate() {
            for row in &p.rows {
                assert_eq!(map.shard_of(row.value(0)) as usize, i);
            }
        }
        assert_eq!(ctx.ledger.snapshot().tuple_ops, 100);
    }

    #[test]
    fn merge_restores_ordinal_order_and_dedups_replicas() {
        let ctx = ExecCtx::new(Arc::new(Catalog::new()));
        let r = rel();
        let parts = hash_partition(&ctx, &r, PartitionMap::new(0, 4)).unwrap();
        let mut gathered: Vec<Vec<Tuple>> = parts.into_iter().map(|p| p.rows).collect();
        // Simulate a replica double-gather of partition 0.
        gathered.push(gathered[0].clone());
        let merged = merge_by_ordinal(&ctx, r.schema.clone(), gathered, 1).unwrap();
        assert_eq!(merged.rows, r.rows);
    }

    #[test]
    fn partition_column_out_of_range_is_typed() {
        let ctx = ExecCtx::new(Arc::new(Catalog::new()));
        assert!(hash_partition(&ctx, &rel(), PartitionMap::new(9, 2)).is_err());
    }
}
