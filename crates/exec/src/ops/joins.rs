//! The join-method menu: block nested loops, index nested loops, hash
//! join, sort-merge join, and UDF probing — every row of Figure 6 except
//! the filter join itself, which is a *composition* (see
//! `crate::ops::temp` and `fj-optimizer`'s lowering).
//!
//! All joins implement SQL equality semantics: NULL keys never match.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::interrupt::INTERRUPT_CHECK_INTERVAL;
use crate::ops::parallel::{route, PARALLEL_ROW_THRESHOLD};
use crate::ops::sort::charge_external_sort as charge_external_sort_pages;
use crate::physical::{maybe_qualify, Rel};
use fj_algebra::JoinKind;
use fj_expr::{BoundExpr, Expr};
use fj_storage::{Index, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves `(outer_col, inner_col)` key pairs to index pairs.
fn resolve_keys(
    outer: &Rel,
    inner: &Rel,
    keys: &[(String, String)],
) -> Result<Vec<(usize, usize)>, ExecError> {
    keys.iter()
        .map(|(o, i)| Ok((outer.schema.resolve(o)?, inner.schema.resolve(i)?)))
        .collect()
}

/// Joined-row schema for inner joins.
fn joined_schema(outer: &Rel, inner: &Rel) -> Result<Arc<fj_storage::Schema>, ExecError> {
    Ok(Arc::new(outer.schema.join(&inner.schema)?))
}

fn bind_residual(
    residual: Option<&Expr>,
    schema: &fj_storage::Schema,
) -> Result<Option<BoundExpr>, ExecError> {
    residual
        .map(|p| BoundExpr::bind(p, schema))
        .transpose()
        .map_err(Into::into)
}

/// Block nested-loops join.
///
/// Charges `(⌈P_outer/(M−2)⌉ − 1)·P_inner` *re-scan* page reads (the
/// first inner scan was charged by the inner plan itself), plus one
/// tuple op per compared pair — the dominant CPU term that makes BNLJ
/// genuinely quadratic in wall time too.
pub fn block_nested_loops(
    ctx: &ExecCtx,
    outer: Rel,
    inner: Rel,
    predicate: Option<&Expr>,
    kind: JoinKind,
) -> Result<Rel, ExecError> {
    let full_schema = joined_schema(&outer, &inner)?;
    let out_schema = match kind {
        JoinKind::Inner => Arc::clone(&full_schema),
        JoinKind::Semi => Arc::clone(&outer.schema),
    };
    // The predicate sees outer ⊕ inner even when (for semi joins) only
    // outer columns are emitted.
    let pred = bind_residual(predicate, &full_schema)?;

    // Re-scan charge.
    let blocks = outer
        .page_count()
        .div_ceil(ctx.memory_pages.saturating_sub(2).max(1))
        .max(1);
    ctx.ledger.read_pages((blocks - 1) * inner.page_count());
    ctx.ledger
        .tuple_ops(outer.rows.len() as u64 * inner.rows.len().max(1) as u64);

    let mut rows = Vec::new();
    let mut since_check = 0usize;
    for o in &outer.rows {
        match kind {
            JoinKind::Inner => {
                for i in &inner.rows {
                    since_check += 1;
                    if since_check >= INTERRUPT_CHECK_INTERVAL {
                        since_check = 0;
                        ctx.check_interrupt()?;
                    }
                    let joined = o.concat(i);
                    if match &pred {
                        Some(p) => p.eval_predicate(&joined)?,
                        None => true,
                    } {
                        rows.push(joined);
                    }
                }
            }
            JoinKind::Semi => {
                for i in &inner.rows {
                    since_check += 1;
                    if since_check >= INTERRUPT_CHECK_INTERVAL {
                        since_check = 0;
                        ctx.check_interrupt()?;
                    }
                    let joined = o.concat(i);
                    if match &pred {
                        Some(p) => p.eval_predicate(&joined)?,
                        None => true,
                    } {
                        rows.push(o.clone());
                        break;
                    }
                }
            }
        }
    }
    Ok(Rel::new(out_schema, rows))
}

/// Index nested-loops join: the *repeated probe* strategy for stored
/// relations. Requires an index (hash preferred, else B-tree) on
/// `inner_col` of `table`. Charges the index probe I/O per outer row
/// (via the index) plus one heap page per matching row.
pub fn index_nested_loops(
    ctx: &ExecCtx,
    outer: Rel,
    table: &str,
    alias: &str,
    outer_key: &str,
    inner_col: &str,
    residual: Option<&Expr>,
) -> Result<Rel, ExecError> {
    let t = ctx.catalog.table(table)?;
    let col = t.schema().resolve(inner_col).map_err(ExecError::Storage)?;
    let okey = outer.schema.resolve(outer_key)?;
    let inner_schema = maybe_qualify(t.schema(), alias);
    let out_schema = Arc::new(outer.schema.join(&inner_schema)?);
    let pred = bind_residual(residual, &out_schema)?;

    enum Idx<'a> {
        Hash(&'a fj_storage::HashIndex),
        BTree(&'a fj_storage::BTreeIndex),
    }
    let idx = if let Some(h) = t.hash_index(col) {
        Idx::Hash(h)
    } else if let Some(b) = t.btree_index(col) {
        Idx::BTree(b)
    } else {
        return Err(ExecError::InvalidPhysicalPlan(format!(
            "index nested loops requires an index on {table}.{inner_col}"
        )));
    };

    ctx.ledger.tuple_ops(outer.rows.len() as u64);
    let mut rows = Vec::new();
    let mut since_check = 0usize;
    for o in &outer.rows {
        since_check += 1;
        if since_check >= INTERRUPT_CHECK_INTERVAL {
            since_check = 0;
            ctx.check_interrupt()?;
        }
        let key = o.value(okey);
        if key.is_null() {
            continue;
        }
        let ids = match &idx {
            Idx::Hash(h) => h.probe(key, &ctx.ledger),
            Idx::BTree(b) => b.probe(key, &ctx.ledger),
        };
        for &rid in ids {
            let fetched = t
                .fetch_checked(rid, &ctx.ledger, ctx.faults.as_deref())
                .map_err(ExecError::Storage)?;
            let joined = o.concat(fetched);
            if match &pred {
                Some(p) => p.eval_predicate(&joined)?,
                None => true,
            } {
                rows.push(joined);
            }
        }
    }
    Ok(Rel::new(out_schema, rows))
}

/// Hash join: builds on `inner`, probes with `outer`.
///
/// Charges one tuple op per build row, probe row, and output row. When
/// the build side exceeds buffer memory, charges the Grace partition
/// pass: one write + one read of *both* inputs.
pub fn hash_join(
    ctx: &ExecCtx,
    outer: Rel,
    inner: Rel,
    keys: &[(String, String)],
    residual: Option<&Expr>,
    kind: JoinKind,
) -> Result<Rel, ExecError> {
    if keys.is_empty() {
        return Err(ExecError::InvalidPhysicalPlan(
            "hash join requires at least one equi-key".into(),
        ));
    }
    let idx = resolve_keys(&outer, &inner, keys)?;
    let (okeys, ikeys): (Vec<usize>, Vec<usize>) = idx.into_iter().unzip();
    let full_schema = joined_schema(&outer, &inner)?;
    let out_schema = match kind {
        JoinKind::Inner => Arc::clone(&full_schema),
        JoinKind::Semi => Arc::clone(&outer.schema),
    };
    let pred = bind_residual(residual, &full_schema)?;

    // Grace partitioning when the build side exceeds buffer memory (or
    // the broker denies the grant). With spilling enabled the partition
    // pass is *physical* — temp files, charged page by page as written
    // and read back — and the partitions live on disk, not against the
    // governor's memory budget. Without it (seed behaviour), the same
    // pass is simulated: charged up front and counted as materialized.
    let _grant = match ctx.spill_decision(inner.page_count()) {
        Some((true, _)) => {
            ctx.ledger
                .tuple_ops(inner.rows.len() as u64 + outer.rows.len() as u64);
            let spill = ctx.spill_ctx().expect("spill decision implies ctx").clone();
            let rows = super::spill::grace_hash_join(
                ctx, &spill, outer, inner, &okeys, &ikeys, &pred, kind,
            )?;
            return Ok(Rel::new(out_schema, rows));
        }
        Some((false, grant)) => grant,
        None => {
            if inner.page_count() > ctx.memory_pages {
                let p = inner.page_count() + outer.page_count();
                ctx.ledger.write_pages(p);
                ctx.ledger.read_pages(p);
                ctx.charge_materialized_pages(p);
            }
            None
        }
    };

    ctx.ledger
        .tuple_ops(inner.rows.len() as u64 + outer.rows.len() as u64);

    let parts = ctx.threads.max(1);
    if parts > 1 && outer.rows.len() + inner.rows.len() >= PARALLEL_ROW_THRESHOLD {
        let rows = partitioned_hash_probe(ctx, &outer, &inner, &okeys, &ikeys, &pred, kind, parts)?;
        return Ok(Rel::new(out_schema, rows));
    }

    let rows = hash_probe(ctx, &outer.rows, &inner.rows, &okeys, &ikeys, &pred, kind)?;
    Ok(Rel::new(out_schema, rows))
}

/// The serial build+probe kernel shared by the single-threaded hash
/// join and each partition of the parallel one. Charges one tuple op
/// per emitted row (the build/probe per-row ops are charged by the
/// caller, once, over the full inputs).
pub(crate) fn hash_probe<I: std::borrow::Borrow<Tuple> + Sync>(
    ctx: &ExecCtx,
    outer_rows: &[I],
    inner_rows: &[I],
    okeys: &[usize],
    ikeys: &[usize],
    pred: &Option<BoundExpr>,
    kind: JoinKind,
) -> Result<Vec<Tuple>, ExecError> {
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(inner_rows.len());
    for (n, i) in inner_rows.iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let i = i.borrow();
        let key = i.key(ikeys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(i);
    }

    let mut rows = Vec::new();
    for (n, o) in outer_rows.iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let o = o.borrow();
        let key = o.key(okeys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        let Some(matches) = table.get(&key) else {
            continue;
        };
        match kind {
            JoinKind::Inner => {
                for i in matches {
                    let joined = o.concat(i);
                    if match pred {
                        Some(p) => p.eval_predicate(&joined)?,
                        None => true,
                    } {
                        ctx.ledger.tuple_ops(1);
                        rows.push(joined);
                    }
                }
            }
            JoinKind::Semi => {
                let mut hit = false;
                for i in matches {
                    let joined = o.concat(i);
                    if match pred {
                        Some(p) => p.eval_predicate(&joined)?,
                        None => true,
                    } {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    ctx.ledger.tuple_ops(1);
                    rows.push(o.clone());
                }
            }
        }
    }
    Ok(rows)
}

/// Parallel partitioned hash join: routes both inputs to `parts` hash
/// partitions on their join keys, then runs the serial build+probe
/// kernel for each partition on its own scoped thread. Matching rows
/// always share a key hash, so partitions are independent and the
/// union of the partition outputs equals the serial output multiset.
/// Ledger totals are identical to the serial join: the per-row charges
/// are made by the same kernel against the same atomic ledger.
#[allow(clippy::too_many_arguments)]
fn partitioned_hash_probe(
    ctx: &ExecCtx,
    outer: &Rel,
    inner: &Rel,
    okeys: &[usize],
    ikeys: &[usize],
    pred: &Option<BoundExpr>,
    kind: JoinKind,
    parts: usize,
) -> Result<Vec<Tuple>, ExecError> {
    let mut inner_parts: Vec<Vec<&Tuple>> = vec![Vec::new(); parts];
    for i in &inner.rows {
        let key = i.key(ikeys);
        if key.iter().any(Value::is_null) {
            continue; // NULL keys never match; routing them is pointless
        }
        inner_parts[route(&key, parts)].push(i);
    }
    let mut outer_parts: Vec<Vec<&Tuple>> = vec![Vec::new(); parts];
    for o in &outer.rows {
        let key = o.key(okeys);
        if key.iter().any(Value::is_null) {
            continue;
        }
        outer_parts[route(&key, parts)].push(o);
    }

    let results: Vec<Result<Vec<Tuple>, ExecError>> = std::thread::scope(|s| {
        let handles: Vec<_> = outer_parts
            .iter()
            .zip(&inner_parts)
            .map(|(op, ip)| s.spawn(move || hash_probe(ctx, op, ip, okeys, ikeys, pred, kind)))
            .collect();
        handles
            .into_iter()
            // A panicking partition worker re-raises on the coordinating
            // thread with its original payload, so the runtime's
            // catch_unwind sees the real panic, not a synthesized one.
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    let mut rows = Vec::new();
    for r in results {
        rows.extend(r?);
    }
    Ok(rows)
}

/// Sorts one merge-join input that did not arrive in its join-key
/// order, degrading to the external merge sort when memory governance
/// says to (same decision rule as the standalone sort operator). The
/// in-memory path keeps the seed's simulated external-sort charge.
fn sort_unsorted_side(
    ctx: &ExecCtx,
    mut rows: Vec<Tuple>,
    keys: &[usize],
    layout: fj_storage::PageLayout,
) -> Result<Vec<Tuple>, ExecError> {
    let n = rows.len() as u64;
    if n > 1 {
        ctx.ledger
            .tuple_ops(n * (64 - (n - 1).leading_zeros() as u64));
    }
    let pages = layout.pages(n);
    let _grant = match ctx.spill_decision(pages) {
        Some((true, _)) => {
            let spill = ctx.spill_ctx().expect("spill decision implies ctx").clone();
            return super::spill::external_sort_rows(ctx, &spill, layout, rows, keys);
        }
        Some((false, grant)) => grant,
        None => None,
    };
    charge_external_sort_pages(ctx, pages);
    rows.sort_by_key(|a| a.key(keys));
    Ok(rows)
}

/// True iff `rows` is already sorted by the key positions. Charges one
/// tuple op per comparison (the detection pass a real engine's sort
/// operator performs before deciding to spill).
fn is_sorted_by(ctx: &ExecCtx, rows: &[Tuple], keys: &[usize]) -> bool {
    ctx.ledger.tuple_ops(rows.len().saturating_sub(1) as u64);
    rows.windows(2).all(|w| w[0].key(keys) <= w[1].key(keys))
}

/// Sort-merge join. Inputs that already arrive sorted by their join
/// keys (an *interesting order*, §3.1) skip their sort entirely — the
/// operator detects sortedness in one linear pass and only sorts (and
/// charges external-sort I/O via the shared sort-charge helper) the sides
/// that need it, so plans that preserve sort orders really are cheaper
/// at runtime, exactly as the optimizer's cost model predicts.
pub fn merge_join(
    ctx: &ExecCtx,
    outer: Rel,
    inner: Rel,
    keys: &[(String, String)],
    residual: Option<&Expr>,
) -> Result<Rel, ExecError> {
    if keys.is_empty() {
        return Err(ExecError::InvalidPhysicalPlan(
            "merge join requires at least one equi-key".into(),
        ));
    }
    let idx = resolve_keys(&outer, &inner, keys)?;
    let (okeys, ikeys): (Vec<usize>, Vec<usize>) = idx.into_iter().unzip();
    let out_schema = joined_schema(&outer, &inner)?;
    let pred = bind_residual(residual, &out_schema)?;

    // Sort whichever sides need it.
    let no = outer.rows.len() as u64;
    let ni = inner.rows.len() as u64;
    let mut left = outer.rows;
    let outer_layout = fj_storage::PageLayout::for_schema(&outer.schema);
    if !is_sorted_by(ctx, &left, &okeys) {
        left = sort_unsorted_side(ctx, left, &okeys, outer_layout)?;
    }
    let mut right = inner.rows;
    let inner_layout = fj_storage::PageLayout::for_schema(&inner.schema);
    if !is_sorted_by(ctx, &right, &ikeys) {
        right = sort_unsorted_side(ctx, right, &ikeys, inner_layout)?;
    }

    ctx.ledger.tuple_ops(no + ni);

    let mut rows = Vec::new();
    let (mut li, mut ri) = (0usize, 0usize);
    let mut since_check = 0usize;
    while li < left.len() && ri < right.len() {
        since_check += 1;
        if since_check >= INTERRUPT_CHECK_INTERVAL {
            since_check = 0;
            ctx.check_interrupt()?;
        }
        let lk = left[li].key(&okeys);
        if lk.iter().any(Value::is_null) {
            li += 1;
            continue;
        }
        let rk = right[ri].key(&ikeys);
        if rk.iter().any(Value::is_null) {
            ri += 1;
            continue;
        }
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the equal-key groups.
                let r_start = ri;
                let mut r_end = ri;
                while r_end < right.len() && right[r_end].key(&ikeys) == lk {
                    r_end += 1;
                }
                while li < left.len() && left[li].key(&okeys) == lk {
                    for r in &right[r_start..r_end] {
                        let joined = left[li].concat(r);
                        if match &pred {
                            Some(p) => p.eval_predicate(&joined)?,
                            None => true,
                        } {
                            ctx.ledger.tuple_ops(1);
                            rows.push(joined);
                        }
                    }
                    li += 1;
                }
                ri = r_end;
            }
        }
    }
    Ok(Rel::new(out_schema, rows))
}

/// Repeated-probe join against a user-defined relation: invokes the UDF
/// once per outer row (duplicate-argument caching is the UDF wrapper's
/// concern — see `fj-udf`). Output = outer ⊕ udf schema.
pub fn udf_probe(
    ctx: &ExecCtx,
    outer: Rel,
    udf: &str,
    alias: &str,
    arg_cols: &[String],
) -> Result<Rel, ExecError> {
    let u = ctx.catalog.udf(udf)?;
    if arg_cols.len() != u.arg_count() {
        return Err(ExecError::InvalidPhysicalPlan(format!(
            "udf '{udf}' takes {} args, got {}",
            u.arg_count(),
            arg_cols.len()
        )));
    }
    let arg_idx: Vec<usize> = arg_cols
        .iter()
        .map(|c| outer.schema.resolve(c))
        .collect::<Result<_, _>>()?;
    let udf_schema = u.schema();
    let out_schema = Arc::new(outer.schema.join(&maybe_qualify(&udf_schema, alias))?);

    let mut rows = Vec::new();
    for (n, o) in outer.rows.iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let args: Vec<Value> = arg_idx.iter().map(|&i| o.value(i).clone()).collect();
        if args.iter().any(Value::is_null) {
            continue;
        }
        for t in u.invoke(&args, &ctx.ledger) {
            rows.push(o.concat(&t));
        }
    }
    Ok(Rel::new(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_expr::{col, lit};
    use fj_storage::{tuple, DataType, Schema, TableBuilder};

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    fn left() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int), ("L.v", DataType::Int)]).into_ref(),
            vec![
                tuple![1, 100],
                tuple![2, 200],
                tuple![2, 201],
                tuple![3, 300],
            ],
        )
    }

    fn right() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("R.k", DataType::Int), ("R.w", DataType::Int)]).into_ref(),
            vec![tuple![2, -2], tuple![3, -3], tuple![3, -33], tuple![4, -4]],
        )
    }

    /// Expected inner-join row multiset on k: (2,200,-2), (2,201,-2),
    /// (3,300,-3), (3,300,-33).
    fn expected_inner() -> Vec<Tuple> {
        vec![
            tuple![2, 200, 2, -2],
            tuple![2, 201, 2, -2],
            tuple![3, 300, 3, -3],
            tuple![3, 300, 3, -33],
        ]
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    #[test]
    fn all_join_methods_agree() {
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let pred = col("L.k").eq(col("R.k"));

        let nlj =
            block_nested_loops(&ctx(), left(), right(), Some(&pred), JoinKind::Inner).unwrap();
        let hj = hash_join(&ctx(), left(), right(), &keys, None, JoinKind::Inner).unwrap();
        let mj = merge_join(&ctx(), left(), right(), &keys, None).unwrap();

        assert_eq!(sorted(nlj.rows), sorted(expected_inner()));
        assert_eq!(sorted(hj.rows), sorted(expected_inner()));
        assert_eq!(sorted(mj.rows), sorted(expected_inner()));
    }

    #[test]
    fn semi_join_variants_agree() {
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let pred = col("L.k").eq(col("R.k"));
        let expect = vec![tuple![2, 200], tuple![2, 201], tuple![3, 300]];

        let nlj = block_nested_loops(&ctx(), left(), right(), Some(&pred), JoinKind::Semi).unwrap();
        let hj = hash_join(&ctx(), left(), right(), &keys, None, JoinKind::Semi).unwrap();
        assert_eq!(sorted(nlj.rows), sorted(expect.clone()));
        assert_eq!(sorted(hj.rows), sorted(expect));
        assert_eq!(nlj.schema.arity(), 2, "semi join keeps outer schema");
    }

    #[test]
    fn null_keys_never_match() {
        let l = Rel::new(
            Schema::new(vec![fj_storage::Column::nullable("L.k", DataType::Int)])
                .unwrap()
                .into_ref(),
            vec![Tuple::new(vec![Value::Null]), tuple![2]],
        );
        let r = Rel::new(
            Schema::new(vec![fj_storage::Column::nullable("R.k", DataType::Int)])
                .unwrap()
                .into_ref(),
            vec![Tuple::new(vec![Value::Null]), tuple![2]],
        );
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let hj = hash_join(&ctx(), l.clone(), r.clone(), &keys, None, JoinKind::Inner).unwrap();
        assert_eq!(hj.rows, vec![tuple![2, 2]]);
        let mj = merge_join(&ctx(), l, r, &keys, None).unwrap();
        assert_eq!(mj.rows, vec![tuple![2, 2]]);
    }

    #[test]
    fn residual_predicate_applies() {
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let resid = col("R.w").lt(lit(-3));
        let hj = hash_join(
            &ctx(),
            left(),
            right(),
            &keys,
            Some(&resid),
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(sorted(hj.rows), vec![tuple![3, 300, 3, -33]]);
    }

    #[test]
    fn cross_product_via_nlj() {
        let r = block_nested_loops(&ctx(), left(), right(), None, JoinKind::Inner).unwrap();
        assert_eq!(r.rows.len(), 16);
    }

    #[test]
    fn empty_key_join_rejected() {
        assert!(hash_join(&ctx(), left(), right(), &[], None, JoinKind::Inner).is_err());
        assert!(merge_join(&ctx(), left(), right(), &[], None).is_err());
    }

    #[test]
    fn bnl_charges_rescan_io() {
        // Tiny memory forces multiple outer blocks.
        let c = ctx().with_memory_pages(3);
        let big_left = Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int)]).into_ref(),
            (0..2000).map(|i| tuple![i]).collect(),
        );
        let big_right = Rel::new(
            Schema::from_pairs(&[("R.k", DataType::Int)]).into_ref(),
            (0..2000).map(|i| tuple![i]).collect(),
        );
        let op = big_left.page_count();
        let ip = big_right.page_count();
        let before = c.ledger.snapshot();
        block_nested_loops(
            &c,
            big_left,
            big_right,
            Some(&col("L.k").eq(col("R.k"))),
            JoinKind::Inner,
        )
        .unwrap();
        let blocks = op.div_ceil(1); // M-2 = 1
        assert_eq!(
            c.ledger.snapshot().delta(&before).page_reads,
            (blocks - 1) * ip
        );
    }

    #[test]
    fn hash_join_grace_charge_when_build_spills() {
        let c = ctx().with_memory_pages(3);
        let l = Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int)]).into_ref(),
            (0..2000).map(|i| tuple![i]).collect(),
        );
        let r = Rel::new(
            Schema::from_pairs(&[("R.k", DataType::Int)]).into_ref(),
            (0..2000).map(|i| tuple![i]).collect(),
        );
        let p = l.page_count() + r.page_count();
        let keys = vec![("L.k".to_string(), "R.k".to_string())];
        let before = c.ledger.snapshot();
        hash_join(&c, l, r, &keys, None, JoinKind::Inner).unwrap();
        let d = c.ledger.snapshot().delta(&before);
        assert_eq!(d.page_writes, p);
        assert_eq!(d.page_reads, p);
    }

    #[test]
    fn index_nested_loops_probes() {
        let mut cat = Catalog::new();
        let mut t = TableBuilder::new("R")
            .column("k", DataType::Int)
            .column("w", DataType::Int)
            .rows((0..100i64).map(|i| vec![(i % 10).into(), i.into()]))
            .build()
            .unwrap();
        t.create_hash_index(0).unwrap();
        cat.add_table(t.into_ref());
        let c = ExecCtx::new(Arc::new(cat));

        let outer = Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int)]).into_ref(),
            vec![tuple![3], tuple![7]],
        );
        let r = index_nested_loops(&c, outer, "R", "R", "L.k", "k", None).unwrap();
        assert_eq!(r.rows.len(), 20); // 10 matches per probe value
        assert!(r.schema.contains("R.w"));
        // 2 probes (1 page each) + 20 fetches.
        assert_eq!(c.ledger.snapshot().page_reads, 22);
    }

    #[test]
    fn index_nested_loops_requires_index() {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("R")
                .column("k", DataType::Int)
                .build()
                .unwrap()
                .into_ref(),
        );
        let c = ExecCtx::new(Arc::new(cat));
        let outer = Rel::new(
            Schema::from_pairs(&[("L.k", DataType::Int)]).into_ref(),
            vec![tuple![3]],
        );
        assert!(matches!(
            index_nested_loops(&c, outer, "R", "R", "L.k", "k", None),
            Err(ExecError::InvalidPhysicalPlan(_))
        ));
    }
}
