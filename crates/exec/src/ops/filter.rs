//! Filter and project.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::interrupt::INTERRUPT_CHECK_INTERVAL;
use crate::physical::Rel;
use fj_expr::{BoundExpr, Expr};
use fj_storage::{Column, Schema, Tuple};
use std::sync::Arc;

/// Row filter: keeps rows whose predicate evaluates to TRUE. Charges one
/// tuple op per input row.
pub fn filter(ctx: &ExecCtx, input: Rel, predicate: &Expr) -> Result<Rel, ExecError> {
    let bound = BoundExpr::bind(predicate, &input.schema)?;
    ctx.ledger.tuple_ops(input.rows.len() as u64);
    let mut rows = Vec::new();
    for (i, t) in input.rows.into_iter().enumerate() {
        if i % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        if bound.eval_predicate(&t)? {
            rows.push(t);
        }
    }
    Ok(Rel::new(input.schema, rows))
}

/// Projection: computes `(expr, name)` pairs per row. Charges one tuple
/// op per input row.
pub fn project(ctx: &ExecCtx, input: Rel, exprs: &[(Expr, String)]) -> Result<Rel, ExecError> {
    let bound: Vec<(BoundExpr, &String)> = exprs
        .iter()
        .map(|(e, n)| BoundExpr::bind(e, &input.schema).map(|b| (b, n)))
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(
        bound
            .iter()
            .map(|(b, n)| Column::nullable((*n).clone(), b.result_type(&input.schema)))
            .collect(),
    )?;
    ctx.ledger.tuple_ops(input.rows.len() as u64);
    let mut rows = Vec::with_capacity(input.rows.len());
    for (i, t) in input.rows.iter().enumerate() {
        if i % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let mut vals = Vec::with_capacity(bound.len());
        for (b, _) in &bound {
            vals.push(b.eval(t)?);
        }
        rows.push(Tuple::new(vals));
    }
    Ok(Rel::new(Arc::new(schema), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_expr::{col, lit};
    use fj_storage::{tuple, DataType};

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    fn input() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).into_ref(),
            vec![tuple![1, 10], tuple![2, 20], tuple![3, 30]],
        )
    }

    #[test]
    fn filter_keeps_true_rows() {
        let c = ctx();
        let r = filter(&c, input(), &col("a").ge(lit(2))).unwrap();
        assert_eq!(r.rows, vec![tuple![2, 20], tuple![3, 30]]);
        assert_eq!(c.ledger.snapshot().tuple_ops, 3);
    }

    #[test]
    fn filter_bad_column_errors() {
        assert!(filter(&ctx(), input(), &col("zz").ge(lit(2))).is_err());
    }

    #[test]
    fn project_computes_and_names() {
        let c = ctx();
        let r = project(
            &c,
            input(),
            &[
                (col("b").add(col("a")), "sum".into()),
                (lit(1), "one".into()),
            ],
        )
        .unwrap();
        assert_eq!(r.schema.column(0).name, "sum");
        assert_eq!(r.rows[0], tuple![11, 1]);
        assert_eq!(r.rows[2], tuple![33, 1]);
    }

    #[test]
    fn project_empty_input() {
        let c = ctx();
        let empty = Rel::new(input().schema, vec![]);
        let r = project(&c, empty, &[(col("a"), "a".into())]).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.schema.arity(), 1);
    }
}
