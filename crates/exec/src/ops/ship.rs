//! Shipping results between sites in the distributed simulation.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::physical::Rel;
use fj_algebra::SiteId;

/// Ships `input`'s rows from `from` to `to`: charges one message plus
/// the wire width of every tuple to the ledger. Shipping within one site
/// is free (no charge, no message).
pub fn ship(ctx: &ExecCtx, input: Rel, from: SiteId, to: SiteId) -> Result<Rel, ExecError> {
    if from != to {
        let bytes: u64 = input.rows.iter().map(|t| t.wire_width() as u64).sum();
        ctx.ledger.ship(bytes);
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_storage::{tuple, DataType, Schema};
    use std::sync::Arc;

    fn rel() -> Rel {
        Rel::new(
            Schema::from_pairs(&[("a", DataType::Int)]).into_ref(),
            vec![tuple![1], tuple![2]],
        )
    }

    #[test]
    fn cross_site_charges_bytes_and_message() {
        let ctx = ExecCtx::new(Arc::new(Catalog::new()));
        ship(&ctx, rel(), SiteId(1), SiteId::LOCAL).unwrap();
        let s = ctx.ledger.snapshot();
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes_shipped, 2 * (4 + 8));
    }

    #[test]
    fn same_site_is_free() {
        let ctx = ExecCtx::new(Arc::new(Catalog::new()));
        ship(&ctx, rel(), SiteId(1), SiteId(1)).unwrap();
        assert_eq!(ctx.ledger.snapshot().messages, 0);
        assert_eq!(ctx.ledger.snapshot().bytes_shipped, 0);
    }
}
