//! Physical operator implementations.
//!
//! Each module implements one family of operators as free functions
//! `(ctx, inputs...) -> Result<Rel>`; [`crate::physical::PhysPlan`]
//! dispatches to them. Cost charges follow the System-R formulas — see
//! each function's docs for the exact charge.

pub mod agg;
pub mod bloom;
pub mod exchange;
pub mod filter;
pub mod joins;
pub mod parallel;
pub mod scan;
pub mod ship;
pub mod sort;
pub mod spill;
pub mod temp;
