//! Lossy filter sets: building and probing Bloom filters.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::interrupt::INTERRUPT_CHECK_INTERVAL;
use crate::physical::Rel;
use fj_storage::{BloomFilter, Value};
use std::hash::{Hash, Hasher};

/// Folds a multi-column key into a single [`Value`] for Bloom
/// membership: single columns pass through, composites hash-fold (the
/// fold loses information — acceptable for a structure that is lossy by
/// design and never produces false negatives for the true key).
pub fn fold_key(values: &[&Value]) -> Value {
    if values.len() == 1 {
        values[0].clone()
    } else {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for v in values {
            v.hash(&mut h);
        }
        Value::Int(h.finish() as i64)
    }
}

/// Builds a Bloom filter over `key_cols` of `input`. Charges one tuple
/// op per row.
pub fn build_bloom(
    ctx: &ExecCtx,
    input: &Rel,
    key_cols: &[String],
    bits: u64,
    hashes: u32,
) -> Result<BloomFilter, ExecError> {
    let idx: Vec<usize> = key_cols
        .iter()
        .map(|c| input.schema.resolve(c))
        .collect::<Result<_, _>>()?;
    let mut bloom = BloomFilter::new(bits, hashes);
    ctx.ledger.tuple_ops(input.rows.len() as u64);
    for (n, t) in input.rows.iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let vals: Vec<&Value> = idx.iter().map(|&i| t.value(i)).collect();
        if vals.iter().any(|v| v.is_null()) {
            continue;
        }
        bloom.insert(&fold_key(&vals));
    }
    Ok(bloom)
}

/// Drops input rows whose key is definitely absent from the registered
/// Bloom filter `bloom`. Charges one tuple op per row. Rows with NULL
/// keys are dropped (they can never equi-join).
pub fn bloom_probe(
    ctx: &ExecCtx,
    input: Rel,
    bloom: &str,
    key_cols: &[String],
) -> Result<Rel, ExecError> {
    let filter = ctx.bloom(bloom)?;
    let idx: Vec<usize> = key_cols
        .iter()
        .map(|c| input.schema.resolve(c))
        .collect::<Result<_, _>>()?;
    ctx.ledger.tuple_ops(input.rows.len() as u64);
    let mut rows = Vec::new();
    for (n, t) in input.rows.into_iter().enumerate() {
        if n % INTERRUPT_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        let vals: Vec<&Value> = idx.iter().map(|&i| t.value(i)).collect();
        if vals.iter().any(|v| v.is_null()) {
            continue;
        }
        if filter.contains(&fold_key(&vals)) {
            rows.push(t);
        }
    }
    Ok(Rel::new(input.schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_storage::{tuple, DataType, Schema, Tuple};
    use std::sync::Arc;

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    fn rel(vals: &[i64]) -> Rel {
        Rel::new(
            Schema::from_pairs(&[("k", DataType::Int)]).into_ref(),
            vals.iter().map(|&v| tuple![v]).collect(),
        )
    }

    #[test]
    fn probe_keeps_all_members() {
        let c = ctx();
        let b = build_bloom(&c, &rel(&[1, 2, 3]), &["k".into()], 1024, 4).unwrap();
        c.register_bloom("f", b);
        let r = bloom_probe(&c, rel(&[1, 2, 3]), "f", &["k".into()]).unwrap();
        assert_eq!(r.rows.len(), 3, "no false negatives");
    }

    #[test]
    fn probe_drops_most_nonmembers() {
        let c = ctx();
        let b = build_bloom(&c, &rel(&[1, 2, 3]), &["k".into()], 4096, 6).unwrap();
        c.register_bloom("f", b);
        let probe: Vec<i64> = (1000..2000).collect();
        let r = bloom_probe(&c, rel(&probe), "f", &["k".into()]).unwrap();
        assert!(r.rows.len() < 20, "fp count {} too high", r.rows.len());
    }

    #[test]
    fn null_keys_dropped() {
        let c = ctx();
        let b = build_bloom(&c, &rel(&[1]), &["k".into()], 128, 2).unwrap();
        c.register_bloom("f", b);
        let input = Rel::new(
            Schema::new(vec![fj_storage::Column::nullable("k", DataType::Int)])
                .unwrap()
                .into_ref(),
            vec![Tuple::new(vec![Value::Null]), tuple![1]],
        );
        let r = bloom_probe(&c, input, "f", &["k".into()]).unwrap();
        assert_eq!(r.rows, vec![tuple![1]]);
    }

    #[test]
    fn missing_filter_errors() {
        assert!(matches!(
            bloom_probe(&ctx(), rel(&[1]), "ghost", &["k".into()]),
            Err(ExecError::MissingRuntimeObject(_))
        ));
    }

    #[test]
    fn multi_column_fold_no_false_negatives() {
        let c = ctx();
        let two = Rel::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).into_ref(),
            vec![tuple![1, 2], tuple![3, 4]],
        );
        let b = build_bloom(&c, &two, &["a".into(), "b".into()], 1024, 4).unwrap();
        c.register_bloom("f", b);
        let r = bloom_probe(
            &c,
            Rel::new(two.schema.clone(), vec![tuple![1, 2], tuple![3, 4]]),
            "f",
            &["a".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
    }
}
