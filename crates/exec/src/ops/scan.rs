//! Scans: base tables, temp tables, literal values, UDF enumeration.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::ops::parallel::{scoped_chunks, PARALLEL_ROW_THRESHOLD};
use crate::physical::{maybe_qualify, Rel};
use fj_storage::{SchemaRef, Tuple, Value};

/// Copies `src` out of storage, fanning the row clones across
/// `ctx.threads` workers for large inputs. Chunk order is preserved, so
/// the output row order matches the serial scan exactly. No ledger
/// charge: the caller charges the page reads.
fn copy_rows(ctx: &ExecCtx, src: &[Tuple]) -> Vec<Tuple> {
    if ctx.threads <= 1 || src.len() < PARALLEL_ROW_THRESHOLD {
        return src.to_vec();
    }
    scoped_chunks(src, ctx.threads, |chunk| chunk.to_vec())
        .into_iter()
        .flatten()
        .collect()
}

/// Sequential scan of a base table. Charges one read per table page.
/// With `ctx.threads > 1` the heap copy-out is chunked across workers.
/// Page reads pass through the context's fault plan, if any.
pub fn seq_scan(ctx: &ExecCtx, table: &str, alias: &str) -> Result<Rel, ExecError> {
    ctx.check_interrupt()?;
    let t = ctx.catalog.table(table)?;
    let src = t
        .scan_checked(&ctx.ledger, ctx.faults.as_deref())
        .map_err(ExecError::Storage)?;
    let rows = copy_rows(ctx, src);
    Ok(Rel::new(maybe_qualify(t.schema(), alias), rows))
}

/// Scan of a registered temp table. Charges its page count as reads.
pub fn temp_scan(ctx: &ExecCtx, name: &str, alias: &str) -> Result<Rel, ExecError> {
    let t = ctx.temp(name)?;
    ctx.ledger.read_pages(t.page_count());
    Ok(Rel::new(
        maybe_qualify(&t.schema, alias),
        copy_rows(ctx, &t.rows),
    ))
}

/// Literal rows; free.
pub fn values(schema: &SchemaRef, rows: &[Vec<Value>]) -> Result<Rel, ExecError> {
    Ok(Rel::new(
        schema.clone(),
        rows.iter().map(|r| Tuple::new(r.clone())).collect(),
    ))
}

/// Ordered full scan of a base table through its B-tree index on
/// `col`: rows come out sorted by that column (NULL keys first, matching
/// the engine's sort convention) — the classic *interesting orders*
/// access path (§3.1). Charges the index's leaf pages plus the heap
/// pages (a clustered-scan assumption; see DESIGN.md).
pub fn index_ordered_scan(
    ctx: &ExecCtx,
    table: &str,
    alias: &str,
    col: &str,
) -> Result<Rel, ExecError> {
    let t = ctx.catalog.table(table)?;
    let ci = t.schema().resolve(col).map_err(ExecError::Storage)?;
    let Some(idx) = t.btree_index(ci) else {
        return Err(ExecError::InvalidPhysicalPlan(format!(
            "ordered scan requires a B-tree index on {table}.{col}"
        )));
    };
    ctx.ledger.read_pages(t.page_count());
    // Disk mode: fetch every heap page through the backing explicitly
    // (this path charges the ledger directly rather than going through
    // `scan_checked`, which would add fault draws the in-memory fault
    // schedule never saw). Index leaf pages have no physical shadow —
    // only heap pages are stored — an intentional, documented
    // divergence between simulated and physical counts.
    for page_no in 0..t.page_count() {
        t.read_backed_page(page_no).map_err(ExecError::Storage)?;
    }
    // NULL keys are not indexed; they sort first by convention.
    let mut rows: Vec<Tuple> = t
        .rows()
        .iter()
        .filter(|r| r.value(ci).is_null())
        .cloned()
        .collect();
    for rid in idx.scan_all_ordered(&ctx.ledger) {
        rows.push(t.rows()[rid].clone());
    }
    ctx.ledger.tuple_ops(rows.len() as u64);
    Ok(Rel::new(maybe_qualify(t.schema(), alias), rows))
}

/// Full enumeration of a user-defined relation over its finite domain —
/// Figure 6's "full computation" column for UDFs. Each domain point is
/// one invocation (the UDF implementation charges its own invocation
/// cost).
pub fn udf_full_scan(ctx: &ExecCtx, udf: &str, alias: &str) -> Result<Rel, ExecError> {
    let u = ctx.catalog.udf(udf)?;
    let domain = u
        .domain()
        .ok_or_else(|| ExecError::UdfNotEnumerable(udf.to_string()))?;
    let mut rows = Vec::new();
    for args in &domain {
        rows.extend(u.invoke(args, &ctx.ledger));
    }
    Ok(Rel::new(maybe_qualify(&u.schema(), alias), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_algebra::Catalog;
    use fj_storage::{tuple, DataType, Schema, TableBuilder};
    use std::sync::Arc;

    fn ctx_with_table() -> ExecCtx {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("t")
                .column("a", DataType::Int)
                .row(vec![1.into()])
                .row(vec![2.into()])
                .build()
                .unwrap()
                .into_ref(),
        );
        ExecCtx::new(Arc::new(cat))
    }

    #[test]
    fn seq_scan_charges_and_qualifies() {
        let ctx = ctx_with_table();
        let r = seq_scan(&ctx, "t", "T").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(r.schema.contains("T.a"));
        assert_eq!(ctx.ledger.snapshot().page_reads, 1);
    }

    #[test]
    fn seq_scan_unknown_table() {
        let ctx = ctx_with_table();
        assert!(seq_scan(&ctx, "ghost", "").is_err());
    }

    #[test]
    fn temp_scan_round_trips() {
        let ctx = ctx_with_table();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        ctx.register_temp(
            "tmp",
            crate::context::TempTable::new(schema, vec![tuple![7]]),
        );
        let before = ctx.ledger.snapshot();
        let r = temp_scan(&ctx, "tmp", "P").unwrap();
        assert_eq!(r.rows, vec![tuple![7]]);
        assert!(r.schema.contains("P.x"));
        assert_eq!(ctx.ledger.snapshot().delta(&before).page_reads, 1);
        assert!(temp_scan(&ctx, "nope", "").is_err());
    }

    #[test]
    fn values_is_free() {
        let ctx = ctx_with_table();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let r = values(&schema, &[vec![Value::Int(9)]]).unwrap();
        assert_eq!(r.rows, vec![tuple![9]]);
        assert_eq!(ctx.ledger.snapshot().page_reads, 0);
    }
}
