//! Cooperative query interruption.
//!
//! An [`Interrupt`] is a cheap shared handle (one atomic byte) that any
//! holder — the runtime's [`Ticket`](../../fj_runtime), a deadline
//! watcher, or the governor's own budget accounting — can *trip* with a
//! typed [`InterruptReason`]. Operators poll it at bounded intervals
//! ([`INTERRUPT_CHECK_INTERVAL`] tuples inside hot loops, plus once per
//! plan node), so a running query stops within a bounded number of
//! tuple operations of the signal and surfaces
//! [`ExecError::Interrupted`](crate::ExecError) instead of burning a
//! worker to completion.
//!
//! The first trip wins: once a reason is recorded, later trips are
//! no-ops, so a query that blows its row budget in the same instant it
//! is cancelled reports exactly one reason.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// How often operator hot loops poll the interrupt flag, in tuples.
///
/// A power of two so the check compiles to a mask test. At 1024 tuples
/// per poll the governor adds one relaxed atomic load per ~1k tuple
/// operations — well under the 3% overhead budget on the throughput
/// experiment (the load is uncontended and stays in cache).
pub const INTERRUPT_CHECK_INTERVAL: usize = 1024;

/// Why a query was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// A deadline attached to the query expired.
    Deadline,
    /// The client (or operator) explicitly cancelled the query.
    Cancelled,
    /// The query materialized more pages than its memory budget.
    MemoryBudget,
    /// The query produced more output rows (across all plan nodes)
    /// than its row budget.
    RowLimit,
}

impl InterruptReason {
    fn from_u8(v: u8) -> Option<InterruptReason> {
        match v {
            1 => Some(InterruptReason::Deadline),
            2 => Some(InterruptReason::Cancelled),
            3 => Some(InterruptReason::MemoryBudget),
            4 => Some(InterruptReason::RowLimit),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            InterruptReason::Deadline => 1,
            InterruptReason::Cancelled => 2,
            InterruptReason::MemoryBudget => 3,
            InterruptReason::RowLimit => 4,
        }
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Deadline => write!(f, "deadline expired"),
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::MemoryBudget => write!(f, "memory budget exceeded"),
            InterruptReason::RowLimit => write!(f, "output row budget exceeded"),
        }
    }
}

/// A shared, clonable interrupt flag. `0` means "not tripped"; any
/// other value encodes the winning [`InterruptReason`].
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    flag: Arc<AtomicU8>,
}

impl Interrupt {
    /// A fresh, untripped handle.
    pub fn new() -> Interrupt {
        Interrupt::default()
    }

    /// Trips the flag with `reason`. Returns `true` if this call won
    /// the race (the flag was untripped); `false` if a reason was
    /// already recorded (the existing reason is kept).
    pub fn trip(&self, reason: InterruptReason) -> bool {
        self.flag
            .compare_exchange(0, reason.as_u8(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The recorded reason, if tripped.
    pub fn tripped(&self) -> Option<InterruptReason> {
        InterruptReason::from_u8(self.flag.load(Ordering::Acquire))
    }

    /// True iff some reason has been recorded. A single relaxed-ish
    /// load — this is the thing hot loops poll.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.flag.load(Ordering::Relaxed) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_trip_wins() {
        let i = Interrupt::new();
        assert_eq!(i.tripped(), None);
        assert!(!i.is_tripped());
        assert!(i.trip(InterruptReason::Cancelled));
        assert!(!i.trip(InterruptReason::Deadline));
        assert_eq!(i.tripped(), Some(InterruptReason::Cancelled));
        assert!(i.is_tripped());
    }

    #[test]
    fn clones_share_the_flag() {
        let i = Interrupt::new();
        let j = i.clone();
        i.trip(InterruptReason::RowLimit);
        assert_eq!(j.tripped(), Some(InterruptReason::RowLimit));
    }

    #[test]
    fn reasons_round_trip_and_display() {
        for r in [
            InterruptReason::Deadline,
            InterruptReason::Cancelled,
            InterruptReason::MemoryBudget,
            InterruptReason::RowLimit,
        ] {
            assert_eq!(InterruptReason::from_u8(r.as_u8()), Some(r));
            assert!(!r.to_string().is_empty());
        }
        assert_eq!(InterruptReason::from_u8(0), None);
        assert_eq!(InterruptReason::from_u8(9), None);
    }

    #[test]
    fn check_interval_is_a_power_of_two() {
        assert!(INTERRUPT_CHECK_INTERVAL.is_power_of_two());
    }
}
