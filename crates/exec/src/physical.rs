//! The physical plan algebra and its interpreter.
//!
//! Every node's `execute` returns a fully evaluated [`Rel`] (schema +
//! rows). Rows flowing between operators model *pipelining* and are not
//! charged as I/O; only scans, explicit materializations
//! ([`TempStep::Materialize`]), and the formula-mandated rescan/partition
//! traffic of the join algorithms charge pages. This makes measured
//! ledger charges match the System-R cost formulas the optimizer uses.

use crate::context::ExecCtx;
use crate::error::ExecError;
use crate::ops;
use fj_algebra::{JoinKind, SiteId};
use fj_expr::{AggCall, Expr};
use fj_storage::{Schema, SchemaRef, Tuple, Value};
use fj_trace::SubtreeIo;
use std::fmt::Write as _;
use std::sync::Arc;

/// An evaluated relation: runtime schema plus rows.
#[derive(Debug, Clone)]
pub struct Rel {
    /// Runtime schema of the rows.
    pub schema: SchemaRef,
    /// The tuples.
    pub rows: Vec<Tuple>,
}

impl Rel {
    /// Builds a relation.
    pub fn new(schema: SchemaRef, rows: Vec<Tuple>) -> Rel {
        Rel { schema, rows }
    }

    /// Pages this relation would occupy if materialized.
    pub fn page_count(&self) -> u64 {
        fj_storage::PageLayout::for_schema(&self.schema).pages(self.rows.len() as u64)
    }
}

/// A preparatory step of a [`PhysPlan::WithTemp`] node.
#[derive(Debug, Clone, PartialEq)]
pub enum TempStep {
    /// Evaluate `plan` and register its result as temp table `name`
    /// (charging materialization page writes).
    Materialize {
        /// Temp table name.
        name: String,
        /// Producing plan.
        plan: PhysPlan,
    },
    /// Evaluate `plan` and build a Bloom filter over `key_cols`,
    /// registered under `name` — the *lossy filter set*.
    BuildBloom {
        /// Bloom filter name.
        name: String,
        /// Producing plan.
        plan: PhysPlan,
        /// Key columns (resolved against the plan's output schema).
        key_cols: Vec<String>,
        /// Filter size in bits.
        bits: u64,
        /// Hash function count.
        hashes: u32,
        /// When the filter will be consumed at another site, the
        /// (from, to) pair — building then charges one message of the
        /// filter's byte size (the fixed-size shipment that motivates
        /// Bloom filters in SDD-1-style semi-joins, §5.1).
        ship: Option<(SiteId, SiteId)>,
    },
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Scan a base table (local or remote; shipping is explicit via
    /// [`PhysPlan::Ship`]).
    SeqScan {
        /// Catalog table name.
        table: String,
        /// Alias qualifying output columns (empty keeps base names).
        alias: String,
    },
    /// Ordered full scan of a base table via its B-tree index on `col`;
    /// output is sorted by that column — the interesting-orders access
    /// path.
    IndexOrderedScan {
        /// Catalog table name.
        table: String,
        /// Alias.
        alias: String,
        /// Indexed column (unqualified name).
        col: String,
    },
    /// Scan a registered temp table.
    TempScan {
        /// Temp table name.
        name: String,
        /// Alias (empty keeps the temp's column names).
        alias: String,
    },
    /// Literal rows.
    Values {
        /// Schema of the rows.
        schema: SchemaRef,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
    /// Enumerate a user-defined relation's full extension (requires a
    /// finite domain) — the *full computation* strategy for UDFs.
    UdfFullScan {
        /// Catalog UDF name.
        udf: String,
        /// Alias.
        alias: String,
    },
    /// Repeated-probe join against a user-defined relation: invoke the
    /// function once per outer row with arguments taken from
    /// `arg_cols`. Output schema = outer ⊕ udf (qualified by `alias`).
    UdfProbe {
        /// Outer input.
        outer: Box<PhysPlan>,
        /// Catalog UDF name.
        udf: String,
        /// Alias for the UDF columns.
        alias: String,
        /// Outer columns supplying the UDF arguments, in order.
        arg_cols: Vec<String>,
    },
    /// Filter by predicate.
    Filter {
        /// Input.
        input: Box<PhysPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Compute expressions.
    Project {
        /// Input.
        input: Box<PhysPlan>,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Sort ascending by key columns (charges external-sort I/O when the
    /// input exceeds buffer memory).
    Sort {
        /// Input.
        input: Box<PhysPlan>,
        /// Key column names.
        keys: Vec<String>,
    },
    /// Hash-based duplicate elimination.
    Distinct {
        /// Input.
        input: Box<PhysPlan>,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Input.
        input: Box<PhysPlan>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// Block nested-loops join; charges
    /// `⌈P_outer/(M−2)⌉·P_inner` rescan I/O beyond the children's own
    /// production cost.
    NestedLoops {
        /// Outer input.
        outer: Box<PhysPlan>,
        /// Inner input.
        inner: Box<PhysPlan>,
        /// Join predicate (`None` = cross product).
        predicate: Option<Expr>,
        /// Inner or semi.
        kind: JoinKind,
    },
    /// Index nested-loops join: probe `table`'s index on `inner_col`
    /// with each outer row's `outer_key` value — the *repeated probe*
    /// strategy for stored relations.
    IndexNestedLoops {
        /// Outer input.
        outer: Box<PhysPlan>,
        /// Inner base table (must have an index on `inner_col`).
        table: String,
        /// Alias for inner columns.
        alias: String,
        /// Outer key column name.
        outer_key: String,
        /// Inner indexed column (unqualified name).
        inner_col: String,
        /// Residual predicate applied to joined rows.
        residual: Option<Expr>,
    },
    /// Hash join: build on `inner`, probe with `outer`. Charges Grace
    /// partition I/O when the build side exceeds memory.
    HashJoin {
        /// Probe side.
        outer: Box<PhysPlan>,
        /// Build side.
        inner: Box<PhysPlan>,
        /// Equi-join keys: (outer column, inner column).
        keys: Vec<(String, String)>,
        /// Residual predicate applied to joined rows.
        residual: Option<Expr>,
        /// Inner or semi.
        kind: JoinKind,
    },
    /// Sort-merge join (sorts both inputs internally, charging sort
    /// I/O).
    MergeJoin {
        /// Left input.
        outer: Box<PhysPlan>,
        /// Right input.
        inner: Box<PhysPlan>,
        /// Equi-join keys: (outer column, inner column).
        keys: Vec<(String, String)>,
        /// Residual predicate.
        residual: Option<Expr>,
    },
    /// Drop input rows whose key is definitely absent from a registered
    /// Bloom filter — the lossy filter set (§3.2, Figure 6 bottom row).
    BloomProbe {
        /// Input.
        input: Box<PhysPlan>,
        /// Registered Bloom filter name.
        bloom: String,
        /// Key columns checked against the filter (hashed per-column in
        /// order; multi-column keys fold).
        key_cols: Vec<String>,
    },
    /// Ship the input's rows from one site to another, charging network
    /// bytes + one message (free when `from == to`).
    Ship {
        /// Input.
        input: Box<PhysPlan>,
        /// Producing site.
        from: SiteId,
        /// Consuming site.
        to: SiteId,
    },
    /// Run preparatory steps (materializations / Bloom builds), then the
    /// body; temps are dropped afterwards.
    WithTemp {
        /// Steps, in order.
        steps: Vec<TempStep>,
        /// Main plan.
        body: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// Boxes the plan.
    pub fn boxed(self) -> Box<PhysPlan> {
        Box::new(self)
    }

    /// Executes the plan, charging the context's ledger.
    ///
    /// Governor hooks: the interrupt flag is polled at every plan-node
    /// entry (operators additionally poll inside their tuple loops at
    /// [`crate::INTERRUPT_CHECK_INTERVAL`]), and every node's output
    /// cardinality is charged against the context's row budget, so a
    /// runaway intermediate result trips
    /// [`crate::InterruptReason::RowLimit`] within one node of
    /// appearing.
    pub fn execute(&self, ctx: &ExecCtx) -> Result<Rel, ExecError> {
        let Some(tracer) = ctx.tracer() else {
            // Tracing off: the zero-cost fast path — no label
            // formatting, no ledger snapshots, no clock reads.
            ctx.check_interrupt()?;
            let rel = self.execute_node(ctx)?;
            ctx.charge_output_rows(rel.rows.len() as u64)?;
            return Ok(rel);
        };
        let tracer = Arc::clone(tracer);
        let pages_before = ctx.ledger.snapshot().page_reads;
        let pool_before = ctx.pool_probe().map(|p| p.read());
        let spill_before = ctx.spill_snapshot();
        tracer.enter(self.node_label());
        // Everything between enter and exit — the entry poll included —
        // is attributed to this node's subtree; exit runs on the error
        // path too, keeping the collector's stack balanced.
        let result = ctx.check_interrupt().and_then(|()| {
            let rel = self.execute_node(ctx)?;
            ctx.charge_output_rows(rel.rows.len() as u64)?;
            Ok(rel)
        });
        let mut io = SubtreeIo::pages(
            ctx.ledger
                .snapshot()
                .page_reads
                .saturating_sub(pages_before),
        );
        if let (Some(probe), Some((hits0, misses0))) = (ctx.pool_probe(), pool_before) {
            let (hits, misses) = probe.read();
            io.pool_hits = hits.saturating_sub(hits0);
            io.pool_misses = misses.saturating_sub(misses0);
        }
        let spill_now = ctx.spill_snapshot();
        io.spills = spill_now.spills.saturating_sub(spill_before.spills);
        io.spill_pages = (spill_now.pages_written + spill_now.pages_read)
            .saturating_sub(spill_before.pages_written + spill_before.pages_read);
        let rows_out = result.as_ref().map(|r| r.rows.len() as u64).unwrap_or(0);
        tracer.exit(rows_out, io);
        result
    }

    /// The node's one-line EXPLAIN label — the same text
    /// [`PhysPlan::display`] prints for it, and the `op` field of its
    /// trace node.
    pub fn node_label(&self) -> String {
        match self {
            PhysPlan::SeqScan { table, alias } => format!("SeqScan {table} AS {alias}"),
            PhysPlan::IndexOrderedScan { table, alias, col } => {
                format!("IndexOrderedScan {table} AS {alias} (sorted by {col})")
            }
            PhysPlan::TempScan { name, alias } => format!("TempScan {name} AS {alias}"),
            PhysPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
            PhysPlan::UdfFullScan { udf, alias } => format!("UdfFullScan {udf} AS {alias}"),
            PhysPlan::UdfProbe {
                udf,
                alias,
                arg_cols,
                ..
            } => format!("UdfProbe {udf} AS {alias} args=({})", arg_cols.join(", ")),
            PhysPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysPlan::Project { exprs, .. } => {
                let list = exprs
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("Project {list}")
            }
            PhysPlan::Sort { keys, .. } => format!("Sort by [{}]", keys.join(", ")),
            PhysPlan::Distinct { .. } => "Distinct".to_string(),
            PhysPlan::HashAggregate { group_by, aggs, .. } => {
                let aggs_s = aggs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "HashAggregate group by [{}] compute [{aggs_s}]",
                    group_by.join(", ")
                )
            }
            PhysPlan::NestedLoops {
                predicate, kind, ..
            } => {
                let k = if *kind == JoinKind::Semi { "Semi" } else { "" };
                match predicate {
                    Some(p) => format!("{k}NestedLoopsJoin on {p}"),
                    None => format!("{k}NestedLoopsJoin (cross)"),
                }
            }
            PhysPlan::IndexNestedLoops {
                table,
                alias,
                outer_key,
                inner_col,
                ..
            } => format!(
                "IndexNestedLoopsJoin {table} AS {alias} on {outer_key} = {alias}.{inner_col}"
            ),
            PhysPlan::HashJoin { keys, kind, .. } => {
                let k = if *kind == JoinKind::Semi { "Semi" } else { "" };
                let keys_s = keys
                    .iter()
                    .map(|(a, b)| format!("{a} = {b}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                format!("{k}HashJoin on {keys_s}")
            }
            PhysPlan::MergeJoin { keys, .. } => {
                let keys_s = keys
                    .iter()
                    .map(|(a, b)| format!("{a} = {b}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                format!("MergeJoin on {keys_s}")
            }
            PhysPlan::BloomProbe {
                bloom, key_cols, ..
            } => format!("BloomProbe {bloom} on [{}]", key_cols.join(", ")),
            PhysPlan::Ship { from, to, .. } => format!("Ship {from} -> {to}"),
            PhysPlan::WithTemp { .. } => "WithTemp".to_string(),
        }
    }

    /// The node's child plans **in execution order** — the order their
    /// trace nodes appear as children: single-input operators list
    /// their input; joins list outer then inner; `WithTemp` lists each
    /// step's plan, then the body. Leaves return an empty list.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::SeqScan { .. }
            | PhysPlan::IndexOrderedScan { .. }
            | PhysPlan::TempScan { .. }
            | PhysPlan::Values { .. }
            | PhysPlan::UdfFullScan { .. } => Vec::new(),
            PhysPlan::UdfProbe { outer, .. } => vec![outer],
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::HashAggregate { input, .. }
            | PhysPlan::BloomProbe { input, .. }
            | PhysPlan::Ship { input, .. } => vec![input],
            PhysPlan::IndexNestedLoops { outer, .. } => vec![outer],
            PhysPlan::NestedLoops { outer, inner, .. }
            | PhysPlan::HashJoin { outer, inner, .. }
            | PhysPlan::MergeJoin { outer, inner, .. } => vec![outer, inner],
            PhysPlan::WithTemp { steps, body } => {
                let mut out: Vec<&PhysPlan> = steps
                    .iter()
                    .map(|s| match s {
                        TempStep::Materialize { plan, .. } => plan,
                        TempStep::BuildBloom { plan, .. } => plan,
                    })
                    .collect();
                out.push(body);
                out
            }
        }
    }

    fn execute_node(&self, ctx: &ExecCtx) -> Result<Rel, ExecError> {
        match self {
            PhysPlan::SeqScan { table, alias } => ops::scan::seq_scan(ctx, table, alias),
            PhysPlan::IndexOrderedScan { table, alias, col } => {
                ops::scan::index_ordered_scan(ctx, table, alias, col)
            }
            PhysPlan::TempScan { name, alias } => ops::scan::temp_scan(ctx, name, alias),
            PhysPlan::Values { schema, rows } => ops::scan::values(schema, rows),
            PhysPlan::UdfFullScan { udf, alias } => ops::scan::udf_full_scan(ctx, udf, alias),
            PhysPlan::UdfProbe {
                outer,
                udf,
                alias,
                arg_cols,
            } => {
                let o = outer.execute(ctx)?;
                ops::joins::udf_probe(ctx, o, udf, alias, arg_cols)
            }
            PhysPlan::Filter { input, predicate } => {
                let r = input.execute(ctx)?;
                ops::filter::filter(ctx, r, predicate)
            }
            PhysPlan::Project { input, exprs } => {
                let r = input.execute(ctx)?;
                ops::filter::project(ctx, r, exprs)
            }
            PhysPlan::Sort { input, keys } => {
                let r = input.execute(ctx)?;
                ops::sort::sort(ctx, r, keys)
            }
            PhysPlan::Distinct { input } => {
                let r = input.execute(ctx)?;
                ops::agg::distinct(ctx, r)
            }
            PhysPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let r = input.execute(ctx)?;
                ops::agg::hash_aggregate(ctx, r, group_by, aggs)
            }
            PhysPlan::NestedLoops {
                outer,
                inner,
                predicate,
                kind,
            } => {
                let o = outer.execute(ctx)?;
                let i = inner.execute(ctx)?;
                ops::joins::block_nested_loops(ctx, o, i, predicate.as_ref(), *kind)
            }
            PhysPlan::IndexNestedLoops {
                outer,
                table,
                alias,
                outer_key,
                inner_col,
                residual,
            } => {
                let o = outer.execute(ctx)?;
                ops::joins::index_nested_loops(
                    ctx,
                    o,
                    table,
                    alias,
                    outer_key,
                    inner_col,
                    residual.as_ref(),
                )
            }
            PhysPlan::HashJoin {
                outer,
                inner,
                keys,
                residual,
                kind,
            } => {
                let o = outer.execute(ctx)?;
                let i = inner.execute(ctx)?;
                ops::joins::hash_join(ctx, o, i, keys, residual.as_ref(), *kind)
            }
            PhysPlan::MergeJoin {
                outer,
                inner,
                keys,
                residual,
            } => {
                let o = outer.execute(ctx)?;
                let i = inner.execute(ctx)?;
                ops::joins::merge_join(ctx, o, i, keys, residual.as_ref())
            }
            PhysPlan::BloomProbe {
                input,
                bloom,
                key_cols,
            } => {
                let r = input.execute(ctx)?;
                ops::bloom::bloom_probe(ctx, r, bloom, key_cols)
            }
            PhysPlan::Ship { input, from, to } => {
                let r = input.execute(ctx)?;
                ops::ship::ship(ctx, r, *from, *to)
            }
            PhysPlan::WithTemp { steps, body } => ops::temp::with_temp(ctx, steps, body),
        }
    }

    /// Pretty-prints the physical plan as an indented tree.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(&mut out, 0);
        out
    }

    fn fmt_tree(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::SeqScan { table, alias } => {
                let _ = writeln!(out, "{pad}SeqScan {table} AS {alias}");
            }
            PhysPlan::IndexOrderedScan { table, alias, col } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexOrderedScan {table} AS {alias} (sorted by {col})"
                );
            }
            PhysPlan::TempScan { name, alias } => {
                let _ = writeln!(out, "{pad}TempScan {name} AS {alias}");
            }
            PhysPlan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values ({} rows)", rows.len());
            }
            PhysPlan::UdfFullScan { udf, alias } => {
                let _ = writeln!(out, "{pad}UdfFullScan {udf} AS {alias}");
            }
            PhysPlan::UdfProbe {
                outer,
                udf,
                alias,
                arg_cols,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}UdfProbe {udf} AS {alias} args=({})",
                    arg_cols.join(", ")
                );
                outer.fmt_tree(out, depth + 1);
            }
            PhysPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate}");
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Project { input, exprs } => {
                let list = exprs
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}Project {list}");
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort by [{}]", keys.join(", "));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let aggs_s = aggs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate group by [{}] compute [{aggs_s}]",
                    group_by.join(", ")
                );
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::NestedLoops {
                outer,
                inner,
                predicate,
                kind,
            } => {
                let k = if *kind == JoinKind::Semi { "Semi" } else { "" };
                match predicate {
                    Some(p) => {
                        let _ = writeln!(out, "{pad}{k}NestedLoopsJoin on {p}");
                    }
                    None => {
                        let _ = writeln!(out, "{pad}{k}NestedLoopsJoin (cross)");
                    }
                }
                outer.fmt_tree(out, depth + 1);
                inner.fmt_tree(out, depth + 1);
            }
            PhysPlan::IndexNestedLoops {
                outer,
                table,
                alias,
                outer_key,
                inner_col,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexNestedLoopsJoin {table} AS {alias} on {outer_key} = {alias}.{inner_col}"
                );
                outer.fmt_tree(out, depth + 1);
            }
            PhysPlan::HashJoin {
                outer,
                inner,
                keys,
                kind,
                ..
            } => {
                let k = if *kind == JoinKind::Semi { "Semi" } else { "" };
                let keys_s = keys
                    .iter()
                    .map(|(a, b)| format!("{a} = {b}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                let _ = writeln!(out, "{pad}{k}HashJoin on {keys_s}");
                outer.fmt_tree(out, depth + 1);
                inner.fmt_tree(out, depth + 1);
            }
            PhysPlan::MergeJoin {
                outer, inner, keys, ..
            } => {
                let keys_s = keys
                    .iter()
                    .map(|(a, b)| format!("{a} = {b}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                let _ = writeln!(out, "{pad}MergeJoin on {keys_s}");
                outer.fmt_tree(out, depth + 1);
                inner.fmt_tree(out, depth + 1);
            }
            PhysPlan::BloomProbe {
                input,
                bloom,
                key_cols,
            } => {
                let _ = writeln!(out, "{pad}BloomProbe {bloom} on [{}]", key_cols.join(", "));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Ship { input, from, to } => {
                let _ = writeln!(out, "{pad}Ship {from} -> {to}");
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::WithTemp { steps, body } => {
                let _ = writeln!(out, "{pad}WithTemp");
                for s in steps {
                    match s {
                        TempStep::Materialize { name, plan } => {
                            let _ = writeln!(out, "{pad}  Materialize {name}:");
                            plan.fmt_tree(out, depth + 2);
                        }
                        TempStep::BuildBloom {
                            name,
                            plan,
                            key_cols,
                            bits,
                            ..
                        } => {
                            let _ = writeln!(
                                out,
                                "{pad}  BuildBloom {name} ({bits} bits) on [{}]:",
                                key_cols.join(", ")
                            );
                            plan.fmt_tree(out, depth + 2);
                        }
                    }
                }
                let _ = writeln!(out, "{pad}  Body:");
                body.fmt_tree(out, depth + 2);
            }
        }
    }
}

/// Requalifies `schema` under `alias` when the alias is non-empty.
pub(crate) fn maybe_qualify(schema: &Schema, alias: &str) -> SchemaRef {
    if alias.is_empty() {
        Arc::new(schema.clone())
    } else {
        Arc::new(schema.with_qualifier(alias))
    }
}
