//! Heuristic lowering of logical plans to physical plans.
//!
//! This is a rule-based planner (in the spirit of pre-System-R
//! optimizers): it pushes predicate conjuncts to the deepest node where
//! they bind, turns equi-conjuncts into hash-join keys, inlines view
//! bodies, ships remote scans to the local site after filtering, and
//! materializes CTEs. It makes no cost-based decisions — that is
//! `fj-optimizer`'s job — but it executes *any* valid logical plan,
//! which is exactly what the magic rewriting and view inlining need.

use crate::error::ExecError;
use crate::physical::{PhysPlan, TempStep};
use fj_algebra::{Catalog, LogicalPlan, RelationKind, SiteId};
use fj_expr::{col, columns_of, conjoin, equi_join_keys, split_conjuncts, Expr};
use fj_storage::Schema;

/// Lowers a logical plan to a physical plan.
pub fn lower(plan: &LogicalPlan, catalog: &Catalog) -> Result<PhysPlan, ExecError> {
    let (phys, leftover) = lower_node(plan, Vec::new(), catalog)?;
    attach_filter(phys, leftover)
}

fn attach_filter(plan: PhysPlan, preds: Vec<Expr>) -> Result<PhysPlan, ExecError> {
    match conjoin(preds) {
        None => Ok(plan),
        Some(p) => Ok(PhysPlan::Filter {
            input: plan.boxed(),
            predicate: p,
        }),
    }
}

/// Partition `preds` into (those binding fully on `schema`, the rest).
fn partition_binding(preds: Vec<Expr>, schema: &Schema) -> (Vec<Expr>, Vec<Expr>) {
    preds
        .into_iter()
        .partition(|p| columns_of(p).iter().all(|c| schema.contains(c)))
}

/// Core recursion: returns the lowered plan plus the conjuncts that did
/// not bind at or below this node (the parent must place them).
fn lower_node(
    plan: &LogicalPlan,
    mut preds: Vec<Expr>,
    catalog: &Catalog,
) -> Result<(PhysPlan, Vec<Expr>), ExecError> {
    match plan {
        LogicalPlan::Select { input, predicate } => {
            preds.extend(split_conjuncts(predicate));
            lower_node(input, preds, catalog)
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            kind,
        } => {
            if let Some(p) = predicate {
                preds.extend(split_conjuncts(p));
            }
            let ls = left.schema(catalog)?;
            let rs = right.schema(catalog)?;
            let (left_preds, rest) = partition_binding(preds, &ls);
            let (right_preds, rest) = partition_binding(rest, &rs);
            let combined = ls.join(&rs)?;
            let (here, leftover) = partition_binding(rest, &combined);

            let (lp, l_left) = lower_node(left, left_preds, catalog)?;
            let (rp, r_left) = lower_node(right, right_preds, catalog)?;
            let lp = attach_filter(lp, l_left)?;
            let rp = attach_filter(rp, r_left)?;

            // Split `here` into hash keys and residual.
            let here_pred = conjoin(here);
            let keys = here_pred
                .as_ref()
                .map(|p| {
                    equi_join_keys(p, &|c| ls.contains(c), &|c| rs.contains(c))
                        .into_iter()
                        .map(|k| (k.left, k.right))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            let phys = if keys.is_empty() {
                PhysPlan::NestedLoops {
                    outer: lp.boxed(),
                    inner: rp.boxed(),
                    predicate: here_pred,
                    kind: *kind,
                }
            } else {
                // Residual = conjuncts that are not the extracted keys.
                let key_exprs: Vec<Expr> = keys
                    .iter()
                    .map(|(a, b)| col(a.clone()).eq(col(b.clone())))
                    .collect();
                // `keys` were extracted from `here_pred`, so it is
                // necessarily Some here; degrade to no residual rather
                // than panicking if that invariant ever breaks.
                let residual = here_pred.as_ref().and_then(|p| {
                    conjoin(split_conjuncts(p).into_iter().filter(|c| {
                        !key_exprs.contains(c) && !key_exprs.iter().any(|k| flipped_eq(c, k))
                    }))
                });
                PhysPlan::HashJoin {
                    outer: lp.boxed(),
                    inner: rp.boxed(),
                    keys,
                    residual,
                    kind: *kind,
                }
            };
            Ok((phys, leftover))
        }
        LogicalPlan::Scan { relation, alias } => {
            let schema = plan.schema(catalog)?;
            let (mine, leftover) = partition_binding(preds, &schema);
            let kind = catalog.resolve(relation)?;
            let phys = match kind {
                RelationKind::Base(_) => attach_filter(
                    PhysPlan::SeqScan {
                        table: relation.clone(),
                        alias: alias.clone(),
                    },
                    mine,
                )?,
                RelationKind::Remote(_, site) => {
                    // Filter at the remote site, then ship the survivors.
                    let filtered = attach_filter(
                        PhysPlan::SeqScan {
                            table: relation.clone(),
                            alias: alias.clone(),
                        },
                        mine,
                    )?;
                    PhysPlan::Ship {
                        input: filtered.boxed(),
                        from: site,
                        to: SiteId::LOCAL,
                    }
                }
                RelationKind::View(view) => {
                    // Inline the body, requalify outputs under the alias.
                    let body = lower(&view.plan, catalog)?;
                    let requalified = PhysPlan::Project {
                        input: body.boxed(),
                        exprs: view
                            .schema
                            .columns()
                            .iter()
                            .map(|c| (col(c.name.clone()), format!("{alias}.{}", c.base_name())))
                            .collect(),
                    };
                    attach_filter(requalified, mine)?
                }
                RelationKind::Udf(_) => attach_filter(
                    PhysPlan::UdfFullScan {
                        udf: relation.clone(),
                        alias: alias.clone(),
                    },
                    mine,
                )?,
            };
            Ok((phys, leftover))
        }
        LogicalPlan::CteRef { name, alias, .. } => {
            let schema = plan.schema(catalog)?;
            let (mine, leftover) = partition_binding(preds, &schema);
            let phys = attach_filter(
                PhysPlan::TempScan {
                    name: name.clone(),
                    alias: alias.clone(),
                },
                mine,
            )?;
            Ok((phys, leftover))
        }
        LogicalPlan::Project { input, exprs } => {
            let (inner, inner_left) = lower_node(input, Vec::new(), catalog)?;
            let inner = attach_filter(inner, inner_left)?;
            let phys = PhysPlan::Project {
                input: inner.boxed(),
                exprs: exprs.clone(),
            };
            let schema = plan.schema(catalog)?;
            let (mine, leftover) = partition_binding(preds, &schema);
            Ok((attach_filter(phys, mine)?, leftover))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let (inner, inner_left) = lower_node(input, Vec::new(), catalog)?;
            let inner = attach_filter(inner, inner_left)?;
            let phys = PhysPlan::HashAggregate {
                input: inner.boxed(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            };
            let schema = plan.schema(catalog)?;
            let (mine, leftover) = partition_binding(preds, &schema);
            Ok((attach_filter(phys, mine)?, leftover))
        }
        LogicalPlan::Distinct { input } => {
            // Filters commute with DISTINCT: keep pushing.
            let (inner, leftover) = lower_node(input, preds, catalog)?;
            Ok((
                PhysPlan::Distinct {
                    input: inner.boxed(),
                },
                leftover,
            ))
        }
        LogicalPlan::With { ctes, body } => {
            let steps = ctes
                .iter()
                .map(|(name, cte)| {
                    Ok(TempStep::Materialize {
                        name: name.clone(),
                        plan: lower(cte, catalog)?,
                    })
                })
                .collect::<Result<Vec<_>, ExecError>>()?;
            let (b, leftover) = lower_node(body, preds, catalog)?;
            Ok((
                PhysPlan::WithTemp {
                    steps,
                    body: b.boxed(),
                },
                leftover,
            ))
        }
        LogicalPlan::Values { schema, rows } => {
            let (mine, leftover) = partition_binding(preds, schema);
            let phys = attach_filter(
                PhysPlan::Values {
                    schema: schema.clone(),
                    rows: rows.clone(),
                },
                mine,
            )?;
            Ok((phys, leftover))
        }
    }
}

/// True when `c` is `b = a` for key expression `a = b`.
fn flipped_eq(c: &Expr, key: &Expr) -> bool {
    match (c, key) {
        (
            Expr::Binary {
                op: fj_expr::BinOp::Eq,
                left: cl,
                right: cr,
            },
            Expr::Binary {
                op: fj_expr::BinOp::Eq,
                left: kl,
                right: kr,
            },
        ) => cl == kr && cr == kl,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecCtx;
    use fj_algebra::fixtures::{paper_catalog, paper_query};
    use fj_algebra::{magic, Sips};
    use fj_storage::{tuple, Tuple};
    use std::sync::Arc;

    fn run(plan: &LogicalPlan, catalog: &Catalog) -> Vec<Tuple> {
        let phys = lower(plan, catalog).unwrap();
        let ctx = ExecCtx::new(Arc::new(catalog.clone()));
        let mut rows = phys.execute(&ctx).unwrap().rows;
        rows.sort();
        rows
    }

    #[test]
    fn paper_query_answer_is_correct() {
        let cat = paper_catalog();
        let rows = run(&paper_query().to_plan(), &cat);
        // Young employees in big departments earning above department
        // average: employee 1 (did 10, sal 9000 > avg 5000) and employee
        // 5 (did 30, sal 4000 > avg 3000).
        assert_eq!(
            rows,
            vec![tuple![10, 9000.0, 5000.0], tuple![30, 4000.0, 3000.0]]
        );
    }

    #[test]
    fn lowering_uses_hash_joins_for_equi_preds() {
        let cat = paper_catalog();
        let phys = lower(&paper_query().to_plan(), &cat).unwrap();
        let d = phys.display();
        assert!(d.contains("HashJoin"), "expected hash joins:\n{d}");
        assert!(!d.contains("(cross)"), "no cross products remain:\n{d}");
    }

    #[test]
    fn magic_rewrite_gives_same_answer() {
        let cat = paper_catalog();
        let q = paper_query();
        let original = run(&q.to_plan(), &cat);
        for production in [
            vec!["E".to_string(), "D".to_string()],
            vec!["E".to_string()],
        ] {
            let sips = Sips::derive(&cat, &q, &production, "V").unwrap();
            let rewritten = magic::rewrite(&cat, &q, &sips).unwrap();
            let got = run(&rewritten, &cat);
            assert_eq!(got, original, "production={production:?}");
        }
    }

    #[test]
    fn magic_rewrite_reduces_view_computation() {
        // With the filter join, the view's aggregate only sees the
        // filtered departments; verify via tuple-op counts.
        let cat = paper_catalog();
        let q = paper_query();

        let ctx1 = ExecCtx::new(Arc::new(cat.clone()));
        lower(&q.to_plan(), &cat).unwrap().execute(&ctx1).unwrap();

        let sips = Sips::derive(&cat, &q, &["E".to_string(), "D".to_string()], "V").unwrap();
        let rewritten = magic::rewrite(&cat, &q, &sips).unwrap();
        let ctx2 = ExecCtx::new(Arc::new(cat.clone()));
        lower(&rewritten, &cat).unwrap().execute(&ctx2).unwrap();

        // On this tiny instance the rewritten query does more bookkeeping,
        // so only sanity-check both ledgers are populated; the crossover
        // is exercised at scale in the benches.
        assert!(ctx1.ledger.snapshot().tuple_ops > 0);
        assert!(ctx2.ledger.snapshot().tuple_ops > 0);
    }

    #[test]
    fn view_scan_executes_standalone() {
        let cat = paper_catalog();
        let rows = run(&LogicalPlan::scan("DepAvgSal", "V"), &cat);
        assert_eq!(
            rows,
            vec![tuple![10, 5000.0], tuple![20, 5000.0], tuple![30, 3000.0]]
        );
    }

    #[test]
    fn filter_pushed_below_distinct() {
        let cat = paper_catalog();
        let plan = LogicalPlan::scan("Emp", "E")
            .project(vec![(col("E.did"), "did".into())])
            .distinct()
            .select(col("did").gt(fj_expr::lit(15)));
        let phys = lower(&plan, &cat).unwrap();
        let d = phys.display();
        // Distinct appears above the filter in the tree.
        let distinct_pos = d.find("Distinct").unwrap();
        let filter_pos = d.find("Filter").unwrap();
        assert!(filter_pos > distinct_pos, "filter below distinct:\n{d}");
        let rows = run(&plan, &cat);
        assert_eq!(rows, vec![tuple![20], tuple![30]]);
    }

    #[test]
    fn or_predicates_stay_as_filters_not_keys() {
        let cat = paper_catalog();
        // An OR of equalities is not an equi-key; the join must fall
        // back to nested loops with the predicate attached.
        let plan = LogicalPlan::scan("Emp", "E").join(
            LogicalPlan::scan("Dept", "D"),
            Some(
                col("E.did")
                    .eq(col("D.did"))
                    .or(col("E.did").eq(fj_expr::lit(99))),
            ),
        );
        let phys = lower(&plan, &cat).unwrap();
        let d = phys.display();
        assert!(d.contains("NestedLoopsJoin"), "{d}");
        let rows = run(&plan, &cat);
        assert_eq!(rows.len(), 5, "OR matches exactly the equi pairs here");
    }

    #[test]
    fn is_null_predicate_executes() {
        let cat = paper_catalog();
        let plan = LogicalPlan::scan("Emp", "E").select(col("E.did").is_null().not());
        let rows = run(&plan, &cat);
        assert_eq!(rows.len(), 5, "no NULL dids in the fixture");
    }

    #[test]
    fn unknown_cte_fails_at_runtime_with_clear_error() {
        let cat = paper_catalog();
        let plan = LogicalPlan::CteRef {
            name: "ghost".into(),
            alias: String::new(),
            schema: fj_storage::Schema::from_pairs(&[("x", fj_storage::DataType::Int)]).into_ref(),
        };
        let phys = lower(&plan, &cat).unwrap();
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let err = phys.execute(&ctx).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn remote_scan_ships_after_filtering() {
        let mut cat = paper_catalog();
        // Move Dept to a remote site.
        let dept = cat.table("Dept").unwrap();
        cat.add_remote_table(dept, fj_algebra::SiteId(2));
        let plan = LogicalPlan::scan("Dept", "D").select(col("D.budget").gt(fj_expr::lit(100_000)));
        let phys = lower(&plan, &cat).unwrap();
        let d = phys.display();
        let ship_pos = d.find("Ship").unwrap();
        let filter_pos = d.find("Filter").unwrap();
        assert!(filter_pos > ship_pos, "filter below (inside) ship:\n{d}");
        let ctx = ExecCtx::new(Arc::new(cat.clone()));
        let r = phys.execute(&ctx).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(ctx.ledger.snapshot().messages, 1);
    }
}
