//! Execution context: catalog, ledger, buffer memory, and the runtime
//! registries for temp tables and Bloom filters.

use crate::broker::{MemoryBroker, MemoryGrant};
use crate::error::ExecError;
use crate::interrupt::{Interrupt, InterruptReason};
use fj_algebra::Catalog;
use fj_storage::{BloomFilter, CostLedger, FaultPlan, PageLayout, SchemaRef, TempStore, Tuple};
use fj_trace::TraceCollector;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default buffer memory, in pages (the `M` of the join formulas).
pub const DEFAULT_MEMORY_PAGES: u64 = 128;

/// A materialized temporary relation (a CTE result: production set,
/// filter set, spooled inner, ...).
#[derive(Debug, Clone)]
pub struct TempTable {
    /// Output schema.
    pub schema: SchemaRef,
    /// The rows.
    pub rows: Arc<Vec<Tuple>>,
    /// Page layout used for I/O charging.
    pub layout: PageLayout,
}

impl TempTable {
    /// Builds a temp table from rows.
    pub fn new(schema: SchemaRef, rows: Vec<Tuple>) -> TempTable {
        let layout = PageLayout::for_schema(&schema);
        TempTable {
            schema,
            rows: Arc::new(rows),
            layout,
        }
    }

    /// Pages occupied.
    pub fn page_count(&self) -> u64 {
        self.layout.pages(self.rows.len() as u64)
    }
}

/// A probe the runtime installs in disk-backed mode so traced
/// executions can attribute buffer-pool traffic to plan nodes: calling
/// it returns the pool's cumulative `(hits, misses)` counters. The
/// interpreter snapshots it around each node exactly like the ledger's
/// `page_reads`, so the closure must be cheap and callable from any
/// thread.
#[derive(Clone)]
pub struct PoolProbe(Arc<dyn Fn() -> (u64, u64) + Send + Sync>);

impl PoolProbe {
    /// Wraps a `(hits, misses)` reader.
    pub fn new(read: impl Fn() -> (u64, u64) + Send + Sync + 'static) -> PoolProbe {
        PoolProbe(Arc::new(read))
    }

    /// The pool's cumulative `(hits, misses)` right now.
    pub fn read(&self) -> (u64, u64) {
        (self.0)()
    }
}

impl fmt::Debug for PoolProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.read();
        f.debug_struct("PoolProbe")
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// Default bound on grace-hash recursive re-partitioning depth.
pub const DEFAULT_SPILL_MAX_DEPTH: usize = 4;

/// The spilling runtime attached to a context when memory governance is
/// enabled: where to put temp partitions, who arbitrates memory grants,
/// and how deep grace-hash recursion may go on skewed partitions.
#[derive(Debug, Clone)]
pub struct SpillCtx {
    /// The fault-injectable temp partition store.
    pub temp: Arc<TempStore>,
    /// The service-wide soft-watermark broker.
    pub broker: Arc<MemoryBroker>,
    /// Bound on grace-hash recursive re-partitioning depth.
    pub max_depth: usize,
}

impl SpillCtx {
    /// A spill context over `temp` and `broker` with the default
    /// recursion bound.
    pub fn new(temp: Arc<TempStore>, broker: Arc<MemoryBroker>) -> SpillCtx {
        SpillCtx {
            temp,
            broker,
            max_depth: DEFAULT_SPILL_MAX_DEPTH,
        }
    }

    /// Overrides the recursion bound (clamped to ≥1).
    pub fn with_max_depth(mut self, depth: usize) -> SpillCtx {
        self.max_depth = depth.max(1);
        self
    }
}

/// Per-query spill activity counters, shared by all operators of one
/// execution (and its intra-query worker threads).
#[derive(Debug, Default)]
pub struct SpillStats {
    /// Operator invocations that spilled (one per spilling operator,
    /// including each grace-hash recursion level).
    pub spills: AtomicU64,
    /// Temp partition/run files written.
    pub partitions: AtomicU64,
    /// Pages written to temp files (by [`PageLayout`] accounting — the
    /// same accounting the ledger and the cost model use).
    pub pages_written: AtomicU64,
    /// Pages read back from temp files.
    pub pages_read: AtomicU64,
}

/// A plain-value snapshot of [`SpillStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillSnapshot {
    /// See [`SpillStats::spills`].
    pub spills: u64,
    /// See [`SpillStats::partitions`].
    pub partitions: u64,
    /// See [`SpillStats::pages_written`].
    pub pages_written: u64,
    /// See [`SpillStats::pages_read`].
    pub pages_read: u64,
}

/// Everything a physical plan needs at runtime.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// The catalog (tables, views, UDFs, network model).
    pub catalog: Arc<Catalog>,
    /// The shared cost ledger.
    pub ledger: Arc<CostLedger>,
    /// Buffer memory in pages — `M` in the BNLJ/hash/sort formulas.
    pub memory_pages: u64,
    /// Intra-query parallelism: worker threads available to parallel
    /// scans and partitioned hash joins. `1` (the default) keeps every
    /// operator on its serial code path. Parallelism never changes the
    /// ledger charges or the output row multiset — only wall-clock time
    /// (see [`crate::ops::parallel`]).
    pub threads: usize,
    /// The query's cooperative interrupt flag. Cloned handles (e.g. a
    /// runtime `Ticket`) can trip it; operators poll it at bounded
    /// intervals via [`ExecCtx::check_interrupt`].
    pub interrupt: Interrupt,
    /// Optional seeded fault plan threaded down to the paged-heap
    /// access paths (`Table::scan_checked` / `fetch_checked`).
    pub faults: Option<Arc<FaultPlan>>,
    /// Per-query trace collector. `None` (the default) keeps tracing
    /// zero-cost: [`PhysPlan::execute`](crate::PhysPlan::execute) takes
    /// its untraced fast path and `check_interrupt` skips the poll
    /// counter.
    pub(crate) tracer: Option<Arc<TraceCollector>>,
    /// Buffer-pool counter probe for trace attribution (disk-backed
    /// mode only; `None` leaves every trace's pool counters at 0).
    pub(crate) pool_probe: Option<PoolProbe>,
    /// Governor: maximum rows any execution may emit, summed across
    /// all plan nodes (`u64::MAX` = unlimited).
    row_budget: u64,
    /// Governor: maximum pages the query may materialize (temp tables,
    /// sort runs, grace-hash partitions; `u64::MAX` = unlimited).
    memory_budget_pages: u64,
    /// Spilling runtime; `None` (the default) keeps every operator on
    /// its seed in-memory code path with simulated spill charges.
    spill: Option<SpillCtx>,
    spill_stats: Arc<SpillStats>,
    rows_emitted: Arc<AtomicU64>,
    pages_materialized: Arc<AtomicU64>,
    temps: Arc<RwLock<HashMap<String, TempTable>>>,
    blooms: Arc<RwLock<HashMap<String, Arc<BloomFilter>>>>,
}

impl ExecCtx {
    /// A context over `catalog` with a fresh ledger and default memory.
    pub fn new(catalog: Arc<Catalog>) -> ExecCtx {
        ExecCtx {
            catalog,
            ledger: CostLedger::new(),
            memory_pages: DEFAULT_MEMORY_PAGES,
            threads: 1,
            interrupt: Interrupt::new(),
            faults: None,
            tracer: None,
            pool_probe: None,
            row_budget: u64::MAX,
            memory_budget_pages: u64::MAX,
            spill: None,
            spill_stats: Arc::new(SpillStats::default()),
            rows_emitted: Arc::new(AtomicU64::new(0)),
            pages_materialized: Arc::new(AtomicU64::new(0)),
            temps: Arc::new(RwLock::new(HashMap::new())),
            blooms: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Overrides the buffer memory size.
    pub fn with_memory_pages(mut self, pages: u64) -> ExecCtx {
        self.memory_pages = pages.max(3); // joins need ≥3 buffer pages
        self
    }

    /// Overrides the intra-query worker-thread count (clamped to ≥1).
    pub fn with_threads(mut self, threads: usize) -> ExecCtx {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an externally held interrupt handle (the runtime hands
    /// the same handle to the submitter's `Ticket`).
    pub fn with_interrupt(mut self, interrupt: Interrupt) -> ExecCtx {
        self.interrupt = interrupt;
        self
    }

    /// Attaches a seeded fault plan to the storage access paths.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> ExecCtx {
        self.faults = Some(faults);
        self
    }

    /// Attaches a per-query trace collector: every plan node then
    /// records an `OpStats` entry, and interrupt polls are counted.
    pub fn with_tracer(mut self, tracer: Arc<TraceCollector>) -> ExecCtx {
        self.tracer = Some(tracer);
        self
    }

    /// The attached trace collector, when tracing is on.
    pub fn tracer(&self) -> Option<&Arc<TraceCollector>> {
        self.tracer.as_ref()
    }

    /// Attaches a buffer-pool counter probe so traces in disk-backed
    /// mode report per-operator pool hits and misses.
    pub fn with_pool_probe(mut self, probe: PoolProbe) -> ExecCtx {
        self.pool_probe = Some(probe);
        self
    }

    /// The attached pool probe, if the service is disk-backed.
    pub fn pool_probe(&self) -> Option<&PoolProbe> {
        self.pool_probe.as_ref()
    }

    /// Caps the total rows the query may emit across all plan nodes.
    pub fn with_row_budget(mut self, rows: u64) -> ExecCtx {
        self.row_budget = rows;
        self
    }

    /// Caps the pages the query may materialize (temps, sort runs,
    /// grace-hash partitions).
    pub fn with_memory_budget_pages(mut self, pages: u64) -> ExecCtx {
        self.memory_budget_pages = pages;
        self
    }

    /// Enables spilling: operators consult the broker before pinning
    /// memory-sized state and degrade to temp-file partitioning when
    /// denied (or when the build side exceeds buffer memory outright).
    pub fn with_spill(mut self, spill: SpillCtx) -> ExecCtx {
        self.spill = Some(spill);
        self
    }

    /// The spilling runtime, when enabled.
    pub fn spill_ctx(&self) -> Option<&SpillCtx> {
        self.spill.as_ref()
    }

    /// Decides whether an operator about to pin `pages` of state should
    /// spill. `None` when spilling is disabled (seed behaviour: run in
    /// memory with simulated charges). Otherwise:
    ///
    /// * `Err(())`-like `(true, None)` — spill: either the state
    ///   exceeds buffer memory (`M`, the same trigger the cost model's
    ///   simulated grace/sort charges key on) or the broker denied the
    ///   grant (service-wide soft watermark).
    /// * `(false, Some(grant))` — run in memory, holding the grant for
    ///   the operator's lifetime.
    pub fn spill_decision(&self, pages: u64) -> Option<(bool, Option<MemoryGrant>)> {
        let spill = self.spill.as_ref()?;
        if pages > self.memory_pages {
            return Some((true, None));
        }
        match spill.broker.try_reserve(pages) {
            Some(grant) => Some((false, Some(grant))),
            None => Some((true, None)),
        }
    }

    /// Per-query spill counters.
    pub fn spill_stats(&self) -> &SpillStats {
        &self.spill_stats
    }

    /// Snapshot of the per-query spill counters.
    pub fn spill_snapshot(&self) -> SpillSnapshot {
        SpillSnapshot {
            spills: self.spill_stats.spills.load(Ordering::Relaxed),
            partitions: self.spill_stats.partitions.load(Ordering::Relaxed),
            pages_written: self.spill_stats.pages_written.load(Ordering::Relaxed),
            pages_read: self.spill_stats.pages_read.load(Ordering::Relaxed),
        }
    }

    /// Polls the interrupt flag: `Err(Interrupted)` once any holder has
    /// tripped it. Operators call this once per plan node and every
    /// [`crate::INTERRUPT_CHECK_INTERVAL`] tuples inside hot loops.
    #[inline]
    pub fn check_interrupt(&self) -> Result<(), ExecError> {
        if let Some(t) = &self.tracer {
            t.note_poll();
        }
        match self.interrupt.tripped() {
            None => Ok(()),
            Some(reason) => Err(ExecError::Interrupted(reason)),
        }
    }

    /// Governor accounting: `n` rows emitted by a plan node. Trips the
    /// interrupt with [`InterruptReason::RowLimit`] when the cumulative
    /// count crosses the row budget and reports the trip immediately.
    pub fn charge_output_rows(&self, n: u64) -> Result<(), ExecError> {
        let total = self.rows_emitted.fetch_add(n, Ordering::Relaxed) + n;
        if total > self.row_budget {
            self.interrupt.trip(InterruptReason::RowLimit);
            return self.check_interrupt();
        }
        Ok(())
    }

    /// Governor accounting: `pages` materialized (spooled temp, sort
    /// run, grace partition). Trips the interrupt with
    /// [`InterruptReason::MemoryBudget`] past the budget. Unlike
    /// [`ExecCtx::charge_output_rows`] this does not return an error —
    /// call sites are mid-materialization and the next bounded poll
    /// surfaces the trip — so infallible paths stay infallible.
    pub fn charge_materialized_pages(&self, pages: u64) {
        let total = self.pages_materialized.fetch_add(pages, Ordering::Relaxed) + pages;
        if total > self.memory_budget_pages {
            self.interrupt.trip(InterruptReason::MemoryBudget);
        }
    }

    /// Total rows emitted so far across all plan nodes.
    pub fn rows_emitted(&self) -> u64 {
        self.rows_emitted.load(Ordering::Relaxed)
    }

    /// Total pages materialized so far.
    pub fn pages_materialized(&self) -> u64 {
        self.pages_materialized.load(Ordering::Relaxed)
    }

    /// Registers (or replaces) a temp table. Charges the page writes of
    /// materialization to the ledger and the governor's memory budget.
    pub fn register_temp(&self, name: impl Into<String>, table: TempTable) {
        let pages = table.page_count();
        self.ledger.write_pages(pages);
        self.charge_materialized_pages(pages);
        self.temps.write().insert(name.into(), table);
    }

    /// Looks up a temp table.
    pub fn temp(&self, name: &str) -> Result<TempTable, ExecError> {
        self.temps
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::MissingRuntimeObject(format!("temp table '{name}'")))
    }

    /// Removes a temp table (end of a `With` scope).
    pub fn drop_temp(&self, name: &str) {
        self.temps.write().remove(name);
    }

    /// Registers a Bloom filter under `name`.
    pub fn register_bloom(&self, name: impl Into<String>, bloom: BloomFilter) {
        self.blooms.write().insert(name.into(), Arc::new(bloom));
    }

    /// Looks up a Bloom filter.
    pub fn bloom(&self, name: &str) -> Result<Arc<BloomFilter>, ExecError> {
        self.blooms
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::MissingRuntimeObject(format!("bloom filter '{name}'")))
    }

    /// Removes a Bloom filter.
    pub fn drop_bloom(&self, name: &str) {
        self.blooms.write().remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{tuple, DataType, Schema};

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    #[test]
    fn temp_registry_roundtrip_and_write_charge() {
        let c = ctx();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let t = TempTable::new(schema, vec![tuple![1], tuple![2]]);
        let pages = t.page_count();
        assert_eq!(pages, 1);
        c.register_temp("p", t);
        assert_eq!(c.ledger.snapshot().page_writes, pages);
        assert_eq!(c.temp("p").unwrap().rows.len(), 2);
        c.drop_temp("p");
        assert!(c.temp("p").is_err());
    }

    #[test]
    fn bloom_registry_roundtrip() {
        let c = ctx();
        let mut b = BloomFilter::new(128, 2);
        b.insert(&fj_storage::Value::Int(5));
        c.register_bloom("f", b);
        assert!(c.bloom("f").unwrap().contains(&fj_storage::Value::Int(5)));
        c.drop_bloom("f");
        assert!(c.bloom("f").is_err());
    }

    #[test]
    fn memory_clamped_to_minimum() {
        let c = ctx().with_memory_pages(0);
        assert_eq!(c.memory_pages, 3);
    }

    #[test]
    fn empty_temp_zero_pages() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let t = TempTable::new(schema, vec![]);
        assert_eq!(t.page_count(), 0);
    }

    #[test]
    fn check_interrupt_surfaces_the_tripped_reason() {
        let c = ctx();
        assert!(c.check_interrupt().is_ok());
        c.interrupt.trip(InterruptReason::Cancelled);
        assert_eq!(
            c.check_interrupt(),
            Err(ExecError::Interrupted(InterruptReason::Cancelled))
        );
    }

    #[test]
    fn row_budget_trips_row_limit() {
        let c = ctx().with_row_budget(100);
        assert!(c.charge_output_rows(60).is_ok());
        assert_eq!(
            c.charge_output_rows(41),
            Err(ExecError::Interrupted(InterruptReason::RowLimit))
        );
        assert_eq!(c.rows_emitted(), 101);
    }

    #[test]
    fn memory_budget_trips_on_temp_registration() {
        let c = ctx().with_memory_budget_pages(0);
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        c.register_temp("p", TempTable::new(schema, vec![tuple![1]]));
        assert_eq!(
            c.check_interrupt(),
            Err(ExecError::Interrupted(InterruptReason::MemoryBudget))
        );
        assert_eq!(c.pages_materialized(), 1);
    }

    #[test]
    fn unlimited_budgets_never_trip() {
        let c = ctx();
        assert!(c.charge_output_rows(u64::MAX / 2).is_ok());
        c.charge_materialized_pages(u64::MAX / 2);
        assert!(c.check_interrupt().is_ok());
    }
}
