//! Execution context: catalog, ledger, buffer memory, and the runtime
//! registries for temp tables and Bloom filters.

use crate::error::ExecError;
use fj_algebra::Catalog;
use fj_storage::{BloomFilter, CostLedger, PageLayout, SchemaRef, Tuple};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Default buffer memory, in pages (the `M` of the join formulas).
pub const DEFAULT_MEMORY_PAGES: u64 = 128;

/// A materialized temporary relation (a CTE result: production set,
/// filter set, spooled inner, ...).
#[derive(Debug, Clone)]
pub struct TempTable {
    /// Output schema.
    pub schema: SchemaRef,
    /// The rows.
    pub rows: Arc<Vec<Tuple>>,
    /// Page layout used for I/O charging.
    pub layout: PageLayout,
}

impl TempTable {
    /// Builds a temp table from rows.
    pub fn new(schema: SchemaRef, rows: Vec<Tuple>) -> TempTable {
        let layout = PageLayout::for_schema(&schema);
        TempTable {
            schema,
            rows: Arc::new(rows),
            layout,
        }
    }

    /// Pages occupied.
    pub fn page_count(&self) -> u64 {
        self.layout.pages(self.rows.len() as u64)
    }
}

/// Everything a physical plan needs at runtime.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// The catalog (tables, views, UDFs, network model).
    pub catalog: Arc<Catalog>,
    /// The shared cost ledger.
    pub ledger: Arc<CostLedger>,
    /// Buffer memory in pages — `M` in the BNLJ/hash/sort formulas.
    pub memory_pages: u64,
    /// Intra-query parallelism: worker threads available to parallel
    /// scans and partitioned hash joins. `1` (the default) keeps every
    /// operator on its serial code path. Parallelism never changes the
    /// ledger charges or the output row multiset — only wall-clock time
    /// (see [`crate::ops::parallel`]).
    pub threads: usize,
    temps: Arc<RwLock<HashMap<String, TempTable>>>,
    blooms: Arc<RwLock<HashMap<String, Arc<BloomFilter>>>>,
}

impl ExecCtx {
    /// A context over `catalog` with a fresh ledger and default memory.
    pub fn new(catalog: Arc<Catalog>) -> ExecCtx {
        ExecCtx {
            catalog,
            ledger: CostLedger::new(),
            memory_pages: DEFAULT_MEMORY_PAGES,
            threads: 1,
            temps: Arc::new(RwLock::new(HashMap::new())),
            blooms: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Overrides the buffer memory size.
    pub fn with_memory_pages(mut self, pages: u64) -> ExecCtx {
        self.memory_pages = pages.max(3); // joins need ≥3 buffer pages
        self
    }

    /// Overrides the intra-query worker-thread count (clamped to ≥1).
    pub fn with_threads(mut self, threads: usize) -> ExecCtx {
        self.threads = threads.max(1);
        self
    }

    /// Registers (or replaces) a temp table. Charges the page writes of
    /// materialization to the ledger.
    pub fn register_temp(&self, name: impl Into<String>, table: TempTable) {
        self.ledger.write_pages(table.page_count());
        self.temps.write().insert(name.into(), table);
    }

    /// Looks up a temp table.
    pub fn temp(&self, name: &str) -> Result<TempTable, ExecError> {
        self.temps
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::MissingRuntimeObject(format!("temp table '{name}'")))
    }

    /// Removes a temp table (end of a `With` scope).
    pub fn drop_temp(&self, name: &str) {
        self.temps.write().remove(name);
    }

    /// Registers a Bloom filter under `name`.
    pub fn register_bloom(&self, name: impl Into<String>, bloom: BloomFilter) {
        self.blooms.write().insert(name.into(), Arc::new(bloom));
    }

    /// Looks up a Bloom filter.
    pub fn bloom(&self, name: &str) -> Result<Arc<BloomFilter>, ExecError> {
        self.blooms
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::MissingRuntimeObject(format!("bloom filter '{name}'")))
    }

    /// Removes a Bloom filter.
    pub fn drop_bloom(&self, name: &str) {
        self.blooms.write().remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{tuple, DataType, Schema};

    fn ctx() -> ExecCtx {
        ExecCtx::new(Arc::new(Catalog::new()))
    }

    #[test]
    fn temp_registry_roundtrip_and_write_charge() {
        let c = ctx();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let t = TempTable::new(schema, vec![tuple![1], tuple![2]]);
        let pages = t.page_count();
        assert_eq!(pages, 1);
        c.register_temp("p", t);
        assert_eq!(c.ledger.snapshot().page_writes, pages);
        assert_eq!(c.temp("p").unwrap().rows.len(), 2);
        c.drop_temp("p");
        assert!(c.temp("p").is_err());
    }

    #[test]
    fn bloom_registry_roundtrip() {
        let c = ctx();
        let mut b = BloomFilter::new(128, 2);
        b.insert(&fj_storage::Value::Int(5));
        c.register_bloom("f", b);
        assert!(c.bloom("f").unwrap().contains(&fj_storage::Value::Int(5)));
        c.drop_bloom("f");
        assert!(c.bloom("f").is_err());
    }

    #[test]
    fn memory_clamped_to_minimum() {
        let c = ctx().with_memory_pages(0);
        assert_eq!(c.memory_pages, 3);
    }

    #[test]
    fn empty_temp_zero_pages() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).into_ref();
        let t = TempTable::new(schema, vec![]);
        assert_eq!(t.page_count(), 0);
    }
}
