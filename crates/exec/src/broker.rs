//! The memory broker: soft-watermark grant accounting above the hard
//! memory budget.
//!
//! The governor's `memory_budget_pages` is a kill-switch: crossing it
//! trips [`crate::InterruptReason::MemoryBudget`] and the query dies.
//! The broker sits *below* that line. Operators that are about to pin a
//! build side, sort input, or aggregation table ask it to reserve the
//! pages first; a denial — the service-wide soft watermark would be
//! crossed — is a signal to degrade to the spilling code path instead
//! of pinning the memory. Reservations are RAII ([`MemoryGrant`]
//! releases on drop), so a query that errors, cancels, or panics
//! mid-operator never strands its grant.
//!
//! The broker never blocks and never fails a query: every denial has a
//! disk-backed fallback. It converts "the service is over its memory
//! comfort line" into "some queries run slower", which is the entire
//! point of the memory-governance layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Service-wide soft-watermark page accounting. Shared across all
/// concurrently executing queries of a service.
#[derive(Debug)]
pub struct MemoryBroker {
    soft_limit_pages: u64,
    in_use: AtomicU64,
    granted: AtomicU64,
    denied: AtomicU64,
    peak_in_use: AtomicU64,
}

impl MemoryBroker {
    /// A broker with `soft_limit_pages` of grantable memory (clamped to
    /// at least one page so a grant is always possible at idle).
    pub fn new(soft_limit_pages: u64) -> Arc<MemoryBroker> {
        Arc::new(MemoryBroker {
            soft_limit_pages: soft_limit_pages.max(1),
            in_use: AtomicU64::new(0),
            granted: AtomicU64::new(0),
            denied: AtomicU64::new(0),
            peak_in_use: AtomicU64::new(0),
        })
    }

    /// Tries to reserve `pages` against the soft watermark. `None`
    /// means the watermark would be crossed — the caller should spill.
    /// A zero-page reservation always succeeds (nothing to pin).
    pub fn try_reserve(self: &Arc<Self>, pages: u64) -> Option<MemoryGrant> {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            if current.saturating_add(pages) > self.soft_limit_pages {
                self.denied.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.in_use.compare_exchange_weak(
                current,
                current + pages,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.granted.fetch_add(1, Ordering::Relaxed);
                    self.peak_in_use
                        .fetch_max(current + pages, Ordering::Relaxed);
                    return Some(MemoryGrant {
                        broker: Arc::clone(self),
                        pages,
                    });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// The soft watermark, in pages.
    pub fn soft_limit_pages(&self) -> u64 {
        self.soft_limit_pages
    }

    /// Pages currently reserved.
    pub fn in_use_pages(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Reservations granted so far.
    pub fn grants(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Reservations denied so far (each denial is one spill signal).
    pub fn denials(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved pages.
    pub fn peak_in_use_pages(&self) -> u64 {
        self.peak_in_use.load(Ordering::Relaxed)
    }
}

/// An RAII page reservation; releases its pages back on drop.
#[derive(Debug)]
pub struct MemoryGrant {
    broker: Arc<MemoryBroker>,
    pages: u64,
}

impl MemoryGrant {
    /// Pages held by this grant.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        self.broker.in_use.fetch_sub(self.pages, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_watermark_then_denies() {
        let b = MemoryBroker::new(10);
        let g1 = b.try_reserve(6).unwrap();
        assert_eq!(b.in_use_pages(), 6);
        assert!(b.try_reserve(5).is_none());
        assert_eq!(b.denials(), 1);
        let g2 = b.try_reserve(4).unwrap();
        assert_eq!(b.in_use_pages(), 10);
        drop(g1);
        assert_eq!(b.in_use_pages(), 4);
        drop(g2);
        assert_eq!(b.in_use_pages(), 0);
        assert_eq!(b.grants(), 2);
        assert_eq!(b.peak_in_use_pages(), 10);
    }

    #[test]
    fn zero_page_reservation_always_succeeds() {
        let b = MemoryBroker::new(1);
        let _g = b.try_reserve(1).unwrap();
        assert!(b.try_reserve(0).is_some());
    }

    #[test]
    fn watermark_clamped_to_one() {
        let b = MemoryBroker::new(0);
        assert_eq!(b.soft_limit_pages(), 1);
        assert!(b.try_reserve(1).is_some());
    }

    #[test]
    fn concurrent_reserve_release_settles_to_zero() {
        let b = MemoryBroker::new(64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Some(g) = b.try_reserve(3) {
                            assert!(b.in_use_pages() <= 64);
                            drop(g);
                        }
                    }
                });
            }
        });
        assert_eq!(b.in_use_pages(), 0);
    }
}
