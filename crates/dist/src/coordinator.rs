//! The distributed coordinator: scatters hash-partitioned base tables
//! across `fj-net` shards at deploy time, reduces them per query with a
//! selectable shipping strategy, rebuilds the reduced tables locally in
//! original row order, and runs the final join through the ordinary
//! optimizer — so a partitioned run is byte-identical (as a sorted row
//! multiset) to the serial oracle.
//!
//! Fault model: every per-partition exchange walks the partition's
//! replica list in [`ShardMap`] order and fails over on retryable
//! refusals (drain, shed) and transport failures. Shards are stateless
//! after scatter — a replica holds identical partition rows forever —
//! so replaying a request verbatim against the next replica is always
//! safe, and one shard entering `begin_drain` mid-query is invisible to
//! the client.

use crate::error::DistError;
use crate::plan::{partition_table_name, AliasInfo, DistPlan, Edge, ORD_COLUMN};
use crate::strategy::{predict_all, CostPrediction, ShipStrategy};
use fj_algebra::{Catalog, FromItem, JoinQuery, PartitionMap};
use fj_cluster::ShardMap;
use fj_core::{Database, QueryResult};
use fj_exec::ops::exchange::merge_by_ordinal;
use fj_exec::{ExecCtx, Interrupt, InterruptReason};
use fj_expr::{col, Expr};
use fj_net::{
    Canceller, Client, FragmentRequest, KeyFilter, NetError, ScatterRequest, SemijoinAck,
    SemijoinRequest, WireBytes,
};
use fj_optimizer::OptimizerConfig;
use fj_storage::{BloomFilter, Column, DataType, Schema, SchemaRef, Table, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Shard-side deadline for each fragment.
    pub fragment_deadline: Duration,
    /// Client-side wait bound for scatter/semijoin exchanges.
    pub io_timeout: Duration,
    /// Target false-positive rate for shipped Bloom filters.
    pub bloom_fp: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            fragment_deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
            bloom_fp: 0.01,
        }
    }
}

/// Wire accounting and outcome counters for one deploy or one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Request frames sent (including failover retries).
    pub messages: u64,
    /// Payload+header bytes put on the wire.
    pub bytes_sent: u64,
    /// Payload+header bytes read off the wire.
    pub bytes_received: u64,
    /// Rows gathered from shards (before ordinal dedup).
    pub rows_gathered: u64,
    /// Per-partition failovers to a later replica.
    pub failovers: u64,
}

impl DistStats {
    fn add_wire(&mut self, w: WireBytes) {
        self.messages += 1;
        self.bytes_sent += w.sent;
        self.bytes_received += w.received;
    }

    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Outcome of one distributed query.
#[derive(Debug)]
pub struct DistResult {
    /// The final result, produced by the ordinary local optimizer over
    /// the reduced tables — same shape as a serial [`QueryResult`].
    pub result: QueryResult,
    /// The shipping strategy that actually ran.
    pub strategy: ShipStrategy,
    /// Wire accounting for this query (scatter excluded — that's
    /// deploy-time).
    pub stats: DistStats,
    /// The cost model's prediction for the chosen strategy, for
    /// predicted-vs-actual reconciliation.
    pub predicted: Option<CostPrediction>,
}

/// A handle that tears a distributed query down from another thread:
/// trips the coordinator's interrupt (stopping it between exchanges)
/// and cancels every fragment currently in flight on a shard.
#[derive(Clone)]
pub struct DistHandle {
    interrupt: Arc<Interrupt>,
    cancellers: Arc<Mutex<Vec<Canceller>>>,
}

impl DistHandle {
    /// Trips the interrupt and cancels in-flight fragments.
    pub fn cancel(&self) {
        self.interrupt.trip(InterruptReason::Cancelled);
        let mut in_flight = self.cancellers.lock().unwrap();
        for c in in_flight.iter_mut() {
            let _ = c.cancel();
        }
    }
}

/// A callback invoked at coordinator phase boundaries (used by tests
/// to inject faults mid-query).
pub type PhaseHook = Box<dyn Fn(&str) + Send + Sync>;

/// The coordinator. Build with [`DistCoordinator::deploy`]; run queries
/// with [`DistCoordinator::execute_with_config`].
pub struct DistCoordinator {
    map: ShardMap,
    catalog: Arc<Catalog>,
    config: DistConfig,
    interrupt: Arc<Interrupt>,
    cancellers: Arc<Mutex<Vec<Canceller>>>,
    phase_hook: Option<PhaseHook>,
    /// Wire accounting for the deploy-time scatter.
    pub deploy_stats: DistStats,
}

impl DistCoordinator {
    /// Hash-partitions every base table of `catalog` and scatters the
    /// partitions to their shards (each partition to every replica in
    /// the [`ShardMap`]). The partition column comes from the catalog's
    /// [`Catalog::partitioning`] entry when present, else column 0; the
    /// shard count always follows the map.
    pub fn deploy(
        catalog: Catalog,
        map: ShardMap,
        config: DistConfig,
    ) -> Result<DistCoordinator, DistError> {
        let mut catalog = catalog;
        let names = catalog.relation_names();
        let mut deploy_stats = DistStats::default();
        // Resolve base tables first so partitioning metadata settles
        // before the catalog is frozen behind an Arc.
        let mut tables = Vec::new();
        for name in names {
            if let Ok(t) = catalog.table(&name) {
                let pmap = catalog
                    .partitioning(&name)
                    .map(|m| PartitionMap::new(m.column, map.shards()))
                    .unwrap_or_else(|| PartitionMap::new(0, map.shards()));
                if pmap.column >= t.schema().arity() {
                    return Err(DistError::Unsupported(format!(
                        "partition column {} out of range for table {name}",
                        pmap.column
                    )));
                }
                if t.schema().columns().iter().any(|c| c.name == ORD_COLUMN) {
                    return Err(DistError::Unsupported(format!(
                        "table {name} already has a column named {ORD_COLUMN}"
                    )));
                }
                catalog.set_partitioning(&name, pmap);
                tables.push((name, t, pmap));
            }
        }
        let coordinator = DistCoordinator {
            map,
            catalog: Arc::new(catalog),
            config,
            interrupt: Arc::new(Interrupt::new()),
            cancellers: Arc::new(Mutex::new(Vec::new())),
            phase_hook: None,
            deploy_stats,
        };
        let mut stats = DistStats::default();
        for (name, table, pmap) in tables {
            let part_schema = part_schema(table.schema())?;
            let mut parts: Vec<Vec<Tuple>> =
                (0..coordinator.map.shards()).map(|_| Vec::new()).collect();
            for (ord, row) in table.rows().iter().enumerate() {
                let shard = pmap.shard_of(row.value(pmap.column)) as usize;
                let mut values: Vec<Value> =
                    (0..row.arity()).map(|i| row.value(i).clone()).collect();
                values.push(Value::Int(ord as i64));
                parts[shard].push(Tuple::new(values));
            }
            for (p, rows) in parts.into_iter().enumerate() {
                let req = ScatterRequest {
                    table: partition_table_name(&name, p as u32),
                    schema: part_schema.clone(),
                    rows,
                };
                // Deploy writes to *every* replica: that is what makes
                // per-query failover safe later.
                for addr in coordinator.map.replicas(p as u32) {
                    let mut client = Client::connect(addr).map_err(DistError::Net)?;
                    let (_ack, wire) = client
                        .scatter(&req, coordinator.config.io_timeout)
                        .map_err(DistError::Net)?;
                    stats.add_wire(wire);
                }
            }
        }
        deploy_stats = stats;
        Ok(DistCoordinator {
            deploy_stats,
            ..coordinator
        })
    }

    /// The coordinator's full (unreduced) catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// A teardown handle for this coordinator's queries.
    pub fn handle(&self) -> DistHandle {
        DistHandle {
            interrupt: self.interrupt.clone(),
            cancellers: self.cancellers.clone(),
        }
    }

    /// Installs a callback invoked at phase boundaries
    /// (`"reduce:<alias>"`, `"rebuild"`, `"local-join"`). The chaos and
    /// differential tests use this to drain a shard mid-query.
    pub fn set_phase_hook(&mut self, hook: PhaseHook) {
        self.phase_hook = Some(hook);
    }

    fn phase(&self, name: &str) {
        if let Some(hook) = &self.phase_hook {
            hook(name);
        }
    }

    fn check_interrupt(&self) -> Result<(), DistError> {
        match self.interrupt.tripped() {
            Some(reason) => Err(DistError::Interrupted(reason)),
            None => Ok(()),
        }
    }

    /// Executes `query` with the default optimizer config and automatic
    /// strategy selection.
    pub fn execute(&self, query: &JoinQuery) -> Result<DistResult, DistError> {
        self.execute_with_config(query, OptimizerConfig::default(), ShipStrategy::Auto)
    }

    /// Executes `query`: reduces every base table with `strategy`,
    /// rebuilds the reduced tables in original row order, and runs the
    /// final join locally under `config`.
    pub fn execute_with_config(
        &self,
        query: &JoinQuery,
        config: OptimizerConfig,
        strategy: ShipStrategy,
    ) -> Result<DistResult, DistError> {
        self.check_interrupt()?;
        let plan = DistPlan::analyze(query, &self.catalog, self.map.shards())?;
        let predictions = predict_all(
            &plan,
            &self.catalog,
            self.map.shards(),
            self.config.bloom_fp,
        );
        let effective = match strategy {
            ShipStrategy::Auto => predictions
                .first()
                .map(|p| p.strategy)
                .unwrap_or(ShipStrategy::ShipWhole),
            ShipStrategy::FullReducer if !plan.is_acyclic() => {
                return Err(DistError::Unsupported(
                    "full reducer requires an acyclic equi-join graph".into(),
                ))
            }
            s => s,
        };
        let predicted = predictions
            .iter()
            .find(|p| p.strategy == effective)
            .copied();

        let mut stats = DistStats::default();
        let reduced = match effective {
            ShipStrategy::ShipWhole => self.reduce_ship_whole(&mut stats, &plan)?,
            ShipStrategy::FetchMatches => {
                self.reduce_driven(&mut stats, &plan, Mode::FetchMatches)?
            }
            ShipStrategy::Semijoin => self.reduce_driven(&mut stats, &plan, Mode::Semijoin)?,
            ShipStrategy::BloomSemijoin => self.reduce_driven(&mut stats, &plan, Mode::Bloom)?,
            ShipStrategy::FullReducer => self.reduce_full(&mut stats, &plan)?,
            ShipStrategy::Auto => unreachable!(),
        };

        self.phase("rebuild");
        self.check_interrupt()?;
        let local = self.rebuild(&plan, reduced)?;
        self.phase("local-join");
        self.check_interrupt()?;
        let db = Database::with_catalog(local);
        let result = db.execute_with_config(query, config)?;
        Ok(DistResult {
            result,
            strategy: effective,
            stats,
            predicted,
        })
    }

    // ------------------------------------------------- reductions

    /// Ship every partition of every alias whole (modulo pushed local
    /// predicates).
    fn reduce_ship_whole(
        &self,
        stats: &mut DistStats,
        plan: &DistPlan,
    ) -> Result<Vec<Vec<Vec<Tuple>>>, DistError> {
        plan.aliases
            .iter()
            .map(|info| self.gather_whole(stats, info))
            .collect()
    }

    /// Driver-based reduction shared by fetch-matches and the semijoin
    /// variants: gather the smallest table whole, then walk the
    /// equi-join graph outward, reducing each alias by the keys its
    /// already-gathered neighbors actually contain.
    fn reduce_driven(
        &self,
        stats: &mut DistStats,
        plan: &DistPlan,
        mode: Mode,
    ) -> Result<Vec<Vec<Vec<Tuple>>>, DistError> {
        let driver = plan.driver(&self.catalog);
        let order = plan.reduction_order(driver);
        let mut reduced: Vec<Option<Vec<Vec<Tuple>>>> = vec![None; plan.aliases.len()];
        reduced[driver] = Some(self.gather_whole(stats, &plan.aliases[driver])?);
        for (v, edges) in &order[1..] {
            let info = &plan.aliases[*v];
            if edges.is_empty() {
                reduced[*v] = Some(self.gather_whole(stats, info)?);
                continue;
            }
            self.phase(&format!("reduce:{}", info.alias));
            let parts = match mode {
                Mode::FetchMatches => {
                    // Fetch by the first incoming edge only; extra
                    // edges still hold at the final local join.
                    let edge = &edges[0];
                    self.fetch_matches(stats, plan, &reduced, info, *v, edge)?
                }
                Mode::Semijoin | Mode::Bloom => {
                    // Semijoin against *every* incoming edge at once —
                    // filters are conjunctive on the shard.
                    let filters =
                        self.filters_from_edges(plan, &reduced, *v, edges, mode == Mode::Bloom)?;
                    self.semijoin_rows(stats, info, filters)?
                }
            };
            reduced[*v] = Some(parts);
        }
        Ok(reduced.into_iter().map(|r| r.unwrap_or_default()).collect())
    }

    /// Yannakakis full reducer: an up sweep shipping distinct key sets
    /// from the leaves toward the root, then a down sweep from the root
    /// back out — after which every gathered row joins into the result.
    fn reduce_full(
        &self,
        stats: &mut DistStats,
        plan: &DistPlan,
    ) -> Result<Vec<Vec<Vec<Tuple>>>, DistError> {
        let n = plan.aliases.len();
        let mut reduced: Vec<Option<Vec<Vec<Tuple>>>> = vec![None; n];
        // child_filters[v]: the up-sweep filters v accumulated from its
        // subtree, reused on the down sweep.
        let mut child_filters: Vec<Vec<(String, KeyFilter)>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        for seed in 0..n {
            if visited[seed] {
                continue;
            }
            if plan.edges_of(seed).next().is_none() {
                visited[seed] = true;
                reduced[seed] = Some(self.gather_whole(stats, &plan.aliases[seed])?);
                continue;
            }
            // Root the sweep at the component's largest table: key sets
            // then flow from small relations toward the big one, and
            // the big one never ships its own keys anywhere.
            let root = component_members(plan, seed)
                .into_iter()
                .max_by_key(|&v| {
                    self.catalog
                        .table(&plan.aliases[v].table)
                        .map(|t| t.row_count())
                        .unwrap_or(0)
                })
                .unwrap_or(seed);
            // Up sweep (iterative post-order to keep borrowck simple).
            let postorder = tree_postorder(plan, root, &mut visited);
            for &(v, parent) in &postorder {
                self.phase(&format!("reduce:{}", plan.aliases[v].alias));
                if let Some(parent) = parent {
                    let edge = plan
                        .edges_of(v)
                        .find(|e| e.other(v) == parent)
                        .expect("tree edge")
                        .clone();
                    // Ship one distinct key set up per key column.
                    for (my_col, parent_col) in edge.keys_from(v) {
                        let keys = self.semijoin_keys(
                            stats,
                            &plan.aliases[v],
                            child_filters[v].clone(),
                            my_col,
                        )?;
                        child_filters[parent].push((
                            AliasInfo::base_col(parent_col).to_string(),
                            KeyFilter::Exact(keys),
                        ));
                    }
                } else {
                    // Root: fully filtered by its subtree; gather rows.
                    reduced[v] = Some(self.semijoin_rows(
                        stats,
                        &plan.aliases[v],
                        child_filters[v].clone(),
                    )?);
                }
            }
            // Down sweep (reverse post-order = parent before child).
            for &(v, parent) in postorder.iter().rev() {
                let Some(parent) = parent else { continue };
                let edge = plan
                    .edges_of(v)
                    .find(|e| e.other(v) == parent)
                    .expect("tree edge")
                    .clone();
                let parent_rows = reduced[parent].as_ref().expect("parent reduced first");
                let mut filters = child_filters[v].clone();
                for (my_col, parent_col) in edge.keys_from(v) {
                    let idx = plan.aliases[parent].col_index(parent_col)?;
                    let keys: BTreeSet<Value> = parent_rows
                        .iter()
                        .flatten()
                        .map(|row| row.value(idx).clone())
                        .collect();
                    filters.push((
                        AliasInfo::base_col(my_col).to_string(),
                        KeyFilter::Exact(keys.into_iter().collect()),
                    ));
                }
                reduced[v] = Some(self.semijoin_rows(stats, &plan.aliases[v], filters)?);
            }
        }
        Ok(reduced.into_iter().map(|r| r.unwrap_or_default()).collect())
    }

    // ------------------------------------------------- primitives

    /// Gathers every partition of `info`'s table whole (with its local
    /// predicate pushed down), one fragment per partition.
    fn gather_whole(
        &self,
        stats: &mut DistStats,
        info: &AliasInfo,
    ) -> Result<Vec<Vec<Tuple>>, DistError> {
        self.phase(&format!("gather:{}", info.alias));
        let mut parts = Vec::with_capacity(self.map.shards() as usize);
        for p in 0..self.map.shards() {
            let mut q = JoinQuery::new(vec![FromItem::new(
                partition_table_name(&info.table, p),
                info.alias.clone(),
            )]);
            if let Some(pred) = &info.local_pred {
                q = q.with_predicate(pred.clone());
            }
            let reply = self.fragment(stats, p, q)?;
            stats.rows_gathered += reply.rows.len() as u64;
            parts.push(reply.rows);
        }
        Ok(parts)
    }

    /// R* fetch-matches: one keyed fragment per distinct driver-side
    /// key combination, routed to the owning shard when the inner is
    /// partitioned on the join column, broadcast otherwise.
    fn fetch_matches(
        &self,
        stats: &mut DistStats,
        plan: &DistPlan,
        reduced: &[Option<Vec<Vec<Tuple>>>],
        info: &AliasInfo,
        v: usize,
        edge: &Edge,
    ) -> Result<Vec<Vec<Tuple>>, DistError> {
        let from = edge.other(v);
        let pairs = edge.keys_from(from);
        let from_info = &plan.aliases[from];
        let from_rows = reduced[from].as_ref().expect("source gathered first");
        let from_idxs: Vec<usize> = pairs
            .iter()
            .map(|(fc, _)| from_info.col_index(fc))
            .collect::<Result<_, _>>()?;
        let to_cols: Vec<&str> = pairs.iter().map(|(_, tc)| *tc).collect();
        let to_idxs: Vec<usize> = to_cols
            .iter()
            .map(|tc| info.col_index(tc))
            .collect::<Result<_, _>>()?;
        let keys: BTreeSet<Vec<Value>> = from_rows
            .iter()
            .flatten()
            .map(|row| from_idxs.iter().map(|&i| row.value(i).clone()).collect())
            .collect();
        // Partition pruning: if any fetched column is the partition
        // column, each key combination lives on exactly one shard.
        let route_on = to_idxs.iter().position(|&i| i == info.map.column);
        let mut parts: Vec<Vec<Tuple>> = Vec::new();
        for key in keys {
            let pred = to_cols
                .iter()
                .zip(&key)
                .map(|(tc, val)| {
                    col(format!("{}.{}", info.alias, AliasInfo::base_col(tc)))
                        .eq(Expr::Literal(val.clone()))
                })
                .reduce(|a, b| a.and(b))
                .expect("at least one key column");
            let pred = match &info.local_pred {
                Some(local) => pred.and(local.clone()),
                None => pred,
            };
            let targets: Vec<u32> = match route_on {
                Some(i) => vec![info.map.shard_of(&key[i])],
                None => (0..self.map.shards()).collect(),
            };
            for p in targets {
                let q = JoinQuery::new(vec![FromItem::new(
                    partition_table_name(&info.table, p),
                    info.alias.clone(),
                )])
                .with_predicate(pred.clone());
                let reply = self.fragment(stats, p, q)?;
                stats.rows_gathered += reply.rows.len() as u64;
                parts.push(reply.rows);
            }
        }
        Ok(parts)
    }

    /// Builds the conjunctive filter list reducing alias `v` through
    /// `edges` from already-gathered neighbors: one exact or Bloom key
    /// set per key column.
    fn filters_from_edges(
        &self,
        plan: &DistPlan,
        reduced: &[Option<Vec<Vec<Tuple>>>],
        v: usize,
        edges: &[Edge],
        bloom: bool,
    ) -> Result<Vec<(String, KeyFilter)>, DistError> {
        let mut filters = Vec::new();
        for edge in edges {
            let from = edge.other(v);
            let from_info = &plan.aliases[from];
            let from_rows = reduced[from].as_ref().expect("source gathered first");
            for (from_col, my_col) in edge.keys_from(from) {
                let idx = from_info.col_index(from_col)?;
                let keys: BTreeSet<Value> = from_rows
                    .iter()
                    .flatten()
                    .map(|row| row.value(idx).clone())
                    .collect();
                let filter = if bloom {
                    let mut f =
                        BloomFilter::with_capacity(keys.len().max(1) as u64, self.config.bloom_fp);
                    for k in &keys {
                        f.insert(k);
                    }
                    KeyFilter::Bloom(f)
                } else {
                    KeyFilter::Exact(keys.into_iter().collect())
                };
                filters.push((AliasInfo::base_col(my_col).to_string(), filter));
            }
        }
        Ok(filters)
    }

    /// One semijoin round over every partition of `info`'s table,
    /// returning surviving rows per partition.
    fn semijoin_rows(
        &self,
        stats: &mut DistStats,
        info: &AliasInfo,
        filters: Vec<(String, KeyFilter)>,
    ) -> Result<Vec<Vec<Tuple>>, DistError> {
        let mut parts = Vec::with_capacity(self.map.shards() as usize);
        for p in 0..self.map.shards() {
            let req = SemijoinRequest {
                table: partition_table_name(&info.table, p),
                filters: prune_for_partition(info, &filters, p),
                want_rows: true,
                keys_of: None,
            };
            let ack = self.semijoin(stats, p, &req)?;
            let rows = ack.rows.map(|(_, rows)| rows).unwrap_or_default();
            stats.rows_gathered += rows.len() as u64;
            parts.push(rows);
        }
        Ok(parts)
    }

    /// One semijoin round gathering only the distinct keys of
    /// `key_col` among survivors, unioned across partitions.
    fn semijoin_keys(
        &self,
        stats: &mut DistStats,
        info: &AliasInfo,
        filters: Vec<(String, KeyFilter)>,
        key_col: &str,
    ) -> Result<Vec<Value>, DistError> {
        let mut keys: BTreeSet<Value> = BTreeSet::new();
        for p in 0..self.map.shards() {
            let req = SemijoinRequest {
                table: partition_table_name(&info.table, p),
                filters: prune_for_partition(info, &filters, p),
                want_rows: false,
                keys_of: Some(AliasInfo::base_col(key_col).to_string()),
            };
            let ack = self.semijoin(stats, p, &req)?;
            keys.extend(ack.keys.unwrap_or_default());
        }
        Ok(keys.into_iter().collect())
    }

    // ------------------------------------------------- transport

    /// Runs `f` against partition `p`'s replicas in failover order.
    /// Retryable refusals (drain/shed) and transport failures move to
    /// the next replica; anything else is final.
    fn call_shard<T>(
        &self,
        stats: &mut DistStats,
        p: u32,
        f: impl Fn(&mut Client, &mut DistStats) -> Result<(T, WireBytes), NetError>,
    ) -> Result<T, DistError> {
        let replicas = self.map.replicas(p);
        let mut last = String::from("no replicas configured");
        for (i, addr) in replicas.iter().enumerate() {
            self.check_interrupt()?;
            if i > 0 {
                stats.failovers += 1;
            }
            let mut client = match Client::connect_timeout(addr, self.config.io_timeout) {
                Ok(c) => c,
                Err(e) => {
                    last = format!("{addr}: {e}");
                    continue;
                }
            };
            match f(&mut client, stats) {
                Ok((value, wire)) => {
                    stats.add_wire(wire);
                    return Ok(value);
                }
                Err(e) if failover_worthy(&e) => {
                    // The request frame still went out.
                    stats.messages += 1;
                    last = format!("{addr}: {e}");
                }
                Err(e) => {
                    if self.interrupt.is_tripped() {
                        return self.check_interrupt().map(|_| unreachable!());
                    }
                    return Err(DistError::Net(e));
                }
            }
        }
        Err(DistError::NoHealthyReplica {
            shard: p,
            detail: last,
        })
    }

    /// One FRAGMENT exchange with partition `p`, registered for
    /// teardown while in flight.
    fn fragment(
        &self,
        stats: &mut DistStats,
        p: u32,
        query: JoinQuery,
    ) -> Result<fj_net::GatherReply, DistError> {
        let req = FragmentRequest {
            deadline_millis: self.config.fragment_deadline.as_millis() as u64,
            query,
        };
        let cancellers = &self.cancellers;
        self.call_shard(stats, p, move |client, _stats| {
            if let Ok(c) = client.canceller() {
                cancellers.lock().unwrap().push(c);
            }
            let out = client.fragment(&req);
            cancellers.lock().unwrap().pop();
            out
        })
    }

    /// One SEMIJOIN exchange with partition `p`.
    fn semijoin(
        &self,
        stats: &mut DistStats,
        p: u32,
        req: &SemijoinRequest,
    ) -> Result<SemijoinAck, DistError> {
        let timeout = self.config.io_timeout;
        self.call_shard(stats, p, move |client, _stats| {
            client.semijoin(req, timeout)
        })
    }

    // ------------------------------------------------- rebuild

    /// Rebuilds every reduced table in original row order (merging all
    /// aliases of the same table, deduplicating by ordinal), recreates
    /// its indexes, and installs it into a clone of the coordinator
    /// catalog.
    fn rebuild(
        &self,
        plan: &DistPlan,
        reduced: Vec<Vec<Vec<Tuple>>>,
    ) -> Result<Catalog, DistError> {
        let ctx = ExecCtx::new(self.catalog.clone());
        let mut by_table: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, info) in plan.aliases.iter().enumerate() {
            by_table.entry(info.table.as_str()).or_default().push(i);
        }
        let mut local = (*self.catalog).clone();
        for (table, alias_idxs) in by_table {
            let info = &plan.aliases[alias_idxs[0]];
            let base_schema = &info.schema;
            let pschema = part_schema(base_schema)?;
            let all_parts: Vec<Vec<Tuple>> = alias_idxs
                .iter()
                .flat_map(|&i| reduced[i].clone())
                .collect();
            let merged = merge_by_ordinal(&ctx, pschema, all_parts, base_schema.arity())?;
            let rows: Vec<Tuple> = merged
                .rows
                .into_iter()
                .map(|row| {
                    Tuple::new(
                        (0..base_schema.arity())
                            .map(|i| row.value(i).clone())
                            .collect(),
                    )
                })
                .collect();
            let mut t = Table::new(table, (**base_schema).clone(), rows)?;
            let original = self.catalog.table(table).map_err(|e| {
                DistError::Unsupported(format!("table {table} vanished from catalog: {e}"))
            })?;
            for c in original.hash_indexed_columns() {
                t.create_hash_index(c)?;
            }
            for c in original.btree_indexed_columns() {
                t.create_btree_index(c)?;
            }
            local.add_table(t.into_ref());
        }
        Ok(local)
    }
}

/// Driver-based reduction flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    FetchMatches,
    Semijoin,
    Bloom,
}

/// Failures worth trying the next replica for: typed retryable
/// refusals (shed, drain) plus transport-level losses — a crashed or
/// draining replica must be invisible when another replica holds the
/// partition.
fn failover_worthy(e: &NetError) -> bool {
    e.is_retryable()
        || matches!(
            e,
            NetError::Io(_) | NetError::Wire(_) | NetError::ConnectionClosed
        )
}

/// The scattered partition schema: the base schema plus the hidden
/// ordinal column.
fn part_schema(base: &SchemaRef) -> Result<SchemaRef, DistError> {
    let mut columns = base.columns().to_vec();
    columns.push(Column::new(ORD_COLUMN, DataType::Int));
    Ok(Schema::new(columns)?.into_ref())
}

/// Shrinks exact filters before they ship: a key on the table's own
/// partition column can only match rows of the partition it hashes to,
/// so each partition receives just its slice of the key set. Bloom
/// filters are opaque and ship whole.
fn prune_for_partition(
    info: &AliasInfo,
    filters: &[(String, KeyFilter)],
    p: u32,
) -> Vec<(String, KeyFilter)> {
    let part_col = info.schema.columns()[info.map.column].base_name();
    filters
        .iter()
        .map(|(c, f)| match f {
            KeyFilter::Exact(keys) if c == part_col => (
                c.clone(),
                KeyFilter::Exact(
                    keys.iter()
                        .filter(|k| info.map.shard_of(k) == p)
                        .cloned()
                        .collect(),
                ),
            ),
            _ => (c.clone(), f.clone()),
        })
        .collect()
}

/// Every alias reachable from `start` through equi-join edges,
/// including `start` itself.
fn component_members(plan: &DistPlan, start: usize) -> Vec<usize> {
    let mut seen = vec![false; plan.aliases.len()];
    let mut queue = vec![start];
    seen[start] = true;
    let mut out = Vec::new();
    while let Some(v) = queue.pop() {
        out.push(v);
        for e in plan.edges_of(v) {
            let o = e.other(v);
            if !seen[o] {
                seen[o] = true;
                queue.push(o);
            }
        }
    }
    out
}

/// Post-order traversal of the equi-join tree rooted at `root`:
/// `(node, parent)` pairs with every child before its parent. Marks
/// nodes visited.
fn tree_postorder(
    plan: &DistPlan,
    root: usize,
    visited: &mut [bool],
) -> Vec<(usize, Option<usize>)> {
    let mut out = Vec::new();
    let mut stack = vec![(root, None::<usize>, false)];
    visited[root] = true;
    while let Some((v, parent, expanded)) = stack.pop() {
        if expanded {
            out.push((v, parent));
            continue;
        }
        stack.push((v, parent, true));
        for e in plan.edges_of(v) {
            let o = e.other(v);
            if !visited[o] {
                visited[o] = true;
                stack.push((o, Some(v), false));
            }
        }
    }
    out
}
