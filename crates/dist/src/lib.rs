//! # fj-dist — partitioned distributed execution
//!
//! Executes one join query across N `fj-net` servers. The coordinator
//! hash-partitions every base table across shards ([`DistCoordinator::deploy`]),
//! then per query reduces each table with a selectable shipping strategy
//! ([`ShipStrategy`]) — ship-whole, R* fetch-matches, SDD-1-style exact or
//! Bloom semijoin programs, or a Yannakakis full reducer for acyclic join
//! graphs — gathers survivors, and runs the final join locally so the
//! distributed answer is byte-identical to the serial oracle.
//!
//! `ShipStrategy::Auto` prices every applicable strategy with the same
//! per-message/per-byte network model the paper's two-site simulation
//! uses ([`predict_all`]) and runs the cheapest; the predictions are
//! reconciled against bytes actually measured on the wire by the `dist`
//! reproduce experiment.
//!
//! Fault tolerance: every partition is scattered to `replication`
//! replicas, and each per-partition exchange fails over down the replica
//! list on drain/shed/transport failures — one shard draining mid-query
//! is invisible to the client.

pub mod coordinator;
pub mod error;
pub mod plan;
pub mod strategy;

pub use coordinator::{DistConfig, DistCoordinator, DistHandle, DistResult, DistStats, PhaseHook};
pub use error::DistError;
pub use plan::{partition_table_name, DistPlan, ORD_COLUMN};
pub use strategy::{predict_all, CostPrediction, ShipStrategy};

pub use fj_cluster::ShardMap;
